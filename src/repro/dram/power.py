"""DRAM power and energy model (paper Table IX).

An IDD-style model: each command class carries a fixed energy, plus a
background power drawn for the whole run.  Absolute values are rough DDR5
datasheet-scale numbers; the paper's Table IX only relies on *relative*
power/energy/EDP between configurations, which a command-count model
captures (BARD adds writebacks -> more energy, but finishes sooner -> lower
energy-delay product).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.stats import SubChannelStats


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nanojoules) and background power (watts)."""

    act_pre_nj: float = 2.2
    read_nj: float = 1.4
    write_nj: float = 1.6
    #: Extra energy for the on-die-ECC read-modify-write a same-bankgroup
    #: write triggers on x4 devices.
    write_rmw_nj: float = 0.7
    background_w: float = 0.35


@dataclass(frozen=True)
class PowerReport:
    """Energy/power/EDP summary for one run."""

    energy_nj: float
    runtime_ns: float

    @property
    def power_w(self) -> float:
        if self.runtime_ns <= 0:
            return 0.0
        return self.energy_nj / self.runtime_ns

    @property
    def edp(self) -> float:
        """Energy-delay product (nJ * ns)."""
        return self.energy_nj * self.runtime_ns


def estimate_power(
    stats: SubChannelStats,
    runtime_ns: float,
    params: EnergyParams = EnergyParams(),
) -> PowerReport:
    """Estimate DRAM energy for a run from command counters."""
    energy = 0.0
    energy += stats.activates * params.act_pre_nj
    energy += stats.reads_issued * params.read_nj
    energy += stats.writes_issued * params.write_nj
    # Same-bankgroup writes pay the internal read-modify-write; approximate
    # their count with writes that were row hits or conflicts (same-bank
    # traffic) plus a fraction of the rest.
    rmw_writes = stats.write_row_hits + stats.write_row_conflicts
    energy += rmw_writes * params.write_rmw_nj
    energy += params.background_w * runtime_ns
    return PowerReport(energy_nj=energy, runtime_ns=runtime_ns)

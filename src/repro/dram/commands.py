"""Memory-request and DRAM-coordinate primitives.

A :class:`MemRequest` is the unit of traffic between the LLC / memory
controller and the DRAM model.  A :class:`DramCoord` pinpoints the physical
location a request maps to, as produced by :mod:`repro.dram.mapping`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional

#: Bytes per cache line / DRAM burst, fixed by the paper's configuration.
LINE_SIZE = 64

#: log2(LINE_SIZE) - number of block-offset bits in a physical address.
LINE_BITS = 6


class Op(enum.Enum):
    """Direction of a memory request at the DRAM interface."""

    READ = "read"
    WRITE = "write"


class DramCoord(NamedTuple):
    """Physical DRAM coordinates of one cache-line-sized access.

    The paper's baseline channel has 2 sub-channels, each with 8 bankgroups
    of 4 banks (32 banks per sub-channel, 64 per channel).
    """

    channel: int
    subchannel: int
    bankgroup: int
    bank: int
    row: int
    column: int

    @property
    def bank_id(self) -> int:
        """Flat bank index within the channel (0..63 for the baseline).

        This is the 6-bit identifier the BLP-Tracker is indexed by
        (paper section IV-A).
        """
        return (self.subchannel * 8 + self.bankgroup) * 4 + self.bank

    @property
    def subchannel_bank_id(self) -> int:
        """Flat bank index within the sub-channel (0..31)."""
        return self.bankgroup * 4 + self.bank


_request_ids = itertools.count()


@dataclass(eq=False, slots=True)
class MemRequest:
    """One cache-line request presented to the DRAM channel.

    ``on_complete`` is invoked with the completion tick when the data burst
    for the request finishes (reads) or when the write has been issued to the
    bank (writes).

    The scheduler examines every queued request's coordinates on each
    decision, so the fields it reads per comparison (``is_write``,
    ``bankgroup``, ``sc_bank``, ``row``) are flattened out of ``op`` /
    ``coord`` once at construction; the dataclass itself is slotted.
    Requests compare by identity (``eq=False``): every instance carries a
    unique ``req_id``, so field-wise equality could only ever match the
    same object - and queue removal does a ``list.remove`` per issued
    request, which would otherwise run the generated ``__eq__`` against
    every earlier entry.
    """

    addr: int
    op: Op
    coord: DramCoord
    arrival_tick: int = 0
    core_id: int = -1
    is_prefetch: bool = False
    on_complete: Optional[Callable[[int], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    # Filled in by the channel front-end: DRAM cycle the request became
    # visible to the scheduler (commands may be planned from this point).
    arrival_cycle: int = 0
    # Filled in by the scheduler when the request is issued.
    issue_tick: Optional[int] = None
    burst_tick: Optional[int] = None

    # Derived once in __post_init__ - hot-loop copies of op/coord fields.
    is_write: bool = field(init=False)
    bankgroup: int = field(init=False)
    sc_bank: int = field(init=False)
    row: int = field(init=False)

    def __post_init__(self) -> None:
        coord = self.coord
        self.is_write = self.op is Op.WRITE
        self.bankgroup = coord.bankgroup
        self.sc_bank = coord.bankgroup * 4 + coord.bank
        self.row = coord.row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemRequest(id={self.req_id}, {self.op.value}, "
            f"addr={self.addr:#x}, bank={self.coord.bank_id}, "
            f"row={self.coord.row})"
        )

"""DDR5 channel: two independent sub-channels plus controller front-end.

The channel is the component the LLC talks to.  It

* routes requests to the correct sub-channel using the address mapping's
  coordinates,
* forwards reads that hit a buffered write (WRQ forwarding logic),
* stages requests that do not fit in the bounded read/write queues and
  replays them as space frees up, and
* bridges the DRAM clock domain to the engine's tick domain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.clock import TICKS_PER_DRAM_CYCLE
from repro.dram.commands import MemRequest
from repro.dram.stats import SubChannelStats
from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing

#: Latency (DRAM cycles) of servicing a read by forwarding from the WRQ.
_FORWARD_LATENCY = 4

#: Number of sub-channels per DDR5 channel.
SUBCHANNELS = 2


@dataclass
class ChannelStats:
    """Front-end counters (per channel, engine-tick domain)."""

    reads_received: int = 0
    writes_received: int = 0
    forwarded_reads: int = 0
    staged_reads: int = 0
    staged_writes: int = 0
    read_latency_ticks: int = 0
    reads_completed: int = 0

    @property
    def mean_read_latency_ticks(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.read_latency_ticks / self.reads_completed


class Channel:
    """One DDR5 channel with two sub-channels."""

    def __init__(
        self,
        timing: DDR5Timing,
        rq_capacity: int = 64,
        wq_capacity: int = 48,
        wq_high: int = 40,
        wq_low: int = 8,
        ideal_writes: bool = False,
        drain_policy: str = "min-latency",
        refresh: bool = False,
    ) -> None:
        self.timing = timing
        self.subchannels: List[SubChannel] = [
            SubChannel(
                timing,
                rq_capacity=rq_capacity,
                wq_capacity=wq_capacity,
                wq_high=wq_high,
                wq_low=wq_low,
                ideal_writes=ideal_writes,
                drain_policy=drain_policy,
                refresh=refresh,
            )
            for _ in range(SUBCHANNELS)
        ]
        self.stats = ChannelStats()
        self._engine = None
        self._staged_reads: List[Deque[MemRequest]] = [
            deque() for _ in range(SUBCHANNELS)
        ]
        self._staged_writes: List[Deque[MemRequest]] = [
            deque() for _ in range(SUBCHANNELS)
        ]
        self._next_event: List[Optional[int]] = [None] * SUBCHANNELS

    def attach(self, engine) -> None:
        """Connect the channel to the simulation engine."""
        self._engine = engine

    # ------------------------------------------------------------------
    # Request submission (LLC-facing)
    # ------------------------------------------------------------------

    def submit(self, req: MemRequest) -> None:
        """Accept a read or write request for this channel."""
        sc_idx = req.coord.subchannel
        sc = self.subchannels[sc_idx]
        now_cycle = self._now_cycle()
        req.arrival_cycle = now_cycle
        stats = self.stats
        if not req.is_write:
            stats.reads_received += 1
            if self._forwardable(sc_idx, req.addr):
                stats.forwarded_reads += 1
                self._complete_read_at(req, now_cycle + _FORWARD_LATENCY)
                return
            req = self._wrap_read(req)
            if not sc.enqueue_read(req):
                stats.staged_reads += 1
                self._staged_reads[sc_idx].append(req)
        else:
            stats.writes_received += 1
            if not sc.enqueue_write(req):
                stats.staged_writes += 1
                self._staged_writes[sc_idx].append(req)
        self._kick(sc_idx, now_cycle)

    def _forwardable(self, sc_idx: int, addr: int) -> bool:
        if self.subchannels[sc_idx].wq.contains_addr(addr):
            return True
        staged = self._staged_writes[sc_idx]
        if not staged:
            return False
        return any(r.addr == addr for r in staged)

    def _wrap_read(self, req: MemRequest) -> MemRequest:
        """Wrap the completion callback to account read latency."""
        inner = req.on_complete
        arrival = self._now_tick()

        def done(cycle: int) -> None:
            tick = cycle * TICKS_PER_DRAM_CYCLE
            # Resolve stats at completion time: reset_stats() swaps the
            # stats object at the warmup boundary, and reads in flight
            # across it must land in the measurement-epoch counters.
            stats = self.stats
            stats.reads_completed += 1
            if tick > arrival:
                stats.read_latency_ticks += tick - arrival
            if inner is not None:
                self._engine.schedule(tick, inner, tick)

        req.on_complete = done
        return req

    def _complete_read_at(self, req: MemRequest, cycle: int) -> None:
        tick = cycle * TICKS_PER_DRAM_CYCLE
        arrival = self._now_tick()
        inner = req.on_complete
        self.stats.reads_completed += 1
        if tick > arrival:
            self.stats.read_latency_ticks += tick - arrival
        if inner is not None:
            self._engine.schedule(tick, inner, tick)

    # ------------------------------------------------------------------
    # Clock bridging and scheduling
    # ------------------------------------------------------------------

    def _now_tick(self) -> int:
        return self._engine.now if self._engine is not None else 0

    def _now_cycle(self) -> int:
        tick = self._now_tick()
        return -(-tick // TICKS_PER_DRAM_CYCLE)  # ceil division

    def _kick(self, sc_idx: int, cycle: int) -> None:
        """Ensure a scheduler tick for sub-channel ``sc_idx`` at ``cycle``."""
        pending = self._next_event[sc_idx]
        if pending is not None and pending <= cycle:
            return
        self._next_event[sc_idx] = cycle
        tick = cycle * TICKS_PER_DRAM_CYCLE
        now = self._engine.now
        if now > tick:
            tick = now
        self._engine.schedule(tick, self._tick_sc, sc_idx)

    def _tick_sc(self, sc_idx: int) -> None:
        cycle = self._engine.now // TICKS_PER_DRAM_CYCLE
        expected = self._next_event[sc_idx]
        if expected is not None and expected > cycle:
            # A newer, earlier kick superseded this event.
            return
        self._next_event[sc_idx] = None
        nxt = self.subchannels[sc_idx].tick(cycle)
        self._replay_staged(sc_idx)
        if nxt is not None:
            if nxt <= cycle:
                nxt = cycle + 1
            self._kick(sc_idx, nxt)

    def _replay_staged(self, sc_idx: int) -> None:
        """Move staged requests into the bounded queues as space frees."""
        sc = self.subchannels[sc_idx]
        staged_w = self._staged_writes[sc_idx]
        while staged_w and sc.enqueue_write(staged_w[0]):
            staged_w.popleft()
        staged_r = self._staged_reads[sc_idx]
        while staged_r and sc.enqueue_read(staged_r[0]):
            staged_r.popleft()

    # ------------------------------------------------------------------
    # Introspection / end-of-run
    # ------------------------------------------------------------------

    def pending_writes_for_bank(self, bank_id: int) -> int:
        """Ground-truth pending writes for a per-channel bank id (0..63).

        Used only by the BLP-Tracker accuracy probe (paper section VII-I);
        BARD itself never calls this.
        """
        sc_idx, sub_bank = divmod(bank_id, 32)
        count = self.subchannels[sc_idx].wq.pending_for_bank(sub_bank)
        count += sum(
            1 for r in self._staged_writes[sc_idx] if r.sc_bank == sub_bank
        )
        return count

    def finalize(self) -> None:
        """Close out statistics at the end of a run."""
        cycle = self._now_cycle()
        for sc in self.subchannels:
            sc.finalize(cycle)

    def aggregate_stats(self) -> SubChannelStats:
        """Sum of both sub-channels' statistics."""
        total = SubChannelStats()
        for sc in self.subchannels:
            total.merge_from(sc.stats)
        return total

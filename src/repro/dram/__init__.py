"""DDR5 memory-system model (the paper's simulation substrate).

Public surface:

* :class:`~repro.dram.timing.DDR5Timing` and the
  :func:`~repro.dram.timing.ddr5_4800_x4` / ``_x8`` presets,
* :class:`~repro.dram.mapping.ZenMapping` (AMD Zen layout + PBPL),
* :class:`~repro.dram.channel.Channel` /
  :class:`~repro.dram.subchannel.SubChannel`,
* :class:`~repro.dram.commands.MemRequest` and
  :class:`~repro.dram.commands.DramCoord`.
"""

from repro.dram.bank import AccessKind, Bank
from repro.dram.channel import Channel, ChannelStats
from repro.dram.commands import LINE_BITS, LINE_SIZE, DramCoord, MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.power import EnergyParams, PowerReport, estimate_power
from repro.dram.queues import ReadQueue, WriteQueue
from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.dram.subchannel import BANKS_PER_SUBCHANNEL, SubChannel
from repro.dram.timing import DDR5Timing, ddr5_4800_x4, ddr5_4800_x8

__all__ = [
    "AccessKind",
    "Bank",
    "BANKS_PER_SUBCHANNEL",
    "Channel",
    "ChannelStats",
    "DDR5Timing",
    "DramCoord",
    "DrainEpisode",
    "EnergyParams",
    "LINE_BITS",
    "LINE_SIZE",
    "MemRequest",
    "Op",
    "PowerReport",
    "ReadQueue",
    "SubChannel",
    "SubChannelStats",
    "WriteQueue",
    "ZenMapping",
    "ddr5_4800_x4",
    "ddr5_4800_x8",
    "estimate_power",
]

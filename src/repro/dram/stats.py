"""Statistics collected by the DRAM model.

These counters directly feed the paper's evaluation metrics:

* **time spent writing** (Figs. 2 and 14 bottom): fraction of execution time
  the sub-channel spends in write-drain mode (including turnarounds),
* **write bank-level parallelism** (Figs. 3 and 14 top): unique banks that
  receive a write during one drain episode,
* **write-to-write delay** (Table V): burst-to-burst spacing of consecutive
  writes within a drain episode,
* command counters for the power model (Table IX) and bandwidth analysis
  (Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.timing import DRAM_CYCLE_NS


@dataclass
class DrainEpisode:
    """One write-drain episode (high watermark -> low watermark)."""

    writes: int
    unique_banks: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclass
class SubChannelStats:
    """Counters for one DDR5 sub-channel (all times in DRAM cycles)."""

    reads_issued: int = 0
    writes_issued: int = 0
    read_row_hits: int = 0
    read_row_conflicts: int = 0
    write_row_hits: int = 0
    write_row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    write_mode_cycles: int = 0
    turnaround_cycles: int = 0
    busy_cycles: int = 0
    read_latency_sum: int = 0
    episodes: List[DrainEpisode] = field(default_factory=list)
    w2w_delay_sum: int = 0
    w2w_delay_count: int = 0
    w2w_delay_max: int = 0

    def record_w2w(self, delta: int) -> None:
        self.w2w_delay_sum += delta
        self.w2w_delay_count += 1
        if delta > self.w2w_delay_max:
            self.w2w_delay_max = delta

    @property
    def mean_w2w_ns(self) -> float:
        """Mean write-to-write burst delay in nanoseconds (Table V)."""
        if not self.w2w_delay_count:
            return 0.0
        return self.w2w_delay_sum / self.w2w_delay_count * DRAM_CYCLE_NS

    @property
    def max_w2w_ns(self) -> float:
        return self.w2w_delay_max * DRAM_CYCLE_NS

    @property
    def mean_blp(self) -> float:
        """Mean unique banks written per drain episode (Figs. 3/14)."""
        if not self.episodes:
            return 0.0
        return sum(e.unique_banks for e in self.episodes) / len(self.episodes)

    def merge_from(self, other: "SubChannelStats") -> None:
        """Accumulate ``other`` into this stats object (channel roll-up)."""
        self.reads_issued += other.reads_issued
        self.writes_issued += other.writes_issued
        self.read_row_hits += other.read_row_hits
        self.read_row_conflicts += other.read_row_conflicts
        self.write_row_hits += other.write_row_hits
        self.write_row_conflicts += other.write_row_conflicts
        self.activates += other.activates
        self.precharges += other.precharges
        self.write_mode_cycles += other.write_mode_cycles
        self.turnaround_cycles += other.turnaround_cycles
        self.busy_cycles += other.busy_cycles
        self.read_latency_sum += other.read_latency_sum
        self.episodes.extend(other.episodes)
        self.w2w_delay_sum += other.w2w_delay_sum
        self.w2w_delay_count += other.w2w_delay_count
        self.w2w_delay_max = max(self.w2w_delay_max, other.w2w_delay_max)

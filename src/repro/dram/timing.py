"""DDR5 timing parameters (paper Table I, DDR5-4800B x4 devices).

All values are expressed in DRAM command-clock cycles.  DDR5-4800 transfers
data at 4800 MT/s on a double-data-rate bus, so the command clock runs at
2.4 GHz and one DRAM cycle is 1/2.4 ns.

The paper's write-latency analysis (Figs. 4-5) reasons about the *delay
between consecutive data bursts*:

* writes to banks in **different bankgroups** can follow each other every
  ``tCCD_S_WR`` = 8 cycles (the bus-occupancy minimum, 3.3 ns, "1x"),
* writes to banks in the **same bankgroup** (including row-buffer hits to the
  same bank) must be spaced ``tCCD_L_WR`` = 48 cycles apart (20 ns, "6x"),
* a **row-buffer conflict in the same bank** costs
  ``tRCD + tCWL + tWR + tRP`` = 188 cycles (Fig. 5, "24x" / 23.5x).

With x8 devices each chip receives a full 128-bit on-die-ECC codeword per
write, so the internal read-modify-write disappears and ``tCCD_L_WR`` drops
to 10 ns = 24 cycles (still 3x the minimum), per paper section VII-D.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: DRAM command-clock frequency for DDR5-4800 (cycles per second).
DRAM_CLOCK_HZ = 2_400_000_000

#: Nanoseconds per DRAM command-clock cycle.
DRAM_CYCLE_NS = 1e9 / DRAM_CLOCK_HZ


@dataclass(frozen=True)
class DDR5Timing:
    """Timing constraints for a DDR5 device, in DRAM command-clock cycles.

    The defaults reproduce paper Table I exactly.  Use :func:`ddr5_4800_x4`
    or :func:`ddr5_4800_x8` rather than instantiating directly.
    """

    #: Read (CAS) latency: READ command to first data beat.
    cl: int = 40
    #: Write (CAS write) latency: WRITE command to first data beat.
    cwl: int = 38
    #: ACT to internal READ/WRITE delay.
    trcd: int = 39
    #: PRE to ACT delay.
    trp: int = 39
    #: ACT to PRE minimum row-open time.
    tras: int = 77
    #: End of write burst to PRE (write recovery).
    twr: int = 72
    #: Data-bus occupancy of one 64-byte transfer (BL16 on a 32-bit
    #: sub-channel = 8 command-clock cycles).
    burst: int = 8
    #: Write-to-write delay, different bankgroups ("S" = short).
    tccd_s_wr: int = 8
    #: Write-to-write delay, same bankgroup ("L" = long).  48 for x4 devices
    #: (on-die-ECC read-modify-write), 24 for x8.
    tccd_l_wr: int = 48
    #: Read-to-read delay, different bankgroups.
    tccd_s_rd: int = 8
    #: Read-to-read delay, same bankgroup.
    tccd_l_rd: int = 16
    #: Bus-turnaround penalty applied when the data bus switches direction
    #: (read<->write).  The paper quotes 22 ns; 53 cycles at 2.4 GHz.
    turnaround: int = 53

    def __post_init__(self) -> None:
        for name in (
            "cl", "cwl", "trcd", "trp", "tras", "twr", "burst",
            "tccd_s_wr", "tccd_l_wr", "tccd_s_rd", "tccd_l_rd", "turnaround",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"timing parameter {name!r} must be positive")
        if self.tccd_l_wr < self.tccd_s_wr:
            raise ValueError("tCCD_L_WR must be >= tCCD_S_WR")
        if self.tccd_l_rd < self.tccd_s_rd:
            raise ValueError("tCCD_L_RD must be >= tCCD_S_RD")

    @property
    def write_conflict_delay(self) -> int:
        """Burst-to-burst delay for a same-bank row-conflict write.

        Paper Fig. 5: ``tRCD + tCWL + tWR + tRP`` = 188 cycles for the
        default x4 part (23.5x the 8-cycle minimum).
        """
        return self.trcd + self.cwl + self.twr + self.trp

    @property
    def read_conflict_delay(self) -> int:
        """Burst-to-burst delay for a same-bank row-conflict read."""
        return self.trcd + self.cl + self.trp

    def ns(self, cycles: int | float) -> float:
        """Convert DRAM cycles to nanoseconds."""
        return cycles * DRAM_CYCLE_NS


def ddr5_4800_x4() -> DDR5Timing:
    """Timing for the paper's baseline DDR5-4800B x4 server device."""
    return DDR5Timing()


def ddr5_4800_x8() -> DDR5Timing:
    """Timing for an x8 device (paper section VII-D).

    Each chip receives the full 128-bit on-die-ECC codeword, so the internal
    read-modify-write disappears and ``tCCD_L_WR`` is 10 ns = 24 cycles.
    """
    return replace(DDR5Timing(), tccd_l_wr=24)

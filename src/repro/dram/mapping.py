"""DRAM address mappings: AMD Zen layout plus PBPL swizzling.

The paper (Fig. 6) uses the AMD Zen mapping, which distributes a 4 KB page
across 32 banks so that only two lines of a page are co-resident in the same
bank.  Reading upward from the 64-byte line offset the physical-address bits
are::

    bit 6        : sub-channel select        (sc)
    bit 7        : column bit 0              (co)
    bits 8-10    : bankgroup select          (bg, 8 bankgroups)
    bits 11-12   : bank select               (ba, 4 banks/bankgroup)
    bits 13-18   : column bits 1-6           (co)
    bits 19+     : row address

On top of Zen the paper layers Permutation-Based Page Interleaving (PBPL,
Zhang et al., MICRO 2000): the bank and bankgroup select bits are XORed with
low row-address bits so that lines mapping to the same LLC set spread across
different DRAM banks, reducing bank conflicts.

For multi-channel systems (the paper's 16-core configuration uses two
channels) channel-select bits are taken immediately above the line offset and
the Zen layout shifts up accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import LINE_BITS, DramCoord
from repro.errors import MappingError

_SC_BITS = 1
_CO0_BITS = 1
_BG_BITS = 3
_BA_BITS = 2
_CO1_BITS = 6


def _bits(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``."""
    return (value >> lo) & ((1 << width) - 1)


@dataclass(frozen=True)
class ZenMapping:
    """AMD Zen address mapping with optional PBPL bank swizzling.

    Parameters
    ----------
    channels:
        Number of independent DDR5 channels (must be a power of two).
    pbpl:
        When True (the paper's baseline), XOR the bank/bankgroup select bits
        with the low row bits (permutation-based page interleaving).
    row_bits:
        Number of row-address bits retained (caps DRAM capacity; addresses
        beyond that wrap, which is harmless for simulation purposes).
    """

    channels: int = 1
    pbpl: bool = True
    row_bits: int = 17

    def __post_init__(self) -> None:
        if self.channels < 1 or self.channels & (self.channels - 1):
            raise MappingError("channel count must be a power of two")
        if self.row_bits < 6:
            raise MappingError("row_bits must be at least 6")
        # map() runs once per memory request, so the field layout is
        # flattened into cached shift/mask pairs here (object.__setattr__
        # because the dataclass is frozen; these are derived caches, not
        # part of the mapping's identity).
        ch_bits = self.channels.bit_length() - 1
        bit = LINE_BITS
        object.__setattr__(self, "_ch_mask", (1 << ch_bits) - 1)
        bit += ch_bits
        object.__setattr__(self, "_sc_shift", bit)
        object.__setattr__(self, "_sc_mask", (1 << _SC_BITS) - 1)
        bit += _SC_BITS
        object.__setattr__(self, "_co0_shift", bit)
        object.__setattr__(self, "_co0_mask", (1 << _CO0_BITS) - 1)
        bit += _CO0_BITS
        object.__setattr__(self, "_bg_shift", bit)
        object.__setattr__(self, "_bg_mask", (1 << _BG_BITS) - 1)
        bit += _BG_BITS
        object.__setattr__(self, "_ba_shift", bit)
        object.__setattr__(self, "_ba_mask", (1 << _BA_BITS) - 1)
        bit += _BA_BITS
        object.__setattr__(self, "_co1_shift", bit)
        object.__setattr__(self, "_co1_mask", (1 << _CO1_BITS) - 1)
        bit += _CO1_BITS
        object.__setattr__(self, "_row_shift", bit)
        object.__setattr__(self, "_row_mask", (1 << self.row_bits) - 1)

    @property
    def channel_bits(self) -> int:
        return self.channels.bit_length() - 1

    @property
    def banks_per_subchannel(self) -> int:
        return (1 << _BG_BITS) * (1 << _BA_BITS)

    @property
    def banks_per_channel(self) -> int:
        return self.banks_per_subchannel * (1 << _SC_BITS)

    def map(self, addr: int) -> DramCoord:
        """Translate a physical byte address to DRAM coordinates."""
        if addr < 0:
            raise MappingError(f"negative address {addr:#x}")
        channel = (addr >> LINE_BITS) & self._ch_mask
        sc = (addr >> self._sc_shift) & self._sc_mask
        co0 = (addr >> self._co0_shift) & self._co0_mask
        bg = (addr >> self._bg_shift) & self._bg_mask
        ba = (addr >> self._ba_shift) & self._ba_mask
        co1 = (addr >> self._co1_shift) & self._co1_mask
        row = (addr >> self._row_shift) & self._row_mask
        if self.pbpl:
            ba ^= row & self._ba_mask
            bg ^= (row >> _BA_BITS) & self._bg_mask
        return DramCoord(
            channel=channel,
            subchannel=sc,
            bankgroup=bg,
            bank=ba,
            row=row,
            column=(co1 << _CO0_BITS) | co0,
        )

    def compose(self, coord: DramCoord) -> int:
        """Inverse of :meth:`map`: rebuild the physical byte address.

        Used by tests to establish that the mapping is a bijection, and by
        workload tooling that wants to *construct* addresses hitting a
        specific bank/row.
        """
        bg = coord.bankgroup
        ba = coord.bank
        if self.pbpl:
            ba ^= _bits(coord.row, 0, _BA_BITS)
            bg ^= _bits(coord.row, _BA_BITS, _BG_BITS)
        co0 = coord.column & 1
        co1 = coord.column >> _CO0_BITS
        addr = 0
        bit = LINE_BITS
        addr |= (coord.channel & ((1 << self.channel_bits) - 1)) << bit
        bit += self.channel_bits
        addr |= (coord.subchannel & 1) << bit
        bit += _SC_BITS
        addr |= (co0 & 1) << bit
        bit += _CO0_BITS
        addr |= (bg & ((1 << _BG_BITS) - 1)) << bit
        bit += _BG_BITS
        addr |= (ba & ((1 << _BA_BITS) - 1)) << bit
        bit += _BA_BITS
        addr |= (co1 & ((1 << _CO1_BITS) - 1)) << bit
        bit += _CO1_BITS
        addr |= (coord.row & ((1 << self.row_bits) - 1)) << bit
        return addr

    def bank_id(self, addr: int) -> int:
        """Flat per-channel bank index (0..63) for BLP-Tracker lookups."""
        return self.map(addr).bank_id

"""Read and write request queues for the memory controller.

The write queue (WRQ) implements the paper's watermark policy: the
sub-channel switches the bus to write mode when occupancy reaches the *high*
watermark (40 of 48 entries in the baseline) and drains writes until
occupancy falls to the *low* watermark (8), servicing roughly 32 writes per
drain episode.

Writes to an address already present in the WRQ coalesce (the newer write
simply overwrites the buffered data; in a timing-only model this is a no-op
merge).  Reads that hit a queued write are forwarded by the controller
without touching DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dram.commands import MemRequest
from repro.errors import ConfigError


@dataclass(slots=True)
class ReadQueue:
    """Bounded FIFO of outstanding read requests."""

    capacity: int
    entries: List[MemRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError("read queue capacity must be >= 1")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def push(self, req: MemRequest) -> bool:
        """Enqueue ``req``; returns False (rejected) when full."""
        if self.full:
            return False
        self.entries.append(req)
        return True

    def remove(self, req: MemRequest) -> None:
        self.entries.remove(req)

    def __iter__(self) -> Iterable[MemRequest]:
        return iter(self.entries)


@dataclass(slots=True)
class WriteQueue:
    """Bounded write queue with high/low drain watermarks.

    Coalesces same-address writes and supports address lookup for read
    forwarding and for the adaptive open-page policy's pending-row check.
    """

    capacity: int
    high_watermark: int
    low_watermark: int
    entries: List[MemRequest] = field(default_factory=list)
    _by_addr: Dict[int, MemRequest] = field(default_factory=dict)
    coalesced: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError("write queue capacity must be >= 1")
        if not 0 <= self.low_watermark < self.high_watermark <= self.capacity:
            raise ConfigError(
                "watermarks must satisfy 0 <= low < high <= capacity "
                f"(got low={self.low_watermark}, high={self.high_watermark}, "
                f"capacity={self.capacity})"
            )

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def at_high_watermark(self) -> bool:
        return len(self.entries) >= self.high_watermark

    @property
    def at_or_below_low_watermark(self) -> bool:
        return len(self.entries) <= self.low_watermark

    def push(self, req: MemRequest) -> bool:
        """Enqueue ``req``; coalesces same-address writes.

        Returns False when the queue is full and the write does not coalesce.
        """
        line_addr = req.addr
        existing = self._by_addr.get(line_addr)
        if existing is not None:
            self.coalesced += 1
            return True
        if self.full:
            return False
        self.entries.append(req)
        self._by_addr[line_addr] = req
        return True

    def remove(self, req: MemRequest) -> None:
        self.entries.remove(req)
        del self._by_addr[req.addr]

    def contains_addr(self, addr: int) -> bool:
        """True if a write to this line address is buffered (forwarding)."""
        return addr in self._by_addr

    def pending_for_bank(self, bank_id: int) -> int:
        """Number of queued writes mapping to the given sub-channel bank.

        Used by the BLP-Tracker *accuracy* probe (paper section VII-I),
        which cross-checks the tracker against ground truth; BARD itself
        never consults the WRQ.
        """
        return sum(1 for r in self.entries if r.sc_bank == bank_id)

    def __iter__(self) -> Iterable[MemRequest]:
        return iter(self.entries)

    def oldest(self) -> Optional[MemRequest]:
        return self.entries[0] if self.entries else None

"""DDR5 sub-channel model: 32 banks, one simplex data bus, one scheduler.

Each DDR5 sub-channel has its own 32-bit data bus and operates independently
(paper section II-B), so scheduling, write-drain watermarks, bus turnaround
and the BLP statistics are all per-sub-channel.

Scheduling policy (paper Table II): FR-FCFS with read priority.  The bus
stays in read mode until the write queue reaches its high watermark, then
drains writes until the low watermark is reached.  While draining, the
scheduler picks the write with the *earliest achievable data burst* (the
paper: "the memory controller tries to issue lower latency writes from the
WRQ"), which naturally prefers different-bankgroup banks without pending
conflicts.

All times in this module are DRAM command-clock cycles.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.bank import AccessKind, Bank
from repro.dram.commands import MemRequest, Op
from repro.dram.queues import ReadQueue, WriteQueue
from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.dram.timing import DDR5Timing

#: Number of bankgroups and banks per bankgroup in a DDR5 sub-channel.
BANKGROUPS = 8
BANKS_PER_GROUP = 4
BANKS_PER_SUBCHANNEL = BANKGROUPS * BANKS_PER_GROUP

_FAR_PAST = -(10**9)

#: Scheduling lookahead (DRAM cycles): the scheduler keeps committing
#: requests while the bus is reserved less than this far into the future.
#: This models command-bus pipelining - a bank's PRE/ACT preparation
#: overlaps the data bursts of other banks - while keeping decisions fresh
#: enough to react to newly arriving requests.
_PIPELINE_HORIZON = 24


class SubChannel:
    """One DDR5 sub-channel: banks, queues, bus, and scheduler."""

    def __init__(
        self,
        timing: DDR5Timing,
        rq_capacity: int = 64,
        wq_capacity: int = 48,
        wq_high: int = 40,
        wq_low: int = 8,
        ideal_writes: bool = False,
        drain_policy: str = "min-latency",
        refresh: bool = False,
    ) -> None:
        """``drain_policy`` selects how writes are picked during a drain:
        'min-latency' (the baseline MC behaviour the paper assumes - issue
        the lowest-latency write available) or 'fcfs' (oldest first, an
        ablation showing how much the scheduler itself contributes).

        ``refresh`` enables an all-bank refresh model (tREFI/tRFC); the
        paper omits refresh, so it defaults off and exists for ablation.
        """
        if drain_policy not in ("min-latency", "fcfs"):
            raise ValueError(f"unknown drain policy {drain_policy!r}")
        self.timing = timing
        self.drain_policy = drain_policy
        self.refresh_enabled = refresh
        # Flat copies of the cross-bank timing constraints: `earliest_burst`
        # runs once per queued request per scheduling decision, so the
        # constraint maxima are composed from plain ints instead of
        # attribute chains through the frozen DDR5Timing dataclass.
        self._tccd_s_wr = timing.tccd_s_wr
        self._tccd_l_wr = timing.tccd_l_wr
        self._tccd_s_rd = timing.tccd_s_rd
        self._tccd_l_rd = timing.tccd_l_rd
        self._turnaround = timing.turnaround
        self._burst_cycles = timing.burst
        #: All-bank refresh interval and duration in DRAM cycles
        #: (DDR5: tREFI ~3.9 us, tRFC ~295 ns at 2.4 GHz).
        self.trefi = 9360
        self.trfc = 708
        self._next_refresh = self.trefi
        self.refreshes_performed = 0
        self.banks: List[Bank] = [
            Bank(timing) for _ in range(BANKS_PER_SUBCHANNEL)
        ]
        self.rq = ReadQueue(rq_capacity)
        self.wq = WriteQueue(wq_capacity, wq_high, wq_low)
        self.ideal_writes = ideal_writes
        self.stats = SubChannelStats()

        self.bus_free_cycle = 0
        self.bus_mode: Op = Op.READ
        self._last_wr_burst_bg = [_FAR_PAST] * BANKGROUPS
        self._last_rd_burst_bg = [_FAR_PAST] * BANKGROUPS
        self._last_wr_burst = _FAR_PAST
        self._last_rd_burst = _FAR_PAST

        self._in_drain = False
        self._episode_start = 0
        self._episode_writes = 0
        self._episode_banks: set[int] = set()
        self._episode_last_burst = _FAR_PAST
        self._drain_all = False

    # ------------------------------------------------------------------
    # Queue interface (called by the channel)
    # ------------------------------------------------------------------

    def enqueue_read(self, req: MemRequest) -> bool:
        """Add a read; returns False when the read queue is full.

        Reads that hit a buffered write are forwarded by the caller
        (:class:`repro.dram.channel.Channel`) and never reach this queue.
        """
        return self.rq.push(req)

    def enqueue_write(self, req: MemRequest) -> bool:
        """Add a write; returns False when the write queue is full."""
        return self.wq.push(req)

    @property
    def idle(self) -> bool:
        return not self.rq.entries and not self.wq.entries

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def earliest_burst(self, req: MemRequest, now: int) -> int:
        """Earliest data-burst start for ``req`` given all constraints."""
        is_write = req.is_write
        ready = req.arrival_cycle
        if ready > now:
            ready = now
        bus_free = self.bus_free_cycle
        if is_write and self.ideal_writes:
            # Idealised system (paper Figs. 2/14, Table V "Ideal"): every
            # write occupies the bus for BL/2 and nothing else.
            burst = self._last_wr_burst + self._tccd_s_wr
            if bus_free > burst:
                burst = bus_free
            if ready > burst:
                burst = ready
        else:
            burst = self.banks[req.sc_bank].earliest_burst(
                req.row, req.op, ready
            )
            if bus_free > burst:
                burst = bus_free
            if is_write:
                c = self._last_wr_burst_bg[req.bankgroup] + self._tccd_l_wr
                if c > burst:
                    burst = c
                c = self._last_wr_burst + self._tccd_s_wr
                if c > burst:
                    burst = c
            else:
                c = self._last_rd_burst_bg[req.bankgroup] + self._tccd_l_rd
                if c > burst:
                    burst = c
                c = self._last_rd_burst + self._tccd_s_rd
                if c > burst:
                    burst = c
        if req.op is not self.bus_mode:
            c = bus_free + self._turnaround
            if c > burst:
                burst = c
        return burst

    def _pick_read(self, now: int) -> Optional[MemRequest]:
        """FR-FCFS: oldest row-hit first, else oldest request."""
        entries = self.rq.entries
        if not entries:
            return None
        banks = self.banks
        for req in entries:
            # Open-row equality is exactly the ROW_HIT classification
            # (a precharged bank's open_row is None, never a row number).
            if banks[req.sc_bank].open_row == req.row:
                return req
        return entries[0]

    def _pick_write(self, now: int) -> Optional[MemRequest]:
        """Select the next write to drain.

        'min-latency': the paper's assumed MC behaviour - issue the write
        with the earliest achievable burst.  'fcfs': oldest write first
        (ablation).
        """
        if self.drain_policy == "fcfs":
            return self.wq.oldest()
        best: Optional[MemRequest] = None
        best_burst = 0
        earliest = self.earliest_burst
        for req in self.wq.entries:
            burst = earliest(req, now)
            if best is None or burst < best_burst:
                best, best_burst = req, burst
        return best

    def _update_drain_mode(self, now: int) -> None:
        if self._in_drain:
            if self.wq.at_or_below_low_watermark and not (
                self._drain_all and self.wq.entries
            ):
                self._end_episode()
        elif self.wq.at_high_watermark or (self._drain_all and self.wq.entries):
            self._in_drain = True
            self._episode_start = now
            self._episode_writes = 0
            self._episode_banks = set()
            self._episode_last_burst = _FAR_PAST

    def _end_episode(self) -> None:
        self._in_drain = False
        if self._episode_writes:
            end = self._episode_last_burst + self.timing.burst
            self.stats.episodes.append(
                DrainEpisode(
                    writes=self._episode_writes,
                    unique_banks=len(self._episode_banks),
                    start_cycle=self._episode_start,
                    end_cycle=end,
                )
            )
            self.stats.write_mode_cycles += end - self._episode_start

    def tick(self, now: int) -> Optional[int]:
        """Attempt to issue one request; returns the next cycle to retry.

        Returns None when both queues are empty (the channel re-kicks the
        sub-channel when new requests arrive).
        """
        self._maybe_refresh(now)
        rq_entries = self.rq.entries
        wq_entries = self.wq.entries
        horizon = now + _PIPELINE_HORIZON
        while True:
            self._update_drain_mode(now)
            if not rq_entries and not wq_entries:
                return None
            if self.bus_free_cycle > horizon:
                return self.bus_free_cycle - _PIPELINE_HORIZON
            if self._in_drain:
                req = self._pick_write(now)
            else:
                req = self._pick_read(now)
            if req is None:
                # Reads drained; nothing to do until the write watermark
                # trips or a new read arrives.
                return None
            # Commit the best candidate: its bank preparation (PRE/ACT)
            # starts now and overlaps earlier requests' bursts; the data
            # burst itself is serialised on the bus.
            self._issue(req, self.earliest_burst(req, now))

    def _issue(self, req: MemRequest, burst: int) -> None:
        stats = self.stats
        is_write = req.is_write
        if req.op is not self.bus_mode:
            stats.turnaround_cycles += self._turnaround
            self.bus_mode = req.op
        burst_end = burst + self._burst_cycles
        self.bus_free_cycle = burst_end
        stats.busy_cycles += self._burst_cycles
        req.burst_tick = burst

        if is_write and self.ideal_writes:
            self._last_wr_burst = burst
        else:
            bank = self.banks[req.sc_bank]
            kind = bank.commit(req.row, req.op, burst)
            self._record_kind(req.op, kind)
            if is_write:
                self._last_wr_burst_bg[req.bankgroup] = burst
                self._last_wr_burst = burst
            else:
                self._last_rd_burst_bg[req.bankgroup] = burst
                self._last_rd_burst = burst
            self._maybe_close_row(bank, req.sc_bank, req.row, burst_end)

        if is_write:
            self.wq.remove(req)
            stats.writes_issued += 1
            if self._episode_writes:
                stats.record_w2w(burst - self._episode_last_burst)
            self._episode_writes += 1
            self._episode_banks.add(req.sc_bank)
            self._episode_last_burst = burst
        else:
            self.rq.remove(req)
            stats.reads_issued += 1
        if req.on_complete is not None:
            req.on_complete(burst_end)

    def _record_kind(self, op: Op, kind: AccessKind) -> None:
        if kind is AccessKind.ROW_HIT:
            if op is Op.WRITE:
                self.stats.write_row_hits += 1
            else:
                self.stats.read_row_hits += 1
        elif kind is AccessKind.ROW_CONFLICT:
            if op is Op.WRITE:
                self.stats.write_row_conflicts += 1
            else:
                self.stats.read_row_conflicts += 1

    def _maybe_close_row(self, bank: Bank, bank_id: int, row: int,
                         now: int) -> None:
        """Adaptive open-page: close the row if no queued request needs it."""
        for req in self.rq.entries:
            if req.sc_bank == bank_id and req.row == row:
                return
        for req in self.wq.entries:
            if req.sc_bank == bank_id and req.row == row:
                return
        bank.close_row(now)

    def _maybe_refresh(self, now: int) -> None:
        """All-bank refresh: stall the sub-channel for tRFC every tREFI.

        Modelled as a bus reservation plus closing every row (refresh
        precharges all banks).  Disabled by default to match the paper.
        """
        if not self.refresh_enabled:
            return
        while now >= self._next_refresh:
            start = max(self._next_refresh, self.bus_free_cycle)
            end = start + self.trfc
            self.bus_free_cycle = max(self.bus_free_cycle, end)
            for bank in self.banks:
                bank.close_row(start)
                bank.pre_done_cycle = max(bank.pre_done_cycle, end)
            self._next_refresh += self.trefi
            self.refreshes_performed += 1

    # ------------------------------------------------------------------
    # End-of-simulation helpers
    # ------------------------------------------------------------------

    def set_drain_all(self, enabled: bool) -> None:
        """Force continuous write draining (end-of-run flush)."""
        self._drain_all = enabled

    def finalize(self, now: int) -> None:
        """Close out an in-progress drain episode for the statistics."""
        if self._in_drain:
            self._end_episode()
        # Roll per-bank command counters up into the sub-channel stats.
        acts = sum(b.stats.activates for b in self.banks)
        pres = sum(b.stats.precharges for b in self.banks)
        self.stats.activates = acts
        self.stats.precharges = pres

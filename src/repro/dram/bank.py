"""Per-bank DRAM state machine.

The model tracks each bank's open row and computes, for a candidate request,
the earliest cycle at which its *data burst* could start.  This
"earliest-burst composition" is exactly the level at which the paper reasons
about write latency (Figs. 4-5):

* an open-row access needs only the CAS latency,
* a closed bank needs ACT -> tRCD -> CAS,
* a row-buffer conflict needs the full recovery chain, which for
  back-to-back writes is ``tRCD + tCWL + tWR + tRP`` = 188 cycles
  burst-to-burst (the paper's "24x" case).

Cross-bank constraints (same-bankgroup tCCD_L, the shared data bus, and bus
turnaround) are enforced by :class:`repro.dram.subchannel.SubChannel`; this
module only owns same-bank state.

All times in this module are DRAM command-clock cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.commands import Op
from repro.dram.timing import DDR5Timing


class AccessKind(enum.Enum):
    """How a request interacts with the bank's row buffer."""

    ROW_HIT = "hit"
    ROW_CLOSED = "closed"
    ROW_CONFLICT = "conflict"


@dataclass
class BankStats:
    """Command counters for one bank (feeds the power model)."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    row_closed: int = 0


@dataclass
class Bank:
    """State of one DRAM bank.

    Attributes
    ----------
    open_row:
        Currently open row, or None if the bank is precharged.
    act_cycle:
        Cycle the current row's ACT command was issued (valid when a row is
        open).
    pre_done_cycle:
        Earliest cycle a new ACT may be issued (tRP after the last PRE).
    last_burst_cycle:
        Start cycle of the most recent data burst to this bank.
    last_burst_op:
        Direction of that burst.
    """

    timing: DDR5Timing
    open_row: Optional[int] = None
    act_cycle: int = -(10**9)
    pre_done_cycle: int = 0
    last_burst_cycle: int = -(10**9)
    last_burst_op: Optional[Op] = None
    stats: BankStats = field(default_factory=BankStats)

    def _cas(self, op: Op) -> int:
        return self.timing.cwl if op is Op.WRITE else self.timing.cl

    def classify(self, row: int) -> AccessKind:
        """How would a request for ``row`` interact with the row buffer?"""
        if self.open_row is None:
            return AccessKind.ROW_CLOSED
        if self.open_row == row:
            return AccessKind.ROW_HIT
        return AccessKind.ROW_CONFLICT

    def earliest_burst(self, row: int, op: Op, ready: int) -> int:
        """Earliest cycle the data burst for (row, op) could start.

        ``ready`` is the earliest cycle the controller could have begun
        issuing commands for this request (its arrival at the queue): a
        pipelined controller plans PRE/ACT/CAS ahead of the data slot, so
        preparation overlaps other banks' bursts.  Only same-bank
        constraints are applied here; the sub-channel layers bus and
        bankgroup constraints on top.
        """
        t = self.timing
        cas = self._cas(op)
        kind = self.classify(row)
        if kind is AccessKind.ROW_HIT:
            # RD/WR command may issue once tRCD has elapsed since ACT.
            cmd_ready = max(ready, self.act_cycle + t.trcd)
            return cmd_ready + cas
        if kind is AccessKind.ROW_CLOSED:
            act = max(ready, self.pre_done_cycle)
            return act + t.trcd + cas
        # Row conflict: PRE -> tRP -> ACT -> tRCD -> CAS, respecting write
        # recovery from the previous burst and tRAS for the open row.
        if self.last_burst_op is Op.WRITE:
            recovery = self.last_burst_cycle + t.write_conflict_delay - (
                t.trp + t.trcd + cas
            )
        else:
            recovery = self.last_burst_cycle + t.read_conflict_delay - (
                t.trp + t.trcd + cas
            )
        pre = max(ready, self.act_cycle + t.tras, recovery)
        return pre + t.trp + t.trcd + cas

    def commit(self, row: int, op: Op, burst_cycle: int) -> AccessKind:
        """Record that a burst for (row, op) starts at ``burst_cycle``.

        Returns the row-buffer interaction kind, for statistics.
        """
        t = self.timing
        cas = self._cas(op)
        kind = self.classify(row)
        if kind is AccessKind.ROW_CONFLICT:
            self.stats.precharges += 1
            self.stats.activates += 1
            self.stats.row_conflicts += 1
            self.act_cycle = burst_cycle - cas - t.trcd
        elif kind is AccessKind.ROW_CLOSED:
            self.stats.activates += 1
            self.stats.row_closed += 1
            self.act_cycle = burst_cycle - cas - t.trcd
        else:
            self.stats.row_hits += 1
        self.open_row = row
        self.last_burst_cycle = burst_cycle
        self.last_burst_op = op
        if op is Op.WRITE:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return kind

    def close_row(self, now: int) -> None:
        """Precharge the bank (adaptive open-page row closure).

        The PRE is issued as soon as legal: after tRAS from the ACT and, for
        writes, after write recovery from the last burst.
        """
        if self.open_row is None:
            return
        t = self.timing
        pre = max(now, self.act_cycle + t.tras)
        if self.last_burst_op is Op.WRITE:
            pre = max(pre, self.last_burst_cycle + t.cwl + t.twr)
        else:
            pre = max(pre, self.last_burst_cycle + t.burst)
        self.open_row = None
        self.pre_done_cycle = pre + t.trp
        self.stats.precharges += 1

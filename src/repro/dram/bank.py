"""Per-bank DRAM state machine.

The model tracks each bank's open row and computes, for a candidate request,
the earliest cycle at which its *data burst* could start.  This
"earliest-burst composition" is exactly the level at which the paper reasons
about write latency (Figs. 4-5):

* an open-row access needs only the CAS latency,
* a closed bank needs ACT -> tRCD -> CAS,
* a row-buffer conflict needs the full recovery chain, which for
  back-to-back writes is ``tRCD + tCWL + tWR + tRP`` = 188 cycles
  burst-to-burst (the paper's "24x" case).

Cross-bank constraints (same-bankgroup tCCD_L, the shared data bus, and bus
turnaround) are enforced by :class:`repro.dram.subchannel.SubChannel`; this
module only owns same-bank state.

``earliest_burst`` runs once per queued request per scheduling decision -
it is the single hottest function in the DRAM model - so every per-command
cycle count it needs (CAS, ACT->burst, PRE->burst, conflict recovery) is
precomputed into a flat timing table at construction instead of being
re-derived from :class:`~repro.dram.timing.DDR5Timing` attributes on every
call.

All times in this module are DRAM command-clock cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dram.commands import Op
from repro.dram.timing import DDR5Timing


class AccessKind(enum.Enum):
    """How a request interacts with the bank's row buffer."""

    ROW_HIT = "hit"
    ROW_CLOSED = "closed"
    ROW_CONFLICT = "conflict"


@dataclass(slots=True)
class BankStats:
    """Command counters for one bank (feeds the power model)."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    row_closed: int = 0


class Bank:
    """State of one DRAM bank.

    Attributes
    ----------
    open_row:
        Currently open row, or None if the bank is precharged.
    act_cycle:
        Cycle the current row's ACT command was issued (valid when a row is
        open).
    pre_done_cycle:
        Earliest cycle a new ACT may be issued (tRP after the last PRE).
    last_burst_cycle:
        Start cycle of the most recent data burst to this bank.
    last_burst_op:
        Direction of that burst.
    """

    __slots__ = (
        "timing", "open_row", "act_cycle", "pre_done_cycle",
        "last_burst_cycle", "last_burst_op", "stats",
        # Precomputed per-command timing table (DRAM cycles):
        "_trcd", "_tras", "_trp",
        "_cas_rd", "_cas_wr",               # command -> first data beat
        "_act_burst_rd", "_act_burst_wr",   # ACT -> burst (tRCD + CAS)
        "_pre_burst_rd", "_pre_burst_wr",   # PRE -> burst (tRP + tRCD + CAS)
        "_recovery_rd", "_recovery_wr",     # prev-burst -> conflict burst
        "_wr_to_pre", "_rd_to_pre",         # last burst -> earliest PRE
    )

    def __init__(self, timing: DDR5Timing) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.act_cycle: int = -(10**9)
        self.pre_done_cycle: int = 0
        self.last_burst_cycle: int = -(10**9)
        self.last_burst_op: Optional[Op] = None
        self.stats = BankStats()

        t = timing
        self._trcd = t.trcd
        self._tras = t.tras
        self._trp = t.trp
        self._cas_rd = t.cl
        self._cas_wr = t.cwl
        self._act_burst_rd = t.trcd + t.cl
        self._act_burst_wr = t.trcd + t.cwl
        self._pre_burst_rd = t.trp + t.trcd + t.cl
        self._pre_burst_wr = t.trp + t.trcd + t.cwl
        # Burst-to-burst conflict delay by the *previous* burst's direction
        # (paper Fig. 5: tRCD + tCWL + tWR + tRP after a write).
        self._recovery_wr = t.write_conflict_delay
        self._recovery_rd = t.read_conflict_delay
        # Last burst -> earliest PRE (write recovery / read burst drain).
        self._wr_to_pre = t.cwl + t.twr
        self._rd_to_pre = t.burst

    def classify(self, row: int) -> AccessKind:
        """How would a request for ``row`` interact with the row buffer?

        This is the canonical row-state predicate (:meth:`commit` uses
        it); ``earliest_burst`` and the sub-channel's FR-FCFS scan inline
        the ``open_row`` comparisons instead - they run per queued
        request per scheduling decision.
        """
        if self.open_row is None:
            return AccessKind.ROW_CLOSED
        if self.open_row == row:
            return AccessKind.ROW_HIT
        return AccessKind.ROW_CONFLICT

    def earliest_burst(self, row: int, op: Op, ready: int) -> int:
        """Earliest cycle the data burst for (row, op) could start.

        ``ready`` is the earliest cycle the controller could have begun
        issuing commands for this request (its arrival at the queue): a
        pipelined controller plans PRE/ACT/CAS ahead of the data slot, so
        preparation overlaps other banks' bursts.  Only same-bank
        constraints are applied here; the sub-channel layers bus and
        bankgroup constraints on top.
        """
        open_row = self.open_row
        is_write = op is Op.WRITE
        if open_row == row:
            # Row hit: RD/WR may issue once tRCD has elapsed since ACT.
            cmd_ready = self.act_cycle + self._trcd
            if ready > cmd_ready:
                cmd_ready = ready
            return cmd_ready + (self._cas_wr if is_write else self._cas_rd)
        if open_row is None:
            act = self.pre_done_cycle
            if ready > act:
                act = ready
            return act + (self._act_burst_wr if is_write
                          else self._act_burst_rd)
        # Row conflict: PRE -> tRP -> ACT -> tRCD -> CAS, respecting write
        # recovery from the previous burst and tRAS for the open row.
        pre_burst = self._pre_burst_wr if is_write else self._pre_burst_rd
        recovery = self.last_burst_cycle - pre_burst + (
            self._recovery_wr if self.last_burst_op is Op.WRITE
            else self._recovery_rd
        )
        pre = self.act_cycle + self._tras
        if ready > pre:
            pre = ready
        if recovery > pre:
            pre = recovery
        return pre + pre_burst

    def commit(self, row: int, op: Op, burst_cycle: int) -> AccessKind:
        """Record that a burst for (row, op) starts at ``burst_cycle``.

        Returns the row-buffer interaction kind, for statistics.
        """
        stats = self.stats
        kind = self.classify(row)
        if kind is AccessKind.ROW_HIT:
            stats.row_hits += 1
        else:
            act_burst = (self._act_burst_wr if op is Op.WRITE
                         else self._act_burst_rd)
            if kind is AccessKind.ROW_CLOSED:
                stats.activates += 1
                stats.row_closed += 1
            else:
                stats.precharges += 1
                stats.activates += 1
                stats.row_conflicts += 1
            self.act_cycle = burst_cycle - act_burst
            self.open_row = row
        self.last_burst_cycle = burst_cycle
        self.last_burst_op = op
        if op is Op.WRITE:
            stats.writes += 1
        else:
            stats.reads += 1
        return kind

    def close_row(self, now: int) -> None:
        """Precharge the bank (adaptive open-page row closure).

        The PRE is issued as soon as legal: after tRAS from the ACT and, for
        writes, after write recovery from the last burst.
        """
        if self.open_row is None:
            return
        pre = self.act_cycle + self._tras
        if now > pre:
            pre = now
        drain = self.last_burst_cycle + (
            self._wr_to_pre if self.last_burst_op is Op.WRITE
            else self._rd_to_pre
        )
        if drain > pre:
            pre = drain
        self.open_row = None
        self.pre_done_cycle = pre + self._trp
        self.stats.precharges += 1

"""Analysis helpers: metrics, bandwidth model, reports, tables."""

from repro.analysis.bandwidth import (
    SERVER_SCALE,
    SYNC_BITS,
    WRITEBACK_BYTES,
    BandwidthReport,
    bandwidth_report,
)
from repro.analysis.banks import (
    BankDistribution,
    distribution,
    read_distribution,
    write_distribution,
)
from repro.analysis.figures import (
    read_figure_csv,
    series_to_csv,
    write_figure_csv,
)
from repro.analysis.metrics import amean, gmean, normalize, pct_change
from repro.analysis.report import characterization_report, comparison_report
from repro.analysis.tables import format_series, format_table

__all__ = [
    "BandwidthReport",
    "BankDistribution",
    "distribution",
    "read_distribution",
    "write_distribution",
    "SERVER_SCALE",
    "SYNC_BITS",
    "WRITEBACK_BYTES",
    "amean",
    "bandwidth_report",
    "characterization_report",
    "comparison_report",
    "format_series",
    "format_table",
    "gmean",
    "normalize",
    "pct_change",
    "read_figure_csv",
    "series_to_csv",
    "write_figure_csv",
]

"""BLP-Tracker synchronization-bandwidth model (paper section VII-H).

The paper analyses a 128-core, 8-channel server with 16x the write traffic
of the evaluated 8-core system.  Every writeback costs 70 bytes on the NoC
(6 B physical address + 64 B data) in *any* design; BARD additionally
broadcasts a 9-bit bank address (512 banks across 8 channels) per writeback
so every LLC slice's BLP-Tracker stays synchronized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import RunResult

#: Paper's scaling from the evaluated 8-core system to 128 cores.
SERVER_SCALE = 16

#: Writeback packet: 6-byte address + 64-byte line.
WRITEBACK_BYTES = 70

#: BARD broadcast: bank address for 512 banks = 9 bits.
SYNC_BITS = 9


@dataclass(frozen=True)
class BandwidthReport:
    """Bandwidth accounting for one run, scaled to the server analysis."""

    writeback_gbps: float
    sync_gbps: float

    @property
    def overhead_pct(self) -> float:
        """Sync bandwidth as a percentage of writeback bandwidth.

        Architecturally fixed at 9 bits / 560 bits ~ 1.6% (paper VII-H).
        """
        if self.writeback_gbps <= 0:
            return 0.0
        return 100.0 * self.sync_gbps / self.writeback_gbps


def bandwidth_report(result: RunResult,
                     scale: int = SERVER_SCALE) -> BandwidthReport:
    """Compute Table VIII's bandwidth rows from a run result."""
    if result.runtime_ns <= 0:
        return BandwidthReport(0.0, 0.0)
    writebacks = result.llc.writebacks * scale
    # bytes per nanosecond == GB/s.
    wb_gbps = writebacks * WRITEBACK_BYTES / result.runtime_ns
    sync_gbps = writebacks * (SYNC_BITS / 8) / result.runtime_ns
    return BandwidthReport(writeback_gbps=wb_gbps, sync_gbps=sync_gbps)

"""Per-bank traffic analysis.

The paper's thesis is about the *distribution* of writes over banks; this
module summarises that distribution from the per-bank command counters the
DRAM model keeps, giving a finer-grained view than the per-episode BLP
number (e.g. for diagnosing why a workload's BLP is low).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class BankDistribution:
    """Summary of one counter (reads or writes) across banks."""

    counts: tuple
    total: int
    banks_used: int
    max_share: float
    imbalance: float

    @property
    def mean(self) -> float:
        return self.total / len(self.counts) if self.counts else 0.0


def _gini(values: Sequence[int]) -> float:
    """Gini coefficient: 0 = perfectly even, -> 1 = fully concentrated."""
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    ordered = sorted(values)
    cum = 0
    weighted = 0
    for i, v in enumerate(ordered, start=1):
        cum += v
        weighted += cum
    # Standard discrete Gini from the Lorenz curve.
    return (n + 1 - 2 * weighted / total) / n


def distribution(counts: Sequence[int]) -> BankDistribution:
    """Summarise a per-bank counter vector."""
    total = sum(counts)
    used = sum(1 for c in counts if c)
    max_share = max(counts) / total if total else 0.0
    return BankDistribution(
        counts=tuple(counts),
        total=total,
        banks_used=used,
        max_share=max_share,
        imbalance=_gini(counts),
    )


def write_distribution(system) -> List[BankDistribution]:
    """Per-sub-channel write distribution for a simulated system.

    Takes a :class:`repro.sim.system.System` *after* a run and returns one
    :class:`BankDistribution` per sub-channel (channel-major order).
    """
    out: List[BankDistribution] = []
    for channel in system.channels:
        for sc in channel.subchannels:
            out.append(distribution([b.stats.writes for b in sc.banks]))
    return out


def read_distribution(system) -> List[BankDistribution]:
    """Per-sub-channel read distribution (same shape as writes)."""
    out: List[BankDistribution] = []
    for channel in system.channels:
        for sc in channel.subchannels:
            out.append(distribution([b.stats.reads for b in sc.banks]))
    return out

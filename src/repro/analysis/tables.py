"""Plain-text table/series formatting for the benchmark harness.

The benchmarks print the same rows and series the paper reports; these
helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule (floats shown to 2 decimals)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, labels: Sequence[str],
                  values: Sequence[float]) -> str:
    """One figure series as ``name: label=value ...``."""
    pairs = " ".join(f"{l}={v:.2f}" for l, v in zip(labels, values))
    return f"{name}: {pairs}"

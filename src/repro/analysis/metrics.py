"""Summary metrics used throughout the evaluation."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def gmean(values: Iterable[float]) -> float:
    """Geometric mean; values must be positive."""
    vals: List[float] = [float(v) for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    vals = [float(v) for v in values]
    return sum(vals) / len(vals) if vals else 0.0


def pct_change(new: float, old: float) -> float:
    """Percentage change from ``old`` to ``new``."""
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Each value divided by ``reference``."""
    if reference == 0:
        raise ValueError("cannot normalise by zero")
    return [v / reference for v in values]

"""CSV export of figure data.

The paper's artifact plots its figures from aggregated CSV files
(``collect_stats.py`` + a notebook).  This module provides the equivalent:
each figure's series can be exported as CSV for any plotting tool, without
adding a matplotlib dependency to the library.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Optional, Sequence, Union


def series_to_csv(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    index_name: str = "workload",
    errors: Optional[Dict[str, Sequence[float]]] = None,
) -> str:
    """Render one figure's data as CSV text.

    ``labels`` is the x-axis (workload names, queue sizes, ...);
    ``series`` maps a series name (e.g. "baseline", "bard-h") to one value
    per label.  ``errors`` optionally maps a subset of the series names to
    per-label error-bar half-widths (e.g. sampled-run confidence
    intervals from :meth:`~repro.experiment.ResultSet.error_bars`); each
    becomes a ``<name>_err`` column next to its series.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    errors = errors or {}
    for name, values in errors.items():
        if name not in series:
            raise ValueError(
                f"error bars for unknown series {name!r}; have "
                f"{sorted(series)}")
        if len(values) != len(labels):
            raise ValueError(
                f"error series {name!r} has {len(values)} values for "
                f"{len(labels)} labels")
    columns: list = []
    for name in series:
        columns.append((name, series[name]))
        if name in errors:
            columns.append((f"{name}_err", errors[name]))
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([index_name, *(name for name, _ in columns)])
    for i, label in enumerate(labels):
        writer.writerow(
            [label, *(f"{values[i]:.4f}" for _, values in columns)])
    return buf.getvalue()


def write_figure_csv(
    path: Union[str, Path],
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    index_name: str = "workload",
    errors: Optional[Dict[str, Sequence[float]]] = None,
) -> Path:
    """Write one figure's data to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(labels, series, index_name=index_name,
                                  errors=errors))
    return path


def read_figure_csv(path: Union[str, Path]) -> Dict[str, list]:
    """Read a figure CSV back into ``{column_name: values}``."""
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        columns: Dict[str, list] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                try:
                    columns[name].append(float(cell))
                except ValueError:
                    columns[name].append(cell)
    return columns

"""CSV export of figure data.

The paper's artifact plots its figures from aggregated CSV files
(``collect_stats.py`` + a notebook).  This module provides the equivalent:
each figure's series can be exported as CSV for any plotting tool, without
adding a matplotlib dependency to the library.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Sequence, Union


def series_to_csv(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    index_name: str = "workload",
) -> str:
    """Render one figure's data as CSV text.

    ``labels`` is the x-axis (workload names, queue sizes, ...);
    ``series`` maps a series name (e.g. "baseline", "bard-h") to one value
    per label.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([index_name, *series.keys()])
    for i, label in enumerate(labels):
        writer.writerow([label, *(f"{series[s][i]:.4f}" for s in series)])
    return buf.getvalue()


def write_figure_csv(
    path: Union[str, Path],
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    index_name: str = "workload",
) -> Path:
    """Write one figure's data to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(labels, series, index_name=index_name))
    return path


def read_figure_csv(path: Union[str, Path]) -> Dict[str, list]:
    """Read a figure CSV back into ``{column_name: values}``."""
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        columns: Dict[str, list] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                try:
                    columns[name].append(float(cell))
                except ValueError:
                    columns[name].append(cell)
    return columns

"""One-stop textual report for a baseline/BARD comparison.

Used by the CLI (``python -m repro compare``) and handy in notebooks: takes
the run results and renders the paper's headline metrics side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.bandwidth import bandwidth_report
from repro.analysis.tables import format_table
from repro.sim.results import RunResult


def _cell(result: RunResult, metric: str, value: float) -> object:
    """A table cell: ``mean +/- CI half-width`` for sampled runs."""
    summary = result.sampling
    if summary is not None and metric in summary.metrics:
        est = summary.metrics[metric]
        return f"{value:.2f} ±{est.half_width:.2f}"
    return value


def sampling_note(result: RunResult) -> Optional[str]:
    """One-line description of how a sampled result was measured."""
    summary = result.sampling
    if summary is None:
        return None
    ipc = summary.metrics.get("mean_ipc")
    detail = ""
    if ipc is not None:
        detail = (f"; mean IPC {ipc.mean:.3f} "
                  f"[{ipc.ci_lo:.3f}, {ipc.ci_hi:.3f}] "
                  f"({100 * ipc.rel_error:.1f}% rel err)")
    return (f"sampled ({result.label}): {summary.intervals} x "
            f"{summary.interval_instructions} instructions, "
            f"{summary.scheme} every {summary.period_instructions}, "
            f"{100 * summary.confidence:.0f}% CI{detail}")


def comparison_report(base: RunResult, other: RunResult,
                      workload: str = "") -> str:
    """Render the paper's headline metrics for two runs of one workload.

    Sampled runs show each metric as mean +/- its CI half-width, with a
    per-run sampling footnote (interval plan and IPC interval).
    """
    metrics = [
        ("write BLP (/32)", "write_blp", base.write_blp, other.write_blp),
        ("time writing (%)", "time_writing_pct", base.time_writing_pct,
         other.time_writing_pct),
        ("mean w2w delay (ns)", "mean_w2w_ns", base.mean_w2w_ns,
         other.mean_w2w_ns),
        ("LLC MPKI", "mpki", base.mpki, other.mpki),
        ("LLC WPKI", "wpki", base.wpki, other.wpki),
        ("mean IPC", "mean_ipc", base.mean_ipc, other.mean_ipc),
        ("DRAM energy (uJ)", "", base.power_report().energy_nj / 1000,
         other.power_report().energy_nj / 1000),
    ]
    rows: List[tuple] = [
        (name, _cell(base, metric, bval), _cell(other, metric, oval))
        for name, metric, bval, oval in metrics
    ]
    title = f"{workload}: {base.label} vs {other.label}"
    body = format_table(["metric", base.label, other.label], rows,
                        title=title)
    speedup = other.speedup_pct(base)
    lines = [body, f"weighted speedup: {speedup:+.2f}%"]
    for result in (base, other):
        note = sampling_note(result)
        if note:
            lines.append(note)
    if other.wb_stats is not None:
        s = other.wb_stats
        total = max(1, s.victim_selections)
        lines.append(
            f"decisions: {s.victim_selections} victim selections, "
            f"{100 * s.overrides / total:.1f}% overrides, "
            f"{100 * s.cleanses / total:.1f}% cleanses"
        )
    if other.bard_accuracy is not None and other.bard_accuracy.checked:
        lines.append(
            "BLP-Tracker accuracy: "
            f"{100 * other.bard_accuracy.error_rate:.1f}% of "
            f"{other.bard_accuracy.checked} decisions were to banks with "
            "pending writes"
        )
    bw = bandwidth_report(other)
    lines.append(
        f"sync bandwidth (128-core scale): {bw.sync_gbps:.2f} GB/s "
        f"({bw.overhead_pct:.1f}% of writeback traffic)"
    )
    return "\n".join(lines)


def characterization_report(results: List[tuple],
                            title: Optional[str] = None) -> str:
    """Table IV-style characterization for (workload, RunResult) pairs."""
    rows = [
        (wl, r.mpki, r.wpki, r.write_blp, r.time_writing_pct, r.mean_ipc)
        for wl, r in results
    ]
    return format_table(
        ["workload", "MPKI", "WPKI", "WBLP", "W%", "IPC"],
        rows,
        title=title or "Workload characterization (cf. paper Table IV)",
    )

"""Clock-domain constants.

The simulation engine runs on an integer *tick* of 1/12 ns so that both
clock domains in the paper's system are exact:

* CPU cores at 4 GHz  -> 1 CPU cycle  = 3 ticks,
* DDR5-4800 command clock at 2.4 GHz -> 1 DRAM cycle = 5 ticks.
"""

from __future__ import annotations

#: Engine ticks per second (12 GHz tick base).
TICKS_PER_SECOND = 12_000_000_000

#: Engine ticks per CPU cycle (4 GHz core clock).
TICKS_PER_CPU_CYCLE = 3

#: Engine ticks per DRAM command-clock cycle (2.4 GHz).
TICKS_PER_DRAM_CYCLE = 5

#: Nanoseconds per engine tick.
NS_PER_TICK = 1e9 / TICKS_PER_SECOND


def cpu_cycles(ticks: int) -> float:
    """Convert engine ticks to CPU cycles."""
    return ticks / TICKS_PER_CPU_CYCLE


def dram_cycles(ticks: int) -> float:
    """Convert engine ticks to DRAM cycles."""
    return ticks / TICKS_PER_DRAM_CYCLE


def ticks_from_cpu(cycles: int) -> int:
    """Convert CPU cycles to engine ticks."""
    return cycles * TICKS_PER_CPU_CYCLE


def ticks_from_dram(cycles: int) -> int:
    """Convert DRAM cycles to engine ticks."""
    return cycles * TICKS_PER_DRAM_CYCLE

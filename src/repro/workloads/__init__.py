"""Workload generators and named suites (paper Tables III/IV)."""

from repro.workloads.suites import (
    ALL_WORKLOADS,
    CORE_STRIDE,
    MIXES,
    QUICK_WORKLOADS,
    WORKLOADS,
    PaperRef,
    WorkloadSpec,
    trace_factory,
    workload_names,
)
from repro.workloads.synthetic import (
    blend_trace,
    graph_trace,
    server_trace,
    stream_trace,
)
from repro.workloads.tracefile import load_trace, read_records, save_trace
from repro.workloads.validation import (
    TraceProfile,
    profile_suite,
    profile_trace,
)

__all__ = [
    "TraceProfile",
    "load_trace",
    "profile_suite",
    "profile_trace",
    "read_records",
    "save_trace",
    "ALL_WORKLOADS",
    "CORE_STRIDE",
    "MIXES",
    "PaperRef",
    "QUICK_WORKLOADS",
    "WORKLOADS",
    "WorkloadSpec",
    "blend_trace",
    "graph_trace",
    "server_trace",
    "stream_trace",
    "trace_factory",
    "workload_names",
]

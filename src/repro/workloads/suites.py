"""Named workloads, suites, and mixes (paper Tables III and IV).

Each paper workload maps to a parameterised synthetic generator whose
working set scales with the simulated LLC, preserving the cache pressure
(and hence the LLC writeback behaviour) that drives BARD.  The paper's
measured characteristics (Table IV) are attached to every workload for the
paper-vs-measured comparison in ``bench_table04``.

Per-core physical address spaces are disjoint (1 GB apart), matching the
ratemode/mix methodology where workloads do not share data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

from repro.config.system import SystemConfig
from repro.cpu.trace import TraceRecord
from repro.errors import ConfigError
from repro.workloads.synthetic import (
    blend_trace,
    graph_trace,
    server_trace,
    stream_trace,
)

#: Byte distance between per-core address spaces (within row-bit range).
CORE_STRIDE = 1 << 30

#: Per-core bank-phase offset.  Ratemode runs identical generators on every
#: core; without this, all cores' streams hit the same bank sequence in
#: lockstep (the core stride only changes row bits) and write BLP collapses
#: for regular kernels.  An odd number of cache lines rotates each core's
#: stream to a different bank phase, as independent processes' allocations
#: would in a real system.
CORE_PHASE = 67 * 64


def _core_base(core_id: int) -> int:
    return core_id * CORE_STRIDE + core_id * CORE_PHASE

Builder = Callable[[int, int, int], Iterator[TraceRecord]]


@dataclass(frozen=True)
class PaperRef:
    """Paper Table IV characteristics for one workload."""

    mpki: float
    wpki: float
    wblp: float
    write_pct: float


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: generator + paper reference."""

    name: str
    suite: str
    builder: Builder
    paper: PaperRef


def _spec_blend(ws_mult: float, stream_fraction: float,
                store_fraction: float, hot_fraction: float = 0.5,
                nonmem: int = 2) -> Builder:
    def build(seed: int, base: int, llc: int) -> Iterator[TraceRecord]:
        return blend_trace(
            seed, base, ws_bytes=int(ws_mult * llc),
            stream_fraction=stream_fraction,
            store_fraction=store_fraction,
            hot_fraction=hot_fraction,
            nonmem_per_mem=nonmem,
        )
    return build


def _spec_graph(ws_mult: float, store_prob: float,
                edges: int = 4, nonmem: int = 2) -> Builder:
    def build(seed: int, base: int, llc: int) -> Iterator[TraceRecord]:
        return graph_trace(
            seed, base, vertex_bytes=int(ws_mult * llc),
            store_prob=store_prob, edges_per_vertex=edges,
            nonmem_per_edge=nonmem,
        )
    return build


def _spec_stream(loads: int, stores: int, nonmem: int) -> Builder:
    def build(seed: int, base: int, llc: int) -> Iterator[TraceRecord]:
        return stream_trace(
            seed, base, array_bytes=8 * llc, loads_per_iter=loads,
            stores_per_iter=stores, nonmem_per_iter=nonmem,
        )
    return build


def _spec_server(heap_mult: float, store_fraction: float,
                 zipf_s: float = 0.9, nonmem: int = 3) -> Builder:
    def build(seed: int, base: int, llc: int) -> Iterator[TraceRecord]:
        return server_trace(
            seed, base, heap_bytes=int(heap_mult * llc),
            store_fraction=store_fraction, zipf_s=zipf_s,
            nonmem_per_mem=nonmem,
        )
    return build


def _w(name: str, suite: str, builder: Builder, mpki: float, wpki: float,
       wblp: float, wpct: float) -> WorkloadSpec:
    return WorkloadSpec(name, suite, builder,
                        PaperRef(mpki, wpki, wblp, wpct))


#: All single workloads, in the paper's figure order.
WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        # SPEC2017 (blend generator).
        _w("cam4", "spec", _spec_blend(3, 0.45, 0.40), 9.2, 4.1, 21.6, 43.9),
        _w("roms", "spec", _spec_blend(4, 0.70, 0.20), 13.2, 2.7, 11.4, 26.3),
        _w("omnetpp", "spec", _spec_blend(5, 0.25, 0.40, hot_fraction=0.6),
           13.7, 5.5, 17.9, 22.7),
        _w("bwaves", "spec", _spec_blend(6, 0.65, 0.30), 20.8, 6.1, 23.4,
           39.3),
        _w("wrf", "spec", _spec_blend(8, 0.60, 0.30), 25.4, 7.3, 22.7, 33.1),
        _w("fotonik3d", "spec", _spec_blend(10, 0.70, 0.30), 30.6, 9.7,
           23.9, 36.9),
        _w("lbm", "spec", _spec_blend(16, 0.80, 0.45, nonmem=1), 48.5, 25.5,
           24.6, 51.8),
        # LIGRA (graph generator).
        _w("triangle", "ligra", _spec_graph(4, 0.45), 15.9, 8.1, 22.8, 49.6),
        _w("pagerankdelta", "ligra", _spec_graph(6, 0.30), 25.3, 8.1, 23.2,
           31.6),
        _w("mis", "ligra", _spec_graph(6, 0.40), 26.1, 10.4, 22.8, 42.3),
        _w("bellmanford", "ligra", _spec_graph(10, 0.08), 45.2, 3.3, 21.9,
           10.1),
        _w("cf", "ligra", _spec_graph(10, 0.40), 48.3, 16.2, 23.1, 57.3),
        _w("bc", "ligra", _spec_graph(12, 0.40), 57.2, 20.7, 22.9, 50.6),
        _w("radii", "ligra", _spec_graph(12, 0.28), 60.7, 16.0, 23.1, 29.3),
        _w("pagerank", "ligra", _spec_graph(16, 0.18), 70.0, 10.9, 21.4,
           27.4),
        # STREAM (exact kernels).
        _w("scale", "stream", _spec_stream(1, 1, 3), 123.8, 21.0, 21.2,
           40.9),
        _w("copy", "stream", _spec_stream(1, 1, 2), 128.2, 26.4, 21.1,
           41.0),
        _w("triad", "stream", _spec_stream(2, 1, 4), 110.8, 18.5, 20.1,
           32.3),
        _w("add", "stream", _spec_stream(2, 1, 3), 129.3, 21.7, 20.1, 32.3),
        # Google server traces (Zipf generator).
        _w("whiskey", "google", _spec_server(6, 0.30), 19.2, 5.1, 22.7,
           30.8),
        _w("charlie", "google", _spec_server(5, 0.30), 16.1, 5.3, 22.0,
           32.4),
        _w("merced", "google", _spec_server(6, 0.32), 20.0, 5.7, 22.2,
           31.3),
        _w("delta", "google", _spec_server(8, 0.28), 27.3, 5.1, 22.6, 25.4),
    ]
}

#: Heterogeneous mixes (paper Table III).
MIXES: Dict[str, List[str]] = {
    "mix0": ["cam4", "omnetpp", "lbm", "cf",
             "mis", "whiskey", "merced", "delta"],
    "mix1": ["roms", "bwaves", "triangle", "pagerankdelta",
             "bc", "whiskey", "charlie", "delta"],
    "mix2": ["roms", "fotonik3d", "wrf", "triangle",
             "bc", "bellmanford", "pagerank", "radii"],
    "mix3": ["omnetpp", "bwaves", "cf", "pagerankdelta",
             "mis", "bellmanford", "pagerank", "radii"],
    "mix4": ["cam4", "fotonik3d", "wrf", "lbm",
             "bc", "radii", "charlie", "merced"],
    "mix5": ["roms", "bwaves", "fotonik3d", "wrf",
             "lbm", "triangle", "pagerankdelta", "delta"],
}

#: Paper-order list of every workload used in the figures.
ALL_WORKLOADS: List[str] = list(WORKLOADS) + list(MIXES)

#: A small representative subset (one per suite + one mix) for quick runs.
QUICK_WORKLOADS: List[str] = [
    "lbm", "bwaves", "cf", "bc", "copy", "triad", "whiskey", "mix0",
]


def workload_names(scale: str = "quick") -> Sequence[str]:
    """Workload list for a benchmark scale ('quick' or 'full')."""
    return ALL_WORKLOADS if scale == "full" else QUICK_WORKLOADS


def trace_factory(
    workload: str, config: SystemConfig, seed: int = 7
) -> Callable[[int], Iterator[TraceRecord]]:
    """Per-core trace factory for a named workload or mix.

    Single workloads run in *ratemode* (one copy per core, disjoint address
    spaces); mixes assign Table III constituents round-robin across cores.
    """
    llc = config.llc.size_bytes

    if workload in MIXES:
        parts = MIXES[workload]

        def factory(core_id: int) -> Iterator[TraceRecord]:
            spec = WORKLOADS[parts[core_id % len(parts)]]
            return spec.builder(seed * 1000 + core_id,
                                _core_base(core_id), llc)

        return factory

    if workload not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {workload!r}; choose from "
            f"{ALL_WORKLOADS}"
        )
    spec = WORKLOADS[workload]

    def factory(core_id: int) -> Iterator[TraceRecord]:
        return spec.builder(seed * 1000 + core_id,
                            _core_base(core_id), llc)

    return factory

"""Workload-generator calibration probes.

The synthetic generators stand in for the paper's proprietary traces, so
it matters that their first-order statistics are in the intended bands.
:func:`profile_trace` measures a generator's instruction mix and footprint
without running the simulator; :func:`profile_suite` sweeps every named
workload.  Used by the calibration tests and handy when tuning suite
parameters in :mod:`repro.workloads.suites`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.cpu.trace import LOAD, NONMEM, STORE, TraceRecord
from repro.dram.commands import LINE_SIZE
from repro.dram.mapping import ZenMapping


@dataclass(frozen=True)
class TraceProfile:
    """First-order statistics of a trace prefix."""

    records: int
    mem_fraction: float
    store_fraction: float
    unique_lines: int
    unique_banks: int
    footprint_bytes: int

    @property
    def lines_per_kilo_instruction(self) -> float:
        if not self.records:
            return 0.0
        return self.unique_lines * 1000 / self.records


def profile_trace(trace: Iterator[TraceRecord], count: int = 20_000,
                  mapping: ZenMapping | None = None) -> TraceProfile:
    """Measure the first ``count`` records of ``trace``."""
    mapping = mapping or ZenMapping()
    mem = 0
    stores = 0
    lines = set()
    banks = set()
    lo = None
    hi = None
    n = 0
    for _ in range(count):
        try:
            kind, addr, _pc = next(trace)
        except StopIteration:
            break
        n += 1
        if kind == NONMEM:
            continue
        mem += 1
        if kind == STORE:
            stores += 1
        line = addr // LINE_SIZE
        lines.add(line)
        banks.add(mapping.map(addr).bank_id)
        lo = addr if lo is None else min(lo, addr)
        hi = addr if hi is None else max(hi, addr)
    return TraceProfile(
        records=n,
        mem_fraction=mem / n if n else 0.0,
        store_fraction=stores / mem if mem else 0.0,
        unique_lines=len(lines),
        unique_banks=len(banks),
        footprint_bytes=(hi - lo + LINE_SIZE) if lo is not None else 0,
    )


def profile_suite(config, count: int = 20_000,
                  seed: int = 7) -> Dict[str, TraceProfile]:
    """Profile every single (non-mix) named workload."""
    from repro.workloads.suites import WORKLOADS, trace_factory

    out: Dict[str, TraceProfile] = {}
    for name in WORKLOADS:
        factory = trace_factory(name, config, seed=seed)
        out[name] = profile_trace(factory(0), count=count)
    return out

"""Synthetic trace generators.

The paper evaluates write-intensive (WPKI > 2.5) workloads from SPEC2017,
LIGRA, STREAM and Google server traces.  Those traces are proprietary /
multi-gigabyte, so this module builds deterministic generators that
reproduce each suite's *access-pattern class*:

* :func:`stream_trace` - the exact STREAM kernel access patterns (copy /
  scale / add / triad): long unit-stride streams with a fixed load:store
  ratio.  Near-perfect spatial locality, very high WPKI.
* :func:`graph_trace` - LIGRA-style frontier kernels: a sequential edge
  stream plus random vertex-array reads and probabilistic vertex updates.
  High MPKI, tunable WPKI.
* :func:`blend_trace` - SPEC-like blends: a mix of strided streams and
  random accesses over a working set with a hot subset (temporal reuse).
* :func:`server_trace` - Google-server-like: Zipf-distributed object
  accesses over many small objects, a larger instruction footprint, and a
  steady store stream (logging/state updates).

Every generator is an infinite iterator of ``(kind, addr, pc)`` records
(:mod:`repro.cpu.trace`).  Working-set sizes are expressed as multiples of
the simulated LLC so cache pressure is preserved across scale profiles.
All randomness is seeded - identical seeds give identical traces.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, List

from repro.cpu.trace import LOAD, NONMEM, STORE, TraceRecord

#: Element size used by the kernels (doubles / 8-byte vertex records).
_ELEM = 8

#: Virtual code-region base; data regions start above it.
_CODE_BASE = 0x10000
_DATA_BASE = 0x1000000


def _align(addr: int) -> int:
    return addr & ~7


class _PcStream:
    """Cycles program counters over a code footprint of ``code_bytes``."""

    def __init__(self, base: int, code_bytes: int) -> None:
        self.base = base
        self.limit = max(64, code_bytes)
        self.offset = 0

    def next(self) -> int:
        pc = self.base + self.offset
        self.offset = (self.offset + 4) % self.limit
        return pc


def stream_trace(
    seed: int,
    base: int,
    array_bytes: int,
    loads_per_iter: int = 1,
    stores_per_iter: int = 1,
    nonmem_per_iter: int = 2,
    code_bytes: int = 512,
) -> Iterator[TraceRecord]:
    """STREAM-kernel access pattern.

    copy: loads=1 stores=1; scale: loads=1 stores=1 nonmem=3;
    add/triad: loads=2 stores=1.
    """
    del seed  # fully deterministic access pattern
    arrays = loads_per_iter + stores_per_iter
    bases = [base + _DATA_BASE + i * (array_bytes + 4096)
             for i in range(arrays)]
    elements = array_bytes // _ELEM
    pcs = _PcStream(base + _CODE_BASE, code_bytes)
    i = 0
    while True:
        for a in range(loads_per_iter):
            yield (LOAD, bases[a] + (i % elements) * _ELEM, pcs.next())
        for _ in range(nonmem_per_iter):
            yield (NONMEM, 0, pcs.next())
        for s in range(stores_per_iter):
            yield (STORE,
                   bases[loads_per_iter + s] + (i % elements) * _ELEM,
                   pcs.next())
        i += 1


def graph_trace(
    seed: int,
    base: int,
    vertex_bytes: int,
    store_prob: float = 0.35,
    edges_per_vertex: int = 4,
    nonmem_per_edge: int = 2,
    hot_prob: float = 0.6,
    hot_fraction: float = 1 / 16,
    code_bytes: int = 2048,
) -> Iterator[TraceRecord]:
    """LIGRA-like frontier kernel (push-style updates).

    Real graphs have skewed degree distributions, so a ``hot_prob`` fraction
    of vertex touches land in a hot subset (``hot_fraction`` of the vertex
    array) - this produces the cache reuse that keeps LIGRA's MPKI below
    "every access misses" levels.
    """
    rng = random.Random(seed)
    vertices = max(1024, vertex_bytes // _ELEM)
    hot_vertices = max(64, int(vertices * hot_fraction))
    vertex_base = base + _DATA_BASE
    edge_base = vertex_base + vertex_bytes + 4096
    edge_stream_bytes = 4 * vertex_bytes
    pcs = _PcStream(base + _CODE_BASE, code_bytes)
    edge_pos = 0
    while True:
        # Sequential scan of the compressed edge array.
        yield (LOAD, edge_base + edge_pos, pcs.next())
        edge_pos = (edge_pos + _ELEM * edges_per_vertex) % edge_stream_bytes
        for _ in range(edges_per_vertex):
            if rng.random() < hot_prob:
                target = rng.randrange(hot_vertices)
            else:
                target = rng.randrange(vertices)
            addr = vertex_base + target * _ELEM
            yield (LOAD, addr, pcs.next())
            for _ in range(nonmem_per_edge):
                yield (NONMEM, 0, pcs.next())
            if rng.random() < store_prob:
                yield (STORE, addr, pcs.next())


def blend_trace(
    seed: int,
    base: int,
    ws_bytes: int,
    stream_fraction: float = 0.5,
    store_fraction: float = 0.3,
    hot_fraction: float = 0.5,
    hot_bytes: int = 1 << 14,
    nonmem_per_mem: int = 2,
    code_bytes: int = 4096,
) -> Iterator[TraceRecord]:
    """SPEC-like blend of streaming and random working-set traffic."""
    rng = random.Random(seed)
    data_base = base + _DATA_BASE
    pcs = _PcStream(base + _CODE_BASE, code_bytes)
    stream_pos = 0
    while True:
        for _ in range(nonmem_per_mem):
            yield (NONMEM, 0, pcs.next())
        if rng.random() < stream_fraction:
            addr = data_base + stream_pos
            stream_pos = (stream_pos + _ELEM) % ws_bytes
        elif rng.random() < hot_fraction:
            addr = data_base + _align(rng.randrange(hot_bytes))
        else:
            addr = data_base + _align(rng.randrange(ws_bytes))
        if rng.random() < store_fraction:
            yield (STORE, addr, pcs.next())
        else:
            yield (LOAD, addr, pcs.next())


def server_trace(
    seed: int,
    base: int,
    heap_bytes: int,
    object_bytes: int = 256,
    zipf_s: float = 0.9,
    store_fraction: float = 0.3,
    nonmem_per_mem: int = 3,
    code_bytes: int = 32768,
) -> Iterator[TraceRecord]:
    """Google-server-like Zipf traffic over many small objects."""
    rng = random.Random(seed)
    objects = max(256, heap_bytes // object_bytes)
    ranks = min(objects, 4096)
    weights: List[float] = [1.0 / (r + 1) ** zipf_s for r in range(ranks)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    # Hot ranks are scattered over the heap, not clustered.
    placement = list(range(objects))
    rng.shuffle(placement)
    heap_base = base + _DATA_BASE
    pcs = _PcStream(base + _CODE_BASE, code_bytes)
    while True:
        for _ in range(nonmem_per_mem):
            yield (NONMEM, 0, pcs.next())
        rank = bisect.bisect_left(cdf, rng.random())
        if rank >= ranks:
            rank = ranks - 1
        if ranks < objects and rng.random() < 0.15:
            obj = rng.randrange(objects)  # cold-tail access
        else:
            obj = placement[rank]
        offset = _align(rng.randrange(object_bytes))
        addr = heap_base + obj * object_bytes + offset
        kind = STORE if rng.random() < store_fraction else LOAD
        yield (kind, addr, pcs.next())
        # Touch a second field of the same object half the time.
        if rng.random() < 0.5:
            offset2 = _align(rng.randrange(object_bytes))
            yield (LOAD, heap_base + obj * object_bytes + offset2,
                   pcs.next())

"""Trace-file I/O: persist and replay instruction traces.

The paper's artifact ships multi-gigabyte ChampSim traces; this module
provides the equivalent plumbing for this reproduction's traces so
experiments can be frozen and replayed exactly:

* a compact text format, one record per line: ``<kind> <addr-hex> <pc-hex>``
  with a one-line header, optionally gzip-compressed (``.gz`` suffix),
* :func:`save_trace` to capture the first N records of any generator,
* :func:`iter_records` streaming one validated pass over a file in
  constant memory,
* :func:`load_trace` returning a replaying (infinite) iterator, matching
  the contract the cores expect, built on the streaming reader.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, List, Union

from repro.cpu.trace import TraceRecord, validate_record
from repro.errors import TraceError

#: Magic header line identifying the format and version.
HEADER = "#repro-trace v1"


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Iterator[TraceRecord], path: Union[str, Path],
               count: int) -> int:
    """Write up to ``count`` records of ``trace`` to ``path``.

    Returns the number of records written.  The file can be compressed by
    using a ``.gz`` suffix.
    """
    path = Path(path)
    written = 0
    with _open(path, "w") as fh:
        fh.write(HEADER + "\n")
        for _ in range(count):
            try:
                rec = next(trace)
            except StopIteration:
                break
            kind, addr, pc = validate_record(rec)
            fh.write(f"{kind} {addr:x} {pc:x}\n")
            written += 1
    return written


def iter_records(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream one pass over a trace file, validating each record.

    Records are yielded as they are parsed - nothing is materialised -
    so a multi-gigabyte ``.gz`` trace costs constant memory.  Raises
    :class:`~repro.errors.TraceError` for a bad header, a malformed
    record, or a file with no records (detected at end of stream).
    """
    path = Path(path)
    count = 0
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if header != HEADER:
            raise TraceError(
                f"{path}: not a repro trace file (header {header!r})"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise TraceError(f"{path}:{lineno}: malformed record")
            try:
                rec = (int(parts[0]), int(parts[1], 16), int(parts[2], 16))
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{lineno}: bad field ({exc})"
                ) from None
            yield validate_record(rec)
            count += 1
    if not count:
        raise TraceError(f"{path}: empty trace")


def read_records(path: Union[str, Path]) -> List[TraceRecord]:
    """Read all records from a trace file into a list (tests, tooling).

    Prefer :func:`iter_records` (or :func:`load_trace`) for replay -
    this materialises the whole file.
    """
    return list(iter_records(path))


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Load a trace file as an infinite replaying iterator.

    Each replay pass streams the file through :func:`iter_records`, so
    multi-GB compressed traces never materialise as a Python list.  The
    header is checked eagerly; record validation happens as the stream
    is consumed.
    """
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if header != HEADER:
            raise TraceError(
                f"{path}: not a repro trace file (header {header!r})"
            )

    def forever() -> Iterator[TraceRecord]:
        while True:
            yield from iter_records(path)

    return forever()

"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s plus a seed.
Production code calls :func:`trip` (and :func:`corrupt`) at named
*sites*; with no plan installed these are near-free no-ops, and with a
plan they count matching invocations and fire the configured fault on
the nth one.  Because rules trigger on deterministic invocation counts
and all randomness (garbling, retry jitter) is seeded, a chaos test
replays bit-identically run after run.

Sites currently instrumented:

``simulate``
    Once per run, keyed by the run's content hash, inside
    :func:`repro.experiment.execute.iter_group` - covers Sessions and
    service worker shards alike.
``cache.put``
    After a result file is written (:meth:`ResultCache.put`); the
    ``truncate``/``garble`` actions corrupt the just-written file so
    integrity checking can be exercised end to end.
``client.request``
    Before each HTTP request in :class:`ServiceClient`; ``drop`` makes
    the response vanish (a transient :class:`FaultInjected`), which the
    client's retry loop must absorb.

Actions: ``raise`` (transient :class:`FaultInjected`),
``raise-permanent``, ``delay`` / ``hang`` (sleep ``seconds``; the two
are synonyms - ``hang`` names the intent of sleeping past a timeout),
``kill`` (SIGKILL the current process - a worker crash), ``truncate``
and ``garble`` (corrupt a file at a ``corrupt`` site), and ``drop``
(transient raise, idiomatic at HTTP sites).

Plans install in-process via :func:`install`/:func:`injected`, or
cross-process via the ``REPRO_FAULTS`` environment variable naming a
JSON plan file - which is how a chaos test injects faults into a
``repro serve`` subprocess it intends to SIGKILL.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, \
    Union

#: Environment variable naming a JSON plan file to activate on import.
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("raise", "raise-permanent", "delay", "hang", "kill",
            "truncate", "garble", "drop")


class FaultInjected(Exception):
    """An injected failure; ``transient`` drives retry classification."""

    def __init__(self, message: str, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


@dataclass(frozen=True)
class FaultRule:
    """One fault: fire ``times`` times at ``site`` after ``after`` matches.

    ``match`` is a substring filter on the operation key (run key, cache
    key, request path); empty matches everything.  Invocation counting
    is per rule: the rule fires on matching invocations
    ``after+1 .. after+times`` (``times=0`` = unlimited).
    """

    site: str
    action: str
    match: str = ""
    after: int = 0
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"choose from {_ACTIONS}")

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "action": self.action,
                "match": self.match, "after": self.after,
                "times": self.times, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        return cls(site=str(data["site"]), action=str(data["action"]),
                   match=str(data.get("match", "")),
                   after=int(data.get("after", 0)),
                   times=int(data.get("times", 1)),
                   seconds=float(data.get("seconds", 0.0)))


@dataclass
class FaultPlan:
    """A seeded, counting set of fault rules.

    Counters live on the plan instance (guarded by a lock), so two
    plans never interfere and a fresh plan replays from zero.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -- bookkeeping ---------------------------------------------------

    def _matching(self, site: str,
                  key: str) -> Iterator[Tuple[int, FaultRule]]:
        for index, rule in enumerate(self.rules):
            if rule.site == site and (not rule.match or rule.match in key):
                yield index, rule

    def _should_fire(self, index: int, rule: FaultRule) -> bool:
        with self._lock:
            count = self._counts.get(index, 0) + 1
            self._counts[index] = count
            if count <= rule.after:
                return False
            if rule.times and count > rule.after + rule.times:
                return False
            self._fired[index] = self._fired.get(index, 0) + 1
            return True

    def fired(self) -> int:
        """Total faults fired so far (all rules)."""
        with self._lock:
            return sum(self._fired.values())

    # -- firing --------------------------------------------------------

    def trip(self, site: str, key: str = "") -> None:
        """Fire any matching raise/sleep/kill rule at this site."""
        for index, rule in self._matching(site, key):
            if rule.action in ("truncate", "garble"):
                continue  # file rules only fire via corrupt()
            if not self._should_fire(index, rule):
                continue
            if rule.action in ("delay", "hang"):
                time.sleep(rule.seconds)
            elif rule.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.action == "raise-permanent":
                raise FaultInjected(
                    f"injected permanent fault at {site} ({key})",
                    transient=False)
            else:  # "raise" / "drop"
                raise FaultInjected(
                    f"injected transient fault at {site} ({key})")

    def corrupt(self, site: str, key: str, path: Union[str, Path]) -> bool:
        """Fire any matching truncate/garble rule against ``path``."""
        acted = False
        for index, rule in self._matching(site, key):
            if rule.action not in ("truncate", "garble"):
                continue
            if not self._should_fire(index, rule):
                continue
            acted |= _corrupt_file(Path(path), rule.action)
        return acted

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(rules=[FaultRule.from_dict(r)
                          for r in data.get("rules", [])],
                   seed=int(data.get("seed", 0)))

    def dump(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _corrupt_file(path: Path, action: str) -> bool:
    """Deterministically corrupt ``path`` in place.

    ``truncate`` keeps the first half of the file (torn write -> parse
    error); ``garble`` flips one digit that is *not* a number's leading
    digit, keeping the JSON parseable so only a content checksum can
    catch it.  Falls back to truncation when no safe digit exists.
    """
    try:
        text = path.read_text()
    except OSError:
        return False
    if action == "garble":
        # Garble inside the payload when the file has one - corrupting
        # envelope fields (the key, the checksum string itself) would
        # not simulate the interesting failure: data that lies.
        start = max(text.find('"payload"'), 0)
        for i in range(start + 1, len(text)):
            if text[i].isdigit() and text[i - 1].isdigit():
                flipped = str((int(text[i]) + 1) % 10)
                path.write_text(text[:i] + flipped + text[i + 1:])
                return True
        action = "truncate"  # no safe digit; fall through
    path.write_text(text[:len(text) // 2])
    return True


# -- active-plan registry ----------------------------------------------

_installed: Optional[FaultPlan] = None
_env_plan: Optional[FaultPlan] = None
_env_loaded = False
_registry_lock = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (replacing any previous plan)."""
    global _installed
    with _registry_lock:
        _installed = plan
    return plan


def uninstall() -> None:
    """Deactivate any installed plan (env-file plans stay active)."""
    global _installed
    with _registry_lock:
        _installed = None


def reset() -> None:
    """Forget installed *and* env-loaded plans (test isolation)."""
    global _installed, _env_plan, _env_loaded
    with _registry_lock:
        _installed = None
        _env_plan = None
        _env_loaded = False


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else the ``REPRO_FAULTS`` env plan, else None."""
    global _env_plan, _env_loaded
    if _installed is not None:
        return _installed
    if not _env_loaded:
        with _registry_lock:
            if not _env_loaded:
                path = os.environ.get(FAULTS_ENV)
                if path:
                    try:
                        _env_plan = FaultPlan.load(path)
                    except (OSError, ValueError):
                        _env_plan = None
                _env_loaded = True
    return _env_plan


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(plan):`` - install for the block, then uninstall."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def trip(site: str, key: str = "") -> None:
    """Fire the active plan's rules at ``site`` (no-op without a plan)."""
    plan = active_plan()
    if plan is not None:
        plan.trip(site, key)


def corrupt(site: str, key: str, path: Union[str, Path]) -> bool:
    """File-corruption hook for the active plan (no-op without one)."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.corrupt(site, key, path)

"""Fault tolerance primitives: retry policies and fault injection.

This package gives the execution stack (the experiment service, its
worker pool, the result cache, and the HTTP client) one shared
vocabulary for surviving failures:

* :mod:`repro.resilience.retry` - :class:`RetryPolicy`: bounded
  attempts, exponential backoff with *deterministic* seeded jitter, and
  transient-vs-permanent exception classification.  The worker pool
  re-enqueues transient failures with backoff and quarantines jobs that
  exhaust their budget; the :class:`~repro.service.client.ServiceClient`
  uses the same policy for connection errors and 429 backpressure.
* :mod:`repro.resilience.faults` - :class:`FaultPlan`: seeded,
  reproducible fault injection threaded through ``simulate_group``, the
  result cache, and the HTTP client.  A plan can raise on the nth run,
  sleep past a timeout, kill a worker process, garble or truncate a
  cache file, or drop an HTTP response - so chaos tests replay
  identically under a fixed fault seed.

See ``docs/resilience.md`` for semantics and the operational runbook.
"""

from repro.resilience.faults import FaultInjected, FaultPlan, FaultRule, \
    active_plan, injected, install, reset, trip, uninstall
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "injected",
    "install",
    "reset",
    "trip",
    "uninstall",
]

"""Retry policy: bounded attempts, deterministic backoff, classification.

A :class:`RetryPolicy` answers three questions for any failure:

1. *Is this worth retrying?*  Exceptions are classified transient or
   permanent.  Configuration and programming errors
   (:class:`~repro.errors.ConfigError`, ``TypeError``, ``AssertionError``)
   are permanent - a deterministic simulation will fail the same way
   again - while I/O flakes (``OSError``, ``TimeoutError``,
   ``ConnectionError``) and injected transient faults are retried.
   Everything else defaults to transient: the attempt budget bounds the
   cost of optimism, and the full error chain is recorded either way.
2. *How many times?*  ``max_attempts`` counts total executions, not
   re-executions: ``max_attempts=3`` means one initial run plus two
   retries, after which the job is quarantined.
3. *After how long?*  Exponential backoff
   (``base_delay * multiplier**(attempt-1)``, capped at ``max_delay``)
   plus **deterministic** seeded jitter: the jitter term is a hash of
   ``(seed, key, attempt)``, so two workers retrying different jobs
   decorrelate, yet the exact same schedule replays under a fixed seed -
   which is what makes chaos tests reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple, Type

from repro.errors import ConfigError
from repro.resilience.faults import FaultInjected

#: Exception types that will deterministically recur: never retried.
PERMANENT_TYPES: Tuple[Type[BaseException], ...] = (
    ConfigError,
    TypeError,
    AssertionError,
    NotImplementedError,
    MemoryError,
    KeyboardInterrupt,
    SystemExit,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How failed work is retried (or not).

    Immutable and hashable so one instance can be shared by the worker
    pool, the reaper, and the HTTP client without coordination.
    """

    #: Total execution budget per job (1 = never retry).
    max_attempts: int = 3
    #: First backoff delay, seconds.
    base_delay: float = 0.05
    #: Backoff ceiling, seconds.
    max_delay: float = 5.0
    #: Exponential growth factor per attempt.
    multiplier: float = 2.0
    #: Extra delay fraction added deterministically (0 = pure exponential).
    jitter: float = 0.25
    #: Jitter seed - fix it and the whole retry schedule replays.
    seed: int = 0

    def is_transient(self, exc: BaseException) -> bool:
        """Classify an exception: ``True`` = worth retrying."""
        if isinstance(exc, FaultInjected):
            return exc.transient
        if isinstance(exc, PERMANENT_TYPES):
            return False
        return True

    def _unit_jitter(self, key: str, attempt: int) -> float:
        """Deterministic uniform-ish value in [0, 1) from (seed, key, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** max(0, attempt - 1))
        return raw * (1.0 + self.jitter * self._unit_jitter(key, attempt))

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Retry iff the failure is transient and budget remains.

        ``attempts`` is how many executions have already happened.
        """
        return self.is_transient(exc) and attempts < self.max_attempts

"""Content-addressed result store with read-through accounting.

A thin, counted layer over the experiment layer's persistent
:class:`~repro.experiment.cache.ResultCache`: results are addressed by
the run's content hash, so identical RunSpecs submitted by different
tenants resolve to the same artifact.  Dedup happens at two levels:

* **at rest** - a submission checks the store first; keys already
  materialised are satisfied immediately (``hits``) and never enqueue
  a job;
* **in flight** - keys currently queued or running are shared through
  the :class:`~repro.service.queue.JobQueue`, whose job identity is the
  run key; the store only ever receives one ``put`` per key.

Because the store reuses ``ResultCache`` (same file naming, same
locking), pointing the service at a directory the CLI already populated
makes every previously cached run a warm hit - and vice versa: runs the
service computes are visible to plain ``repro run``/``sweep`` sessions.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiment.cache import ResultCache
from repro.experiment.spec import RunSpec
from repro.sim.results import RunResult


@dataclass
class StoreStats:
    """Read-through accounting (monotonic over the service lifetime)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0


class ResultStore:
    """Counted content-addressed store shared by all tenants."""

    def __init__(self,
                 directory: Optional[Union[str, Path]] = None) -> None:
        self.cache = ResultCache(Path(directory) if directory else None)
        self.stats = StoreStats()
        self._lock = threading.Lock()

    @property
    def directory(self) -> Path:
        return self.cache.directory

    def get(self, key: str) -> Optional[RunResult]:
        """Read-through lookup; counts hits and misses."""
        result = self.cache.get(key)
        with self._lock:
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return result

    def put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        """Publish one finished run (atomic, concurrency-safe)."""
        self.cache.put(key, spec, result)
        with self._lock:
            self.stats.puts += 1

    def __contains__(self, key: str) -> bool:
        """Verified membership - a corrupt entry does not count as present.

        The underlying cache checksums entries on membership checks, so
        admission-time store hits can never be satisfied by a garbled
        file (which would strand the grid waiting on an unreadable
        result); such entries are quarantined and recomputed instead.
        """
        return key in self.cache

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            data = asdict(self.stats)
        data["integrity_failures"] = self.cache.integrity_failures
        return data

"""HTTP/JSON API over an :class:`ExperimentService` (stdlib only).

Endpoints (all JSON bodies)::

    GET  /v1/health                liveness + version
    GET  /v1/stats                 service-wide accounting
    GET  /v1/metrics               Prometheus text exposition
                                   (the one non-JSON endpoint)
    POST /v1/grids                 submit a grid        -> 202 status
                                   (body may carry "adaptive": an
                                   AdaptivePolicy dict switching the
                                   grid to adaptive orchestration)
    GET  /v1/grids/<id>            progress snapshot    -> 200 status
    GET  /v1/grids/<id>/result     finished ResultSet   -> 200 records
                                   (?metrics=a,b selects metric columns)
    POST /v1/grids/<id>/cancel     cancel a grid        -> 200 status
    GET  /v1/jobs                  job listing          -> 200 jobs
                                   (?state=quarantined filters by state)
    POST /v1/jobs/requeue          requeue quarantined  -> 200 count
                                   (body {"keys": [...]} limits scope)

Error mapping: malformed payloads -> 400, unknown grids -> 404,
results requested before completion -> 409 (body carries the status so
clients can keep polling), backpressure -> 429 with ``Retry-After``.

The server is a ``ThreadingHTTPServer``: submissions and polls are
served concurrently with execution, which runs on the service's worker
pool, not on request threads.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import telemetry
from repro.errors import ConfigError
from repro.service.queue import QueueFull
from repro.service.service import ExperimentService, ResultPending, \
    UnknownGrid

#: Advertised in /v1/health and the Server header.
API_VERSION = "1"

#: Submission bodies above this are rejected outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: ExperimentService, quiet: bool = True) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes /v1/* to the service; everything else is a 404."""

    server_version = f"repro-service/{API_VERSION}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args: object) -> None:
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(fmt, *args)

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, code: int, payload: Dict[str, Any],
              retry_after: Optional[int] = None) -> None:
        self._send_bytes(code, json.dumps(payload).encode(),
                         "application/json", retry_after=retry_after)

    def _send_bytes(self, code: int, body: bytes, content_type: str,
                    retry_after: Optional[int] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)
        telemetry.REGISTRY.counter(
            "repro_http_requests_total", "API requests served",
            ("method", "code")).labels(
                method=self.command, code=str(code)).inc()

    def _error(self, code: int, message: str,
               retry_after: Optional[int] = None,
               **extra: Any) -> None:
        self._send(code, dict({"error": message}, **extra),
                   retry_after=retry_after)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"request body too large ({length} bytes)")
        try:
            return json.loads(self.rfile.read(length))
        except ValueError:
            raise ConfigError("request body is not valid JSON")

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "health"]:
                self._send(200, {"status": "ok",
                                 "version": API_VERSION})
            elif parts == ["v1", "stats"]:
                self._send(200, self.service.stats())
            elif parts == ["v1", "metrics"]:
                self._send_bytes(
                    200, self.service.metrics_text().encode(),
                    "text/plain; version=0.0.4; charset=utf-8")
            elif len(parts) == 3 and parts[:2] == ["v1", "grids"]:
                self._send(200, self.service.status(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["v1", "grids"] \
                    and parts[3] == "result":
                query = parse_qs(url.query)
                metrics = [m for chunk in query.get("metrics", [])
                           for m in chunk.split(",") if m]
                self._send(200,
                           self.service.result(parts[2], metrics))
            elif parts == ["v1", "jobs"]:
                query = parse_qs(url.query)
                state = (query.get("state") or [None])[0]
                jobs = self.service.jobs(state)
                self._send(200, {"jobs": jobs, "count": len(jobs)})
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except UnknownGrid as exc:
            self._error(404, f"unknown grid {exc.args[0]!r}")
        except ResultPending as exc:
            self._send(409, dict(exc.status,
                                 error="result not ready"))
        except (ConfigError, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "grids"]:
                payload = self._read_body()
                self._send(202, self.service.submit_request(payload))
            elif len(parts) == 4 and parts[:2] == ["v1", "grids"] \
                    and parts[3] == "cancel":
                self._send(200, self.service.cancel(parts[2]))
            elif parts == ["v1", "jobs", "requeue"]:
                length = int(self.headers.get("Content-Length") or 0)
                body = self._read_body() if length > 0 else {}
                keys = body.get("keys") if isinstance(body, dict) \
                    else None
                if keys is not None and not isinstance(keys, list):
                    raise ConfigError("'keys' must be a list of job keys")
                self._send(200, self.service.requeue_quarantined(
                    [str(k) for k in keys] if keys is not None else None))
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except QueueFull as exc:
            self._error(429, str(exc), retry_after=1,
                        tenant=exc.tenant, scope=exc.scope,
                        limit=exc.limit)
        except UnknownGrid as exc:
            self._error(404, f"unknown grid {exc.args[0]!r}")
        except (ConfigError, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")


def make_server(service: ExperimentService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> ServiceHTTPServer:
    """Bind the API (port 0 = ephemeral; see ``server_address``)."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)

"""Durable, tenant-aware job queue.

A *job* is one unique simulation - a content-hashed
:class:`~repro.experiment.spec.RunSpec` - admitted on behalf of one or
more grids.  The job's identity IS its run key, which gives in-flight
deduplication by construction: a second tenant submitting an identical
RunSpec attaches to the existing job instead of enqueueing a duplicate,
and both grids observe the single execution.

Every state transition is persisted as one JSON file per job
(atomic write-and-rename), so a killed service resumes in place: on
reload, jobs found ``running`` are demoted back to ``pending`` - their
worker died with the process - and everything finished stays finished.

Scheduling is fair across tenants: :meth:`JobQueue.lease` picks the next
tenant by smooth weighted round-robin, then hands the worker that
tenant's best job *plus* every queued job sharing its warm group (see
:func:`~repro.experiment.spec.warm_group_key`), so a shard still warms
once per group exactly like an in-process Session.  Backpressure is a
bounded queue: admitting new jobs past the per-tenant or global pending
limit raises :class:`QueueFull`, which the HTTP layer maps to a 429.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.experiment.serialize import spec_from_dict
from repro.experiment.spec import RunSpec, warm_group_key

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED)

#: On-disk job record format; unknown versions are skipped on load.
JOB_FORMAT = 1


class QueueFull(Exception):
    """Admission would exceed a pending-jobs bound (HTTP 429 material)."""

    def __init__(self, tenant: str, pending: int, limit: int,
                 scope: str) -> None:
        super().__init__(
            f"{scope} queue full for tenant {tenant!r}: {pending} jobs "
            f"pending (limit {limit}); retry after some complete")
        self.tenant = tenant
        self.pending = pending
        self.limit = limit
        self.scope = scope


@dataclass
class Job:
    """One unique simulation and its queue bookkeeping."""

    key: str
    spec: RunSpec
    tenant: str
    priority: int = 0
    state: str = PENDING
    #: Grid ids that need this job (the dedup fan-in).
    grids: Tuple[str, ...] = ()
    #: Admission order; ties in priority break oldest-first.
    seq: int = 0
    attempts: int = 0
    error: str = ""
    #: Warm-checkpoint-sharing key (None = cannot share).
    group: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.group is None:
            self.group = warm_group_key(self.spec)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": JOB_FORMAT,
            "key": self.key,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "grids": list(self.grids),
            "seq": self.seq,
            "attempts": self.attempts,
            "error": self.error,
            "spec": self.spec.describe(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        if data.get("format") != JOB_FORMAT:
            raise ValueError(f"unknown job format {data.get('format')!r}")
        return cls(
            key=str(data["key"]),
            spec=spec_from_dict(data["spec"]),
            tenant=str(data["tenant"]),
            priority=int(data.get("priority", 0)),
            state=str(data.get("state", PENDING)),
            grids=tuple(data.get("grids", ())),
            seq=int(data.get("seq", 0)),
            attempts=int(data.get("attempts", 0)),
            error=str(data.get("error", "")),
        )


class JobQueue:
    """Disk-backed job table with fair leasing and bounded admission."""

    def __init__(self, directory: Path,
                 max_pending_per_tenant: int = 64,
                 max_pending_total: int = 256,
                 tenant_weights: Optional[Mapping[str, float]] = None
                 ) -> None:
        self.directory = Path(directory)
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_pending_total = max_pending_total
        self.tenant_weights = dict(tenant_weights or {})
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._wrr_credit: Dict[str, float] = {}
        #: Jobs found mid-run at load time and requeued (resume evidence).
        self.resumed = 0
        self._load()

    # -- persistence ---------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _persist(self, job: Job) -> None:
        from repro.service.util import atomic_write_json

        atomic_write_json(self._path(job.key), job.to_dict())

    def _load(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro.service.util import read_json

        for path in sorted(self.directory.glob("*.json")):
            data = read_json(path)
            if data is None:
                continue
            try:
                job = Job.from_dict(data)
            except Exception:
                # Corrupt or stale-format job files are skipped, not
                # fatal - the owning grid re-admits the run on reload.
                continue
            if job.state == RUNNING:
                # The worker that held this lease died with the previous
                # process; requeue so the run is never lost.
                job.state = PENDING
                self.resumed += 1
                self._persist(job)
            self._jobs[job.key] = job
            self._seq = max(self._seq, job.seq + 1)

    # -- admission -----------------------------------------------------

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def _pending_counts(self) -> Tuple[Dict[str, int], int]:
        per_tenant: Dict[str, int] = {}
        total = 0
        for job in self._jobs.values():
            if job.state in (PENDING, RUNNING):
                per_tenant[job.tenant] = per_tenant.get(job.tenant, 0) + 1
                total += 1
        return per_tenant, total

    def admit(self, new_specs: List[RunSpec], attach_keys: List[str],
              tenant: str, priority: int = 0,
              grid_id: Optional[str] = None) -> Tuple[int, int]:
        """Atomically admit a grid's share of the queue.

        ``new_specs`` become fresh jobs (subject to the pending bounds -
        the whole batch is admitted or :class:`QueueFull` is raised and
        nothing changes); ``attach_keys`` are existing jobs this grid
        additionally depends on (in-flight dedup - attaching is free and
        never rejected).  Returns ``(jobs created, jobs attached)``.
        """
        with self._lock:
            per_tenant, total = self._pending_counts()
            want = len(new_specs)
            have = per_tenant.get(tenant, 0)
            if want and have + want > self.max_pending_per_tenant:
                raise QueueFull(tenant, have, self.max_pending_per_tenant,
                                "per-tenant")
            if want and total + want > self.max_pending_total:
                raise QueueFull(tenant, total, self.max_pending_total,
                                "global")
            grids = (grid_id,) if grid_id else ()
            created = attached = 0
            for spec in new_specs:
                key = spec.key()
                if key in self._jobs and \
                        self._jobs[key].state in (PENDING, RUNNING, DONE):
                    # Raced with another submit between the caller's
                    # lookup and now; treat as an attach.
                    attach_keys = list(attach_keys) + [key]
                    continue
                job = Job(key=key, spec=spec, tenant=tenant,
                          priority=priority, grids=grids, seq=self._seq)
                self._seq += 1
                self._jobs[key] = job
                self._persist(job)
                created += 1
            for key in attach_keys:
                job = self._jobs.get(key)
                if job is None:
                    continue
                changed = False
                if grid_id and grid_id not in job.grids:
                    job.grids = job.grids + (grid_id,)
                    changed = True
                if priority > job.priority:
                    job.priority = priority
                    changed = True
                if job.state in (FAILED, CANCELLED):
                    # A fresh grid wants a job that previously failed or
                    # was cancelled: give it another chance.
                    job.state = PENDING
                    job.error = ""
                    changed = True
                if changed:
                    self._persist(job)
                attached += 1
            return created, attached

    # -- leasing -------------------------------------------------------

    def _weight(self, tenant: str) -> float:
        return max(float(self.tenant_weights.get(tenant, 1.0)), 1e-9)

    def _pick_tenant(self, tenants: List[str]) -> str:
        """Smooth weighted round-robin over tenants with pending work.

        Deterministic: every candidate earns its weight in credit each
        round, the richest (ties broken alphabetically) wins and pays
        back the total - so over N rounds each tenant is picked in
        proportion to its weight, regardless of queue depth.
        """
        total = 0.0
        best: Optional[str] = None
        for tenant in sorted(tenants):
            weight = self._weight(tenant)
            self._wrr_credit[tenant] = \
                self._wrr_credit.get(tenant, 0.0) + weight
            total += weight
            if best is None or \
                    self._wrr_credit[tenant] > self._wrr_credit[best]:
                best = tenant
        assert best is not None
        self._wrr_credit[best] -= total
        return best

    def lease(self, max_jobs: int = 8) -> List[Job]:
        """Claim the next warm group of jobs for a worker (may be empty).

        The head job is the winning tenant's highest-priority, oldest
        pending job; if it belongs to a warm-sharing group, up to
        ``max_jobs - 1`` queued groupmates (any tenant - they share
        identical warm state by construction) ride along so the shard
        warms once for all of them.  Leased jobs transition to
        ``running`` durably before they are returned.
        """
        with self._lock:
            pending = [j for j in self._jobs.values()
                       if j.state == PENDING]
            if not pending:
                return []
            tenants = list({j.tenant for j in pending})
            tenant = tenants[0] if len(tenants) == 1 \
                else self._pick_tenant(tenants)
            mine = sorted((j for j in pending if j.tenant == tenant),
                          key=lambda j: (-j.priority, j.seq))
            head = mine[0]
            group = [head]
            if head.group is not None:
                mates = [j for j in pending
                         if j is not head and j.group == head.group]
                mates.sort(key=lambda j: (-j.priority, j.seq))
                group.extend(mates[:max(0, max_jobs - 1)])
            for job in group:
                job.state = RUNNING
                job.attempts += 1
                self._persist(job)
            return group

    # -- completion ----------------------------------------------------

    def _transition(self, key: str, state: str, error: str = "") -> None:
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                return
            job.state = state
            job.error = error
            self._persist(job)

    def complete(self, key: str) -> None:
        """Mark a leased job finished (its result is in the store)."""
        self._transition(key, DONE)

    def fail(self, key: str, error: str) -> None:
        """Mark a leased job failed, keeping the error for status calls."""
        self._transition(key, FAILED, error)

    def release(self, keys: List[str]) -> None:
        """Return leased-but-unfinished jobs to the queue (shutdown path)."""
        with self._lock:
            for key in keys:
                job = self._jobs.get(key)
                if job is not None and job.state == RUNNING:
                    job.state = PENDING
                    self._persist(job)

    def detach_grid(self, grid_id: str) -> int:
        """Drop a cancelled grid's interest; orphaned pending jobs die.

        Jobs still wanted by another grid keep running - cancellation
        never yanks work out from under a different tenant.  Returns the
        number of jobs cancelled outright.
        """
        cancelled = 0
        with self._lock:
            for job in self._jobs.values():
                if grid_id not in job.grids:
                    continue
                job.grids = tuple(g for g in job.grids if g != grid_id)
                if not job.grids and job.state == PENDING:
                    job.state = CANCELLED
                    cancelled += 1
                self._persist(job)
        return cancelled

    # -- introspection -------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Job totals by state (all states present, zeros included)."""
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def tenant_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant job totals by state."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for job in self._jobs.values():
                bucket = out.setdefault(
                    job.tenant, {state: 0 for state in STATES})
                bucket[job.state] += 1
            return out

    def outstanding(self) -> int:
        """Jobs still pending or running (the drain condition)."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state in (PENDING, RUNNING))

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

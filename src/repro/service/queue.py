"""Durable, tenant-aware job queue.

A *job* is one unique simulation - a content-hashed
:class:`~repro.experiment.spec.RunSpec` - admitted on behalf of one or
more grids.  The job's identity IS its run key, which gives in-flight
deduplication by construction: a second tenant submitting an identical
RunSpec attaches to the existing job instead of enqueueing a duplicate,
and both grids observe the single execution.

Every state transition is persisted as one JSON file per job
(atomic write-and-rename), so a killed service resumes in place: on
reload, jobs found ``running`` are demoted back to ``pending`` - their
worker died with the process - and everything finished stays finished.
Torn or truncated job files (a crash mid-write on a non-atomic
filesystem) are moved to a ``quarantine/`` sidecar directory with a
warning instead of refusing to start; the owning grid re-admits the
lost run at reconciliation.

Failure handling is attempt-aware: a leased job carries an ``attempts``
count and a *lease epoch* so stale workers (reaped after a timeout)
cannot complete or fail a job that was already handed to someone else.
Transient failures re-enqueue with a ``not_before`` backoff timestamp;
jobs that exhaust their retry budget move to the terminal
``quarantined`` state (a dead-letter, carrying the full error chain)
instead of poisoning their grid - see
:meth:`retry` / :meth:`quarantine` / :meth:`requeue_quarantined`.

Scheduling is fair across tenants: :meth:`JobQueue.lease` picks the next
tenant by smooth weighted round-robin, then hands the worker that
tenant's best job *plus* every queued job sharing its warm group (see
:func:`~repro.experiment.spec.warm_group_key`), so a shard still warms
once per group exactly like an in-process Session.  Jobs marked
``solo`` (retries isolated after a group crash) always lease alone.
Backpressure is a bounded queue: admitting new jobs past the per-tenant
or global pending limit raises :class:`QueueFull`, which the HTTP layer
maps to a 429.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import telemetry
from repro.experiment.serialize import spec_from_dict
from repro.experiment.spec import RunSpec, warm_group_key

logger = logging.getLogger("repro.service")

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: Dead-letter: the job exhausted its retry budget (or failed
#: permanently) and sits aside with its error chain until an operator
#: requeues it - its grid keeps executing every sibling.
QUARANTINED = "quarantined"

STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)

#: States a re-admitting grid resurrects back to PENDING.
_RESURRECTABLE = (FAILED, CANCELLED, QUARANTINED)

#: On-disk job record format; unknown versions are skipped on load.
JOB_FORMAT = 1

#: Most recent error-chain entries kept per job (bounds file growth).
MAX_ERROR_CHAIN = 8


class QueueFull(Exception):
    """Admission would exceed a pending-jobs bound (HTTP 429 material)."""

    def __init__(self, tenant: str, pending: int, limit: int,
                 scope: str) -> None:
        super().__init__(
            f"{scope} queue full for tenant {tenant!r}: {pending} jobs "
            f"pending (limit {limit}); retry after some complete")
        self.tenant = tenant
        self.pending = pending
        self.limit = limit
        self.scope = scope


@dataclass
class Job:
    """One unique simulation and its queue bookkeeping."""

    key: str
    spec: RunSpec
    tenant: str
    priority: int = 0
    state: str = PENDING
    #: Grid ids that need this job (the dedup fan-in).
    grids: Tuple[str, ...] = ()
    #: Admission order; ties in priority break oldest-first.
    seq: int = 0
    attempts: int = 0
    error: str = ""
    #: One entry per failed attempt, oldest first (capped).
    error_chain: List[str] = field(default_factory=list)
    #: Retries isolated after a group crash lease alone.
    solo: bool = False
    #: Earliest wall-clock time this job may lease again (backoff).
    not_before: float = 0.0
    #: Wall-clock time the job was admitted (queue-age telemetry;
    #: 0.0 for records written before the field existed).
    enqueued_at: float = 0.0
    #: Lease epoch of the worker currently holding the job.  Transient:
    #: not persisted - a reloaded queue demotes RUNNING jobs anyway.
    lease: int = field(default=0, repr=False, compare=False)
    #: When the current lease was granted (transient, run-time metric).
    leased_at: float = field(default=0.0, repr=False, compare=False)
    #: Warm-checkpoint-sharing key (None = cannot share).
    group: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.group is None:
            self.group = warm_group_key(self.spec)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": JOB_FORMAT,
            "key": self.key,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "grids": list(self.grids),
            "seq": self.seq,
            "attempts": self.attempts,
            "error": self.error,
            "error_chain": list(self.error_chain),
            "solo": self.solo,
            "not_before": self.not_before,
            "enqueued_at": self.enqueued_at,
            "spec": self.spec.describe(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        if data.get("format") != JOB_FORMAT:
            raise ValueError(f"unknown job format {data.get('format')!r}")
        return cls(
            key=str(data["key"]),
            spec=spec_from_dict(data["spec"]),
            tenant=str(data["tenant"]),
            priority=int(data.get("priority", 0)),
            state=str(data.get("state", PENDING)),
            grids=tuple(data.get("grids", ())),
            seq=int(data.get("seq", 0)),
            attempts=int(data.get("attempts", 0)),
            error=str(data.get("error", "")),
            error_chain=[str(e) for e in data.get("error_chain", [])],
            solo=bool(data.get("solo", False)),
            not_before=float(data.get("not_before", 0.0)),
            enqueued_at=float(data.get("enqueued_at", 0.0)),
        )

    def record_error(self, error: str) -> None:
        """Append to the bounded error chain and update the latest error."""
        self.error = error
        self.error_chain.append(f"attempt {self.attempts}: {error}")
        del self.error_chain[:-MAX_ERROR_CHAIN]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class JobQueue:
    """Disk-backed job table with fair leasing and bounded admission."""

    def __init__(self, directory: Path,
                 max_pending_per_tenant: int = 64,
                 max_pending_total: int = 256,
                 tenant_weights: Optional[Mapping[str, float]] = None
                 ) -> None:
        self.directory = Path(directory)
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_pending_total = max_pending_total
        self.tenant_weights = dict(tenant_weights or {})
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._lease_seq = 0
        self._wrr_credit: Dict[str, float] = {}
        #: Jobs found mid-run at load time and requeued (resume evidence).
        self.resumed = 0
        #: Torn/corrupt job files moved aside at load time.
        self.quarantined_files = 0
        self._load()

    # -- persistence ---------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _persist(self, job: Job) -> None:
        from repro.service.util import atomic_write_json

        atomic_write_json(self._path(job.key), job.to_dict())

    def _transition(self, job: Job, old: str, reason: str = "") -> None:
        """Record one job state change: structured log + counter.

        Operational (always-on) telemetry: every transition increments
        ``repro_jobs_transitions_total{from_state,to_state}`` in the
        process registry and emits a ``job.transition`` log record whose
        extras surface as top-level fields in ``--log-json`` mode.
        """
        if job.state == old:
            return
        telemetry.REGISTRY.counter(
            "repro_jobs_transitions_total",
            "Job state transitions by (from, to) pair",
            ("from_state", "to_state")).labels(
                from_state=old, to_state=job.state).inc()
        logger.info(
            "job %s (%s): %s -> %s%s", job.key[:12], job.tenant, old,
            job.state, f" ({reason})" if reason else "",
            extra={"event": "job.transition", "job": job.key,
                   "tenant": job.tenant, "from_state": old,
                   "to_state": job.state, "attempts": job.attempts,
                   "reason": reason})

    def _quarantine_file(self, path: Path, reason: str) -> None:
        """Move an unreadable job file aside so the service still starts.

        The run itself is not lost: grid reconciliation rebuilds any job
        that is neither stored nor queued from the grid record's specs.
        """
        target_dir = self.directory / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            path.replace(target_dir / path.name)
        except OSError:  # pragma: no cover - filesystem-dependent
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined_files += 1
        logger.warning(
            "quarantined unreadable job file %s (%s); the owning grid "
            "re-admits the run at reconciliation", path.name, reason)

    def _load(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro.service.util import read_json

        for path in sorted(self.directory.glob("*.json")):
            data = read_json(path)
            if data is None:
                # Torn mid-write (crash) or truncated: never fatal.
                self._quarantine_file(path, "not valid JSON")
                continue
            try:
                job = Job.from_dict(data)
            except Exception as exc:
                self._quarantine_file(
                    path, f"{type(exc).__name__}: {exc}")
                continue
            if job.state == RUNNING:
                # The worker that held this lease died with the previous
                # process; requeue so the run is never lost.
                job.state = PENDING
                self.resumed += 1
                self._persist(job)
                self._transition(job, RUNNING, reason="resumed at load")
            self._jobs[job.key] = job
            self._seq = max(self._seq, job.seq + 1)

    # -- admission -----------------------------------------------------

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def _pending_counts(self) -> Tuple[Dict[str, int], int]:
        per_tenant: Dict[str, int] = {}
        total = 0
        for job in self._jobs.values():
            if job.state in (PENDING, RUNNING):
                per_tenant[job.tenant] = per_tenant.get(job.tenant, 0) + 1
                total += 1
        return per_tenant, total

    def admit(self, new_specs: List[RunSpec], attach_keys: List[str],
              tenant: str, priority: int = 0,
              grid_id: Optional[str] = None,
              internal: bool = False) -> Tuple[int, int]:
        """Atomically admit a grid's share of the queue.

        ``new_specs`` become fresh jobs (subject to the pending bounds -
        the whole batch is admitted or :class:`QueueFull` is raised and
        nothing changes); ``attach_keys`` are existing jobs this grid
        additionally depends on (in-flight dedup - attaching is free and
        never rejected).  Returns ``(jobs created, jobs attached)``.

        ``internal=True`` marks a service-originated continuation of an
        *already admitted* grid - adaptive refinement rounds, restart
        reconciliation, lost-result re-admission.  Those are exempt from
        the pending bounds: backpressure exists to push back on new
        submitters at the door, and there is no submitter left to retry
        a 429 once a grid is in flight, so bounding continuations could
        only deadlock grids against each other.
        """
        with self._lock:
            per_tenant, total = self._pending_counts()
            want = len(new_specs) if not internal else 0
            have = per_tenant.get(tenant, 0)
            if want and have + want > self.max_pending_per_tenant:
                raise QueueFull(tenant, have, self.max_pending_per_tenant,
                                "per-tenant")
            if want and total + want > self.max_pending_total:
                raise QueueFull(tenant, total, self.max_pending_total,
                                "global")
            grids = (grid_id,) if grid_id else ()
            created = attached = 0
            for spec in new_specs:
                key = spec.key()
                if key in self._jobs and \
                        self._jobs[key].state in (PENDING, RUNNING, DONE):
                    # Raced with another submit between the caller's
                    # lookup and now; treat as an attach.
                    attach_keys = list(attach_keys) + [key]
                    continue
                job = Job(key=key, spec=spec, tenant=tenant,
                          priority=priority, grids=grids, seq=self._seq,
                          enqueued_at=time.time())
                self._seq += 1
                self._jobs[key] = job
                self._persist(job)
                self._transition(job, "new", reason="admitted")
                created += 1
            for key in attach_keys:
                job = self._jobs.get(key)
                if job is None:
                    continue
                changed = False
                if grid_id and grid_id not in job.grids:
                    job.grids = job.grids + (grid_id,)
                    changed = True
                if priority > job.priority:
                    job.priority = priority
                    changed = True
                if job.state in _RESURRECTABLE:
                    # A fresh grid wants a job that previously failed,
                    # was cancelled, or sat in quarantine: give it a
                    # whole new attempt budget.
                    old = job.state
                    job.state = PENDING
                    job.error = ""
                    job.attempts = 0
                    job.not_before = 0.0
                    job.enqueued_at = time.time()
                    self._transition(job, old,
                                     reason="resurrected by attach")
                    changed = True
                if changed:
                    self._persist(job)
                attached += 1
            return created, attached

    # -- leasing -------------------------------------------------------

    def _weight(self, tenant: str) -> float:
        return max(float(self.tenant_weights.get(tenant, 1.0)), 1e-9)

    def _pick_tenant(self, tenants: List[str]) -> str:
        """Smooth weighted round-robin over tenants with pending work.

        Deterministic: every candidate earns its weight in credit each
        round, the richest (ties broken alphabetically) wins and pays
        back the total - so over N rounds each tenant is picked in
        proportion to its weight, regardless of queue depth.
        """
        total = 0.0
        best: Optional[str] = None
        for tenant in sorted(tenants):
            weight = self._weight(tenant)
            self._wrr_credit[tenant] = \
                self._wrr_credit.get(tenant, 0.0) + weight
            total += weight
            if best is None or \
                    self._wrr_credit[tenant] > self._wrr_credit[best]:
                best = tenant
        assert best is not None
        self._wrr_credit[best] -= total
        return best

    def lease(self, max_jobs: int = 8) -> List[Job]:
        """Claim the next warm group of jobs for a worker (may be empty).

        The head job is the winning tenant's highest-priority, oldest
        pending job; if it belongs to a warm-sharing group, up to
        ``max_jobs - 1`` queued groupmates (any tenant - they share
        identical warm state by construction) ride along so the shard
        warms once for all of them.  Jobs in retry backoff
        (``not_before`` in the future) are invisible until their delay
        elapses, and ``solo`` jobs always lease alone.  Leased jobs
        transition to ``running`` durably - stamped with a fresh lease
        epoch - before they are returned.
        """
        now = time.time()
        with self._lock:
            ready = [j for j in self._jobs.values()
                     if j.state == PENDING and j.not_before <= now]
            if not ready:
                return []
            tenants = list({j.tenant for j in ready})
            tenant = tenants[0] if len(tenants) == 1 \
                else self._pick_tenant(tenants)
            mine = sorted((j for j in ready if j.tenant == tenant),
                          key=lambda j: (-j.priority, j.seq))
            head = mine[0]
            group = [head]
            if head.group is not None and not head.solo:
                mates = [j for j in ready
                         if j is not head and not j.solo
                         and j.group == head.group]
                mates.sort(key=lambda j: (-j.priority, j.seq))
                group.extend(mates[:max(0, max_jobs - 1)])
            self._lease_seq += 1
            waits = telemetry.REGISTRY.histogram(
                "repro_job_queue_wait_seconds",
                "Pending time between admission and lease")
            for job in group:
                job.state = RUNNING
                job.attempts += 1
                job.lease = self._lease_seq
                job.leased_at = now
                self._persist(job)
                self._transition(job, PENDING, reason="leased")
                if job.enqueued_at:
                    waits.observe(max(0.0, now - job.enqueued_at))
            return group

    # -- completion ----------------------------------------------------

    def _holder(self, key: str, lease: Optional[int]) -> Optional[Job]:
        """The job, unless ``lease`` is stale (a reaped worker calling)."""
        job = self._jobs.get(key)
        if job is None:
            return None
        if lease is not None and job.lease != lease:
            return None
        return job

    def complete(self, key: str, lease: Optional[int] = None) -> None:
        """Mark a leased job finished (its result is in the store)."""
        with self._lock:
            job = self._holder(key, lease)
            if job is None:
                return
            old = job.state
            job.state = DONE
            job.error = ""
            self._persist(job)
            self._transition(job, old, reason="completed")
            if job.leased_at:
                telemetry.REGISTRY.histogram(
                    "repro_job_run_seconds",
                    "Lease-to-done time of completed jobs").observe(
                        max(0.0, time.time() - job.leased_at))

    def fail(self, key: str, error: str,
             lease: Optional[int] = None) -> None:
        """Mark a leased job failed, keeping the error for status calls."""
        with self._lock:
            job = self._holder(key, lease)
            if job is None:
                return
            old = job.state
            job.state = FAILED
            job.record_error(error)
            self._persist(job)
            self._transition(job, old, reason=error)

    def retry(self, key: str, error: str, delay: float = 0.0,
              solo: bool = True, lease: Optional[int] = None) -> None:
        """Re-enqueue a failed/timed-out job after ``delay`` seconds.

        The attempt that just failed stays counted (attempts increment
        at lease time); ``solo=True`` (the default) keeps the retry out
        of warm-group coalescing so one poisonous config can never take
        down its siblings twice.
        """
        with self._lock:
            job = self._holder(key, lease)
            if job is None or job.state != RUNNING:
                return
            job.state = PENDING
            job.solo = solo
            job.not_before = time.time() + max(0.0, delay)
            job.record_error(error)
            self._persist(job)
            self._transition(job, RUNNING, reason=f"retry: {error}")

    def quarantine(self, key: str, error: str,
                   lease: Optional[int] = None) -> None:
        """Dead-letter a job: terminal, with the full error chain kept.

        Quarantined jobs never block their grid's siblings and are
        excluded from the pending bounds; ``requeue_quarantined`` (or a
        fresh grid attaching) puts them back in play.
        """
        with self._lock:
            job = self._holder(key, lease)
            if job is None:
                return
            old = job.state
            job.state = QUARANTINED
            job.record_error(error)
            self._persist(job)
            self._transition(job, old, reason=error)

    def release(self, keys: List[str], lease: Optional[int] = None,
                refund_attempt: bool = False) -> None:
        """Return leased-but-unfinished jobs to the queue.

        Used on shutdown and when an innocent in-flight group is swept
        up by a worker-pool recycle; ``refund_attempt`` undoes the lease
        charge so a job is never quarantined for its neighbours' sins.
        """
        with self._lock:
            for key in keys:
                job = self._holder(key, lease)
                if job is not None and job.state == RUNNING:
                    job.state = PENDING
                    if refund_attempt:
                        job.attempts = max(0, job.attempts - 1)
                    self._persist(job)
                    self._transition(job, RUNNING, reason="released")

    def resurrect(self, key: str) -> bool:
        """Force a terminal job back to PENDING with a fresh budget.

        Used when a job's *stored result* turns out to be lost or
        corrupt after the job already completed: the DONE state no
        longer reflects a usable artifact, so the run goes again.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state in (PENDING, RUNNING):
                return False
            old = job.state
            job.state = PENDING
            job.attempts = 0
            job.not_before = 0.0
            job.error = ""
            job.enqueued_at = time.time()
            self._persist(job)
            self._transition(job, old, reason="resurrected")
            return True

    def requeue_quarantined(self,
                            keys: Optional[List[str]] = None) -> int:
        """Drain the dead-letter queue back to PENDING (fresh budget).

        ``keys=None`` requeues every quarantined job; otherwise only the
        named ones.  Returns how many jobs were requeued.
        """
        requeued = 0
        with self._lock:
            for job in self._jobs.values():
                if job.state != QUARANTINED:
                    continue
                if keys is not None and job.key not in keys:
                    continue
                job.state = PENDING
                job.attempts = 0
                job.not_before = 0.0
                job.error = ""
                job.enqueued_at = time.time()
                self._persist(job)
                self._transition(job, QUARANTINED, reason="requeued")
                requeued += 1
        return requeued

    def detach_grid(self, grid_id: str) -> int:
        """Drop a cancelled grid's interest; orphaned pending jobs die.

        Jobs still wanted by another grid keep running - cancellation
        never yanks work out from under a different tenant.  Returns the
        number of jobs cancelled outright.
        """
        cancelled = 0
        with self._lock:
            for job in self._jobs.values():
                if grid_id not in job.grids:
                    continue
                job.grids = tuple(g for g in job.grids if g != grid_id)
                if not job.grids and job.state == PENDING:
                    job.state = CANCELLED
                    cancelled += 1
                    self._transition(job, PENDING,
                                     reason="grid cancelled")
                self._persist(job)
        return cancelled

    # -- introspection -------------------------------------------------

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Lightweight job listing (no specs), optionally one state.

        The shape the ``/v1/jobs`` endpoint and ``repro jobs`` render:
        key, tenant, state, priority, attempts, latest error, error
        chain, interested grids, retry bookkeeping, and queue age
        (seconds since admission for pending/running jobs, 0 for
        terminal states and pre-telemetry records).
        """
        now = time.time()
        with self._lock:
            out = []
            for job in sorted(self._jobs.values(), key=lambda j: j.seq):
                if state is not None and job.state != state:
                    continue
                age = 0.0
                if job.enqueued_at and job.state in (PENDING, RUNNING):
                    age = max(0.0, now - job.enqueued_at)
                out.append({
                    "key": job.key,
                    "tenant": job.tenant,
                    "state": job.state,
                    "priority": job.priority,
                    "attempts": job.attempts,
                    "error": job.error,
                    "error_chain": list(job.error_chain),
                    "grids": list(job.grids),
                    "solo": job.solo,
                    "not_before": job.not_before,
                    "enqueued_at": job.enqueued_at,
                    "age": age,
                })
            return out

    def counts(self) -> Dict[str, int]:
        """Job totals by state (all states present, zeros included)."""
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def tenant_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant job totals by state."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for job in self._jobs.values():
                bucket = out.setdefault(
                    job.tenant, {state: 0 for state in STATES})
                bucket[job.state] += 1
            return out

    def pending_ages(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant queue-age percentiles over waiting jobs (seconds).

        Covers PENDING and RUNNING jobs with a recorded admission time;
        the p50/p90/max trio is what ``/v1/stats`` reports per tenant
        and what ``repro top`` renders.  Empty dict when nothing waits.
        """
        now = time.time()
        with self._lock:
            ages: Dict[str, List[float]] = {}
            for job in self._jobs.values():
                if job.state not in (PENDING, RUNNING) or \
                        not job.enqueued_at:
                    continue
                ages.setdefault(job.tenant, []).append(
                    max(0.0, now - job.enqueued_at))
        out: Dict[str, Dict[str, float]] = {}
        for tenant, values in sorted(ages.items()):
            values.sort()
            out[tenant] = {
                "waiting": len(values),
                "p50": _percentile(values, 0.5),
                "p90": _percentile(values, 0.9),
                "max": values[-1],
            }
        return out

    def outstanding(self) -> int:
        """Jobs still pending or running (the drain condition).

        Quarantined jobs are terminal: they never hold ``drain`` open.
        """
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state in (PENDING, RUNNING))

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

"""The experiment service: grids in, deduplicated execution, results out.

:class:`ExperimentService` is the orchestrator the HTTP API (and tests)
talk to.  It owns the three durable pieces - the
:class:`~repro.service.queue.JobQueue`, the
:class:`~repro.service.store.ResultStore`, and a directory of *grid
records* - plus the :class:`~repro.service.workers.WorkerPool` that
drains the queue.

A submission expands an :class:`~repro.experiment.spec.ExperimentSpec`
(or a pre-expanded plan) exactly like an in-process Session would, then
settles every unique run against the shared fabric:

* already in the store        -> satisfied instantly (``store_hits``),
* already queued or running   -> attached (``inflight_dedup``),
* otherwise                   -> a new job (``new_jobs``), subject to
  per-tenant and global backpressure (:class:`QueueFull` -> HTTP 429).

Grid ids are deterministic in (tenant, grid content), so resubmitting
an identical grid is idempotent: it reuses the record and reports how
much of it the store already holds.  Grid records persist point
coordinates and run specs, which is what makes a killed service
resumable - on restart, unfinished grids re-admit any run that is
neither stored nor queued, and everything already finished stays
finished.

Adaptive grids (:meth:`ExperimentService.submit_adaptive`) run the same
:class:`~repro.adaptive.planner.AdaptivePlanner` the local
``Session.run_adaptive`` loop uses, but round by round over the durable
queue: a supervisor thread (woken whenever a worker group settles)
notices when every awaiting run of a round is in the store, restores
the planner from the grid record, advances it, and admits the next
round's refinements as *internal* jobs - so retries, quarantine, and
tenant fairness apply to refinement rounds unchanged.  The planner
state round-trips JSON through the grid record, which makes a killed
adaptive orchestration resume mid-round on restart.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, \
    Union

from repro import telemetry
from repro.adaptive.planner import AdaptivePlanner
from repro.adaptive.policy import AdaptivePolicy
from repro.adaptive.report import AdaptiveReport
from repro.errors import ConfigError
from repro.experiment.cache import default_cache_dir
from repro.experiment.resultset import ResultSet, from_points
from repro.experiment.serialize import experiment_from_dict, \
    spec_from_dict
from repro.experiment.spec import ExperimentSpec, GridPoint, RunPlan
from repro.resilience.retry import RetryPolicy
from repro.service.queue import CANCELLED, DONE, FAILED, JobQueue, \
    PENDING, QUARANTINED, QueueFull, RUNNING
from repro.service.store import ResultStore
from repro.service.util import atomic_write_json, read_json
from repro.service.workers import WorkerPool
from repro.telemetry import get_logger

logger = get_logger("service")

#: On-disk grid record format; unknown versions are skipped on load.
GRID_FORMAT = 1

# Grid lifecycle states (computed states in status() refine "active").
ACTIVE = "active"
GRID_CANCELLED = "cancelled"


class UnknownGrid(KeyError):
    """No grid with that id (HTTP 404 material)."""


class ResultPending(Exception):
    """The grid is not finished yet (HTTP 409 material)."""

    def __init__(self, status: Dict[str, Any]) -> None:
        super().__init__(
            f"grid {status['grid_id']} is {status['state']}: "
            f"{status['done']}/{status['unique_runs']} runs done")
        self.status = status


@dataclass
class ServiceConfig:
    """Tunables for one service instance.

    ``state_dir`` holds the durable queue and grid records;
    ``store_dir`` defaults to the experiment layer's shared result
    cache, so the service and plain CLI sessions exchange artifacts.
    """

    state_dir: Path
    store_dir: Optional[Path] = None
    shards: int = 2
    max_group: int = 8
    max_pending_per_tenant: int = 64
    max_pending_total: int = 256
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    use_processes: bool = True
    poll_interval: float = 0.05
    #: How failed runs are retried and when they are quarantined.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Wall-clock seconds without progress before a group is reaped
    #: and its shard respawned (``None`` disables the reaper).
    job_timeout: Optional[float] = None


class ExperimentService:
    """Multi-tenant grid execution over one shared store and queue."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        state_dir = Path(config.state_dir)
        self.store = ResultStore(config.store_dir or default_cache_dir())
        self.queue = JobQueue(
            state_dir / "queue",
            max_pending_per_tenant=config.max_pending_per_tenant,
            max_pending_total=config.max_pending_total,
            tenant_weights=config.tenant_weights)
        self.workers = WorkerPool(
            self.queue, self.store, shards=config.shards,
            max_group=config.max_group,
            use_processes=config.use_processes,
            poll_interval=config.poll_interval,
            retry=config.retry,
            job_timeout=config.job_timeout)
        self._grids_dir = state_dir / "grids"
        self._grids: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._started_at = time.time()
        self.counters: Dict[str, int] = {
            "submissions": 0, "resubmissions": 0, "rejected": 0,
            "grids_resumed": 0, "jobs_readmitted": 0,
            "adaptive_grids": 0, "adaptive_rounds": 0,
            "adaptive_completed": 0,
        }
        self._adaptive_wake = threading.Event()
        self._adaptive_stop = threading.Event()
        self._adaptive_thread: Optional[threading.Thread] = None
        # Wake the adaptive supervisor the moment any group settles,
        # instead of leaving round boundaries to the poll fallback.
        self.workers.on_settled = self._adaptive_wake.set
        self._load_grids()
        self._reconcile()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the workers and the adaptive supervisor (idempotent)."""
        self.workers.start()
        if self._adaptive_thread is None \
                or not self._adaptive_thread.is_alive():
            self._adaptive_stop.clear()
            self._adaptive_thread = threading.Thread(
                target=self._adaptive_loop, name="adaptive-supervisor",
                daemon=True)
            self._adaptive_thread.start()

    def stop(self) -> None:
        """Stop the workers; durable state stays resumable on disk."""
        self._adaptive_stop.set()
        self._adaptive_wake.set()
        if self._adaptive_thread is not None:
            self._adaptive_thread.join(timeout=5.0)
            self._adaptive_thread = None
        self.workers.stop()

    def __enter__(self) -> "ExperimentService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- durable grid records ------------------------------------------

    def _grid_path(self, grid_id: str) -> Path:
        return self._grids_dir / f"{grid_id}.json"

    def _persist_grid(self, record: Dict[str, Any]) -> None:
        atomic_write_json(self._grid_path(record["grid_id"]), record)

    def _load_grids(self) -> None:
        self._grids_dir.mkdir(parents=True, exist_ok=True)
        for path in sorted(self._grids_dir.glob("*.json")):
            record = read_json(path)
            if not isinstance(record, dict) or \
                    record.get("format") != GRID_FORMAT:
                continue
            self._grids[record["grid_id"]] = record

    def _reconcile(self) -> None:
        """Re-admit lost runs of unfinished grids (restart recovery).

        The queue already requeued jobs it found ``running``; this pass
        covers the rarer hole where a job file is missing entirely (a
        crash between grid persist and job persist, or a wiped queue
        directory) by rebuilding jobs from the grid record's specs.
        """
        for record in self._grids.values():
            if record["state"] != ACTIVE:
                continue
            resumed = False
            for key, spec_dict in record["specs"].items():
                if key in self.store or \
                        self.queue.get(key) is not None:
                    continue
                spec = spec_from_dict(spec_dict)
                self.queue.admit([spec], [], tenant=record["tenant"],
                                 priority=record["priority"],
                                 grid_id=record["grid_id"],
                                 internal=True)
                self.counters["jobs_readmitted"] += 1
                resumed = True
            if resumed:
                self.counters["grids_resumed"] += 1

    # -- submission ----------------------------------------------------

    @staticmethod
    def _grid_id(tenant: str, plan: RunPlan) -> str:
        """Deterministic grid identity: tenant + grid content."""
        if plan.spec is not None:
            content = plan.spec.hash()
        else:
            content = hashlib.sha256(
                ",".join(sorted(plan.runs)).encode()).hexdigest()
        digest = hashlib.sha256(
            f"{tenant}:{content}".encode()).hexdigest()
        return f"g{digest[:16]}"

    @classmethod
    def _adaptive_grid_id(cls, tenant: str, plan: RunPlan,
                          policy: AdaptivePolicy) -> str:
        """Adaptive grids hash the policy in: the same grid under two
        policies executes differently, so it is two grids."""
        base = cls._grid_id(tenant, plan)
        digest = hashlib.sha256(
            f"{base}:adaptive:"
            f"{json.dumps(policy.to_dict(), sort_keys=True)}"
            .encode()).hexdigest()
        return f"a{digest[:16]}"

    def _settle_specs(self, specs: Mapping[str, Any], *, tenant: str,
                      priority: int, grid_id: str, internal: bool
                      ) -> Dict[str, int]:
        """Settle keyed specs against the shared fabric (store-first).

        Runs already in the store are satisfied instantly, runs queued
        or running elsewhere are attached, and only the remainder
        become new jobs.  Admission is atomic: on
        :class:`~repro.service.queue.QueueFull` nothing was enqueued.
        """
        store_hits: List[str] = []
        attach: List[str] = []
        new_specs = []
        for key, spec in specs.items():
            if key in self.store:
                store_hits.append(key)
                continue
            job = self.queue.get(key)
            if job is not None and job.state in (PENDING, RUNNING, DONE):
                attach.append(key)
            else:
                new_specs.append(spec)
        created, attached = self.queue.admit(
            new_specs, attach, tenant=tenant, priority=priority,
            grid_id=grid_id, internal=internal)
        return {"store_hits": len(store_hits),
                "inflight_dedup": attached, "new_jobs": created}

    def submit(self, experiment: Union[ExperimentSpec, RunPlan],
               tenant: str = "default", priority: int = 0,
               name: Optional[str] = None) -> Dict[str, Any]:
        """Admit a grid; returns its status (idempotent per content).

        Raises :class:`~repro.service.queue.QueueFull` when admission
        would blow the tenant's (or the global) pending bound - nothing
        is partially enqueued in that case.
        """
        plan = experiment.expand() \
            if isinstance(experiment, ExperimentSpec) else experiment
        if not len(plan):
            raise ConfigError("cannot submit an empty grid")
        grid_id = self._grid_id(tenant, plan)
        with self._lock:
            existing = self._grids.get(grid_id)
            if existing is not None and existing["state"] == ACTIVE:
                self.counters["resubmissions"] += 1
                return self.status(grid_id)

            try:
                settled = self._settle_specs(
                    plan.runs, tenant=tenant, priority=priority,
                    grid_id=grid_id, internal=False)
            except QueueFull:
                self.counters["rejected"] += 1
                raise

            record = {
                "format": GRID_FORMAT,
                "grid_id": grid_id,
                "tenant": tenant,
                "name": name or (plan.spec.name if plan.spec
                                 else "plan"),
                "priority": priority,
                "state": ACTIVE,
                "submitted_at": time.time(),
                "points": [{"coords": dict(p.coords),
                            "key": p.spec.key(),
                            "label": p.spec.label}
                           for p in plan.points],
                "specs": {key: spec.describe()
                          for key, spec in plan.runs.items()},
                "admission": {
                    "total_points": len(plan),
                    "unique_runs": plan.unique_count,
                    **settled,
                },
            }
            self._grids[grid_id] = record
            self._persist_grid(record)
            self.counters["submissions"] += 1
        self.workers.kick()
        return self.status(grid_id)

    def submit_adaptive(self, experiment: Union[ExperimentSpec, RunPlan],
                        policy: AdaptivePolicy, tenant: str = "default",
                        priority: int = 0,
                        name: Optional[str] = None) -> Dict[str, Any]:
        """Admit a grid for adaptive orchestration (idempotent).

        The survey round's runs are admitted immediately (subject to
        the same backpressure as :meth:`submit`); every later
        refinement round is planned by the supervisor from observed
        results and admitted as *internal* jobs, exempt from pending
        bounds because no submitter exists to retry a 429.  Decisions
        are made by the identical :class:`AdaptivePlanner` the local
        ``Session.run_adaptive`` path uses, over the same deterministic
        results - so the two paths always agree.
        """
        plan = experiment.expand() \
            if isinstance(experiment, ExperimentSpec) else experiment
        if not len(plan):
            raise ConfigError("cannot submit an empty grid")
        grid_id = self._adaptive_grid_id(tenant, plan, policy)
        with self._lock:
            existing = self._grids.get(grid_id)
            if existing is not None and existing["state"] == ACTIVE:
                self.counters["resubmissions"] += 1
                return self.status(grid_id)

            planner = AdaptivePlanner(plan, policy)
            specs = planner.start()
            try:
                settled = self._settle_specs(
                    specs, tenant=tenant, priority=priority,
                    grid_id=grid_id, internal=False)
            except QueueFull:
                self.counters["rejected"] += 1
                raise

            record = {
                "format": GRID_FORMAT,
                "grid_id": grid_id,
                "tenant": tenant,
                "name": name or (plan.spec.name if plan.spec
                                 else "plan"),
                "priority": priority,
                "state": ACTIVE,
                "submitted_at": time.time(),
                # Point keys start as the original cell keys and are
                # rewritten to each cell's final (highest-fidelity) run
                # key when the orchestration finalises.
                "points": [{"coords": dict(p.coords),
                            "key": p.spec.key(),
                            "label": p.spec.label}
                           for p in plan.points],
                "specs": {key: spec.describe()
                          for key, spec in specs.items()},
                "admission": {
                    "total_points": len(plan),
                    "unique_runs": plan.unique_count,
                    **settled,
                },
                "adaptive": {
                    "policy": policy.to_dict(),
                    "state": planner.state_dict(),
                    "final": False,
                },
            }
            self._grids[grid_id] = record
            self._persist_grid(record)
            self.counters["submissions"] += 1
            self.counters["adaptive_grids"] += 1
        self.workers.kick()
        self._adaptive_wake.set()
        return self.status(grid_id)

    def submit_request(self, payload: Mapping[str, Any]
                       ) -> Dict[str, Any]:
        """Wire-format submission (the HTTP POST body).

        ``{"tenant": ..., "priority": ..., "name": ...,
        "experiment": <experiment_to_dict form>}`` - plus an optional
        ``"adaptive": <AdaptivePolicy.to_dict form>`` that switches the
        grid to adaptive orchestration (:meth:`submit_adaptive`).
        """
        if not isinstance(payload, Mapping):
            raise ConfigError("submission body must be a JSON object")
        if "experiment" not in payload:
            raise ConfigError("submission body needs an 'experiment'")
        spec = experiment_from_dict(payload["experiment"])
        tenant = str(payload.get("tenant", "default")) or "default"
        priority = int(payload.get("priority", 0))
        name = payload.get("name")
        name_str = str(name) if name is not None else None
        if payload.get("adaptive") is not None:
            policy = AdaptivePolicy.from_dict(payload["adaptive"])
            return self.submit_adaptive(spec, policy, tenant=tenant,
                                        priority=priority, name=name_str)
        return self.submit(spec, tenant=tenant, priority=priority,
                           name=name_str)

    # -- adaptive supervision ------------------------------------------

    def _adaptive_loop(self) -> None:
        """Supervisor thread body: tick when woken, poll as fallback."""
        poll = max(self.config.poll_interval, 0.05)
        while not self._adaptive_stop.is_set():
            self._adaptive_wake.wait(timeout=poll)
            self._adaptive_wake.clear()
            if self._adaptive_stop.is_set():
                return
            try:
                self.tick_adaptive()
            except Exception:  # pragma: no cover - supervisor survives
                logger.exception("adaptive tick failed")

    def tick_adaptive(self) -> int:
        """Advance every adaptive grid whose round has fully settled.

        Public (and synchronous) so tests and embedders can drive
        orchestration deterministically without the supervisor thread.
        Returns how many grids advanced a round or finalised.
        """
        with self._lock:
            grid_ids = [
                grid_id for grid_id, record in self._grids.items()
                if record["state"] == ACTIVE
                and record.get("adaptive") is not None
                and not record["adaptive"]["final"]]
        advanced = 0
        for grid_id in grid_ids:
            if self._advance_adaptive(grid_id):
                advanced += 1
        return advanced

    def _advance_adaptive(self, grid_id: str) -> bool:
        """One supervision step for one adaptive grid.

        A round is settled when every awaiting run is either in the
        store or dead-lettered.  Runs still pending/running (or failed
        and under retry) leave the grid untouched; a DONE job whose
        stored result vanished is re-admitted like any lost run.
        """
        with self._lock:
            record = self._grids.get(grid_id)
            if record is None or record["state"] != ACTIVE:
                return False
            adaptive = record["adaptive"]
            if adaptive["final"]:
                return False
            awaiting = [cell["key"]
                        for cell in adaptive["state"]["cells"]
                        if cell["awaiting"]]

        quarantined: Dict[str, str] = {}
        lost: List[str] = []
        for key in awaiting:
            if key in self.store:
                continue
            job = self.queue.get(key)
            if job is None or job.state == DONE:
                lost.append(key)
            elif job.state == QUARANTINED:
                quarantined[key] = job.error or "quarantined"
            else:
                return False  # pending, running, or retrying
        if lost:
            with self._lock:
                self._readmit(record, lost)
            return False

        with self._lock:
            record = self._grids.get(grid_id)
            if record is None or record["state"] != ACTIVE \
                    or record["adaptive"]["final"]:
                return False
            adaptive = record["adaptive"]
            policy = AdaptivePolicy.from_dict(adaptive["policy"])
            planner = AdaptivePlanner.restore(policy, adaptive["state"])
            if quarantined:
                planner.mark_quarantined(quarantined)
            results = {}
            for cell in planner.cells.values():
                if not cell.awaiting:
                    continue
                result = self.store.get(cell.key)
                if result is None:  # quarantined by the integrity check
                    self._readmit(record, [cell.key])
                    return False
                results[cell.key] = result
            next_specs = planner.advance(results)
            adaptive["state"] = planner.state_dict()
            if next_specs:
                settled = self._settle_specs(
                    next_specs, tenant=record["tenant"],
                    priority=record["priority"], grid_id=grid_id,
                    internal=True)
                for key, spec in next_specs.items():
                    record["specs"][key] = spec.describe()
                admission = record["admission"]
                for kind, count in settled.items():
                    admission[kind] += count
                admission["unique_runs"] = len(record["specs"])
                self.counters["adaptive_rounds"] += 1
            else:
                report = planner.report()
                final_keys = {cell.cell: cell.key
                              for cell in planner.cells.values()}
                for point in record["points"]:
                    point["key"] = final_keys.get(point["key"],
                                                  point["key"])
                adaptive["final"] = True
                adaptive["report"] = report.to_dict()
                self.counters["adaptive_completed"] += 1
            self._persist_grid(record)
        if next_specs:
            self.workers.kick()
        return True

    # -- status / results ----------------------------------------------

    def _record(self, grid_id: str) -> Dict[str, Any]:
        record = self._grids.get(grid_id)
        if record is None:
            raise UnknownGrid(grid_id)
        return record

    def _job_states(self, record: Mapping[str, Any]) -> Dict[str, str]:
        """Per-unique-run state, store-first (DONE once materialised)."""
        states: Dict[str, str] = {}
        for key in record["specs"]:
            if key in self.store:
                states[key] = DONE
                continue
            job = self.queue.get(key)
            states[key] = job.state if job is not None else PENDING
        return states

    def status(self, grid_id: str) -> Dict[str, Any]:
        """Progress snapshot for one grid (the GET /v1/grids/<id> body).

        A grid whose every run is terminal but has quarantined members
        reports ``degraded``: it is finished *enough* to hand out
        partial results, and it never fails early while healthy
        siblings are still executing.
        """
        with self._lock:
            record = self._record(grid_id)
            states = self._job_states(record)
            adaptive = record.get("adaptive")
            adaptive_summary = None
            if adaptive is not None:
                cells = adaptive["state"]["cells"]
                adaptive_summary = {
                    "final": bool(adaptive["final"]),
                    "round": adaptive["state"]["round"],
                    "cells": len(cells),
                    "active": sum(1 for c in cells if c["stop"] is None),
                }
        tally = {PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0,
                 CANCELLED: 0, QUARANTINED: 0}
        errors = []
        for key, state in states.items():
            tally[state] = tally.get(state, 0) + 1
            if state in (FAILED, QUARANTINED):
                job = self.queue.get(key)
                if job is not None and job.error:
                    errors.append({"key": key, "state": state,
                                   "error": job.error,
                                   "attempts": job.attempts})
        terminal = tally[DONE] + tally[CANCELLED] + tally[QUARANTINED]
        if record["state"] == GRID_CANCELLED:
            state = GRID_CANCELLED
        elif tally[FAILED]:
            state = "failed"
        elif tally[DONE] == len(states):
            state = "done"
        elif terminal == len(states) and tally[QUARANTINED]:
            state = "degraded"
        elif tally[RUNNING]:
            state = "running"
        else:
            state = "queued"
        if adaptive_summary is not None \
                and not adaptive_summary["final"] \
                and state in ("done", "degraded"):
            # The round's runs are settled but the supervisor has not
            # planned the next round yet: the grid is still working.
            state = "running"
        payload = {
            "grid_id": grid_id,
            "name": record["name"],
            "tenant": record["tenant"],
            "priority": record["priority"],
            "state": state,
            "total_points": record["admission"]["total_points"],
            "unique_runs": len(states),
            "done": tally[DONE],
            "pending": tally[PENDING] + tally[CANCELLED],
            "running": tally[RUNNING],
            "failed": tally[FAILED],
            "quarantined": tally[QUARANTINED],
            "errors": errors[:8],
            "admission": dict(record["admission"]),
        }
        if adaptive_summary is not None:
            payload["adaptive"] = adaptive_summary
        return payload

    def result_set(self, grid_id: str) -> ResultSet:
        """Assemble the grid's :class:`ResultSet` from the store.

        A ``degraded`` grid yields a *partial* set: quarantined points
        are simply absent.  A ``done`` grid whose store entry turns out
        to be corrupt (the read quarantines it) transparently re-admits
        the lost run and reports :class:`ResultPending` - the caller
        retries and gets a freshly recomputed result, never garbage.
        """
        status = self.status(grid_id)
        if status["state"] not in ("done", "degraded"):
            raise ResultPending(status)
        record = self._record(grid_id)
        points: List[GridPoint] = []
        results = {}
        lost: List[str] = []
        for point in record["points"]:
            spec = spec_from_dict(
                dict(record["specs"][point["key"]],
                     label=point["label"]))
            if point["key"] not in results:
                result = self.store.get(point["key"])
                if result is None:
                    job = self.queue.get(point["key"])
                    if job is not None and job.state == QUARANTINED:
                        continue  # degraded: this point sat out
                    lost.append(point["key"])
                    continue
                results[point["key"]] = result
            points.append(GridPoint(coords=point["coords"], spec=spec))
        if lost:
            self._readmit(record, lost)
            raise ResultPending(self.status(grid_id))
        adaptive = record.get("adaptive")
        report = AdaptiveReport.from_dict(adaptive["report"]) \
            if adaptive is not None and adaptive["final"] else None
        return from_points(points, results, name=record["name"],
                           adaptive=report)

    def _readmit(self, record: Mapping[str, Any],
                 keys: Sequence[str]) -> None:
        """Recompute runs whose stored results vanished or failed
        verification (the store already quarantined the bad files)."""
        for key in keys:
            if not self.queue.resurrect(key):
                spec = spec_from_dict(record["specs"][key])
                self.queue.admit([spec], [], tenant=record["tenant"],
                                 priority=record["priority"],
                                 grid_id=record["grid_id"],
                                 internal=True)
            self.counters["jobs_readmitted"] += 1
        self.workers.kick()

    def result(self, grid_id: str,
               metrics: Sequence[str] = ()) -> Dict[str, Any]:
        """Finished grid as records + accounting (the result body).

        The envelope matches the CLI's ``--json`` output - ``records``
        plus a ``stats`` block - so service consumers and local sessions
        see the same accounting shape.
        """
        rs = self.result_set(grid_id)
        record = self._record(grid_id)
        status = self.status(grid_id)
        payload = {
            "grid_id": grid_id,
            "name": record["name"],
            "tenant": record["tenant"],
            "state": status["state"],
            "quarantined": status["quarantined"],
            "records": rs.to_records(metrics),
            "stats": dict(record["admission"]),
        }
        if rs.adaptive is not None:
            payload["report"] = rs.adaptive.to_dict()
        return payload

    def cancel(self, grid_id: str) -> Dict[str, Any]:
        """Cancel a grid; jobs other grids still need keep running."""
        with self._lock:
            record = self._record(grid_id)
            if record["state"] != GRID_CANCELLED:
                record["state"] = GRID_CANCELLED
                self._persist_grid(record)
                self.queue.detach_grid(grid_id)
        return self.status(grid_id)

    # -- jobs / quarantine ---------------------------------------------

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Job listing (``GET /v1/jobs``), optionally filtered by state."""
        return self.queue.jobs(state)

    def requeue_quarantined(self,
                            keys: Optional[List[str]] = None
                            ) -> Dict[str, Any]:
        """Drain the dead-letter queue back into execution.

        The operational exit from quarantine: jobs go back to PENDING
        with a fresh attempt budget and the workers are kicked.
        """
        requeued = self.queue.requeue_quarantined(keys)
        if requeued:
            self.workers.kick()
        return {"requeued": requeued}

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service-wide accounting (the GET /v1/stats body)."""
        with self._lock:
            grid_states: Dict[str, int] = {}
            for record in self._grids.values():
                try:
                    state = self.status(record["grid_id"])["state"]
                except UnknownGrid:  # pragma: no cover - racing delete
                    continue
                grid_states[state] = grid_states.get(state, 0) + 1
            counters = dict(self.counters)
        workers = self.workers.stats_dict()
        store = self.store.stats_dict()
        executed = workers["jobs"] + workers["failures"]

        def _registry_value(name: str, **labels: str) -> int:
            return int(telemetry.registry_value(name, **labels))

        return {
            "uptime_seconds": time.time() - self._started_at,
            "grids": grid_states,
            "jobs": self.queue.counts(),
            "tenants": self.queue.tenant_counts(),
            "queue_ages": self.queue.pending_ages(),
            "store": store,
            "workers": workers,
            "rates": {
                # Failure-mode rates per executed job attempt: how often
                # an attempt was retried, dead-lettered, or tripped the
                # store's integrity check.  0.0 on an idle service.
                "retry": (workers["retried"] / executed
                          if executed else 0.0),
                "quarantine": (workers["quarantined"] / executed
                               if executed else 0.0),
                "integrity": (store["integrity_failures"] / executed
                              if executed else 0.0),
            },
            "counters": counters,
            # Process-wide adaptive-orchestration totals, straight from
            # the registry counters the planner increments - the same
            # events AdaptiveReport totals are built from, so the two
            # always reconcile.
            "adaptive": {
                "rounds": _registry_value(
                    "repro_adaptive_rounds_total"),
                "escalations": _registry_value(
                    "repro_adaptive_escalations_total"),
                "pruned": _registry_value(
                    "repro_adaptive_pruned_total"),
                "instructions_spent": _registry_value(
                    "repro_adaptive_instructions_total", kind="spent"),
                "instructions_saved": _registry_value(
                    "repro_adaptive_instructions_total", kind="saved"),
            },
            "limits": {
                "max_pending_per_tenant":
                    self.queue.max_pending_per_tenant,
                "max_pending_total": self.queue.max_pending_total,
            },
        }

    def metrics_text(self) -> str:
        """The ``/v1/metrics`` body: Prometheus text exposition.

        Counters (job transitions, queue-wait/run-time histograms,
        HTTP request counts) accumulate in the process registry as they
        happen; point-in-time gauges (queue depth, worker utilisation,
        store totals) are refreshed here at scrape time.
        """
        registry = telemetry.REGISTRY
        depth = registry.gauge(
            "repro_queue_depth", "Jobs by state", ("state",))
        for state, count in self.queue.counts().items():
            depth.labels(state=state).set(count)
        ages = registry.gauge(
            "repro_queue_age_seconds",
            "Pending-age percentiles per tenant",
            ("tenant", "quantile"))
        for tenant, stats in self.queue.pending_ages().items():
            for quantile in ("p50", "p90", "max"):
                ages.labels(tenant=tenant,
                            quantile=quantile).set(stats[quantile])
        workers = self.workers.stats_dict()
        registry.gauge(
            "repro_worker_utilisation",
            "Busy shard-seconds / capacity since start").set(
                workers["utilisation"])
        registry.gauge(
            "repro_worker_busy_seconds",
            "Shard-seconds spent executing groups").set(
                workers["busy_seconds"])
        registry.gauge(
            "repro_worker_shards", "Configured shard count").set(
                self.workers.shards)
        worker_totals = registry.gauge(
            "repro_worker_events", "Worker pool counters", ("kind",))
        for kind in ("groups", "jobs", "failures", "retried",
                     "quarantined", "timeouts", "pool_respawns",
                     "store_skips"):
            worker_totals.labels(kind=kind).set(workers[kind])
        store = self.store.stats_dict()
        store_totals = registry.gauge(
            "repro_store_events", "Result store counters", ("kind",))
        for kind in ("hits", "misses", "puts", "integrity_failures"):
            store_totals.labels(kind=kind).set(store[kind])
        registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the service started").set(
                time.time() - self._started_at)
        service_counters = registry.gauge(
            "repro_service_counters", "Service-level counters",
            ("kind",))
        with self._lock:
            for kind, value in self.counters.items():
                service_counters.labels(kind=kind).set(value)
        return registry.render()

    def drain(self, timeout: float = 60.0, poll: float = 0.02) -> bool:
        """Block until no jobs are pending/running (True) or timeout."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.queue.outstanding() == 0:
                return True
            time.sleep(poll)
        return self.queue.outstanding() == 0

"""Small filesystem helpers shared by the service's durable state.

Everything the service persists - jobs, grid records - goes through
``atomic_write_json`` so a crash mid-write can never leave a torn file:
readers either see the previous version or the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional


def atomic_write_json(path: Path, payload: Any) -> None:
    """Write ``payload`` as JSON via tmp-file + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: Path) -> Optional[Any]:
    """Parse a JSON file; unreadable or malformed reads as ``None``."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None

"""Worker-shard pool: N processes draining the job queue, fault-tolerantly.

A dispatcher thread owns the durable :class:`~repro.service.queue`
state and leases one warm group at a time (fair-share order), farming
execution to a ``multiprocessing`` pool of *shards*.  Pool workers are
stateless executors of :func:`~repro.experiment.execute.simulate_group`
- the exact function an in-process Session uses - so a group still
warms once and forks its warm-state snapshot for every member, and a
run computes bit-identical results no matter which surface launched it.

Results stream back through the dispatcher: each finished group is
published to the :class:`~repro.service.store.ResultStore` and its jobs
marked ``done`` *before* the next lease, so the durable state on disk
is never more than one in-flight group away from the truth.  A crash
loses only the groups that were actually executing - the queue demotes
them back to ``pending`` at next startup.

Failures are survived, not propagated:

* A raising group of size > 1 is **isolated**: every member re-enqueues
  ``solo`` (immediately, no backoff) so the poisonous config re-fails
  alone and its innocent siblings simply succeed on their own attempt.
* A raising singleton consults the :class:`~repro.resilience.RetryPolicy`
  - transient failures re-enqueue with deterministic exponential
  backoff; permanent failures and exhausted attempt budgets move the
  job to ``quarantined`` (a dead-letter that never fails its grid's
  siblings).
* With ``job_timeout`` set, a reaper thread watches per-group
  heartbeats.  A hung group is reaped: its jobs are disposed through
  the same retry policy (a timeout is transient), the stuck shard is
  retired and **respawned** - a replacement thread inline, a fresh
  process pool in process mode - and any innocent in-flight groups
  swept up by a pool recycle are released with their attempt refunded.
  Every queue transition is guarded by the group's *lease epoch*, so a
  zombie shard that eventually wakes up cannot complete or fail work
  that was already re-leased to someone else.

``use_processes=False`` executes groups inline on the dispatcher
threads (one thread per shard) - the mode unit tests and tiny
single-host deployments use; it keeps everything in one process so
monkeypatched simulators and deterministic scheduling work.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.experiment.execute import iter_group, simulate_group
from repro.resilience.retry import RetryPolicy
from repro.service.queue import Job, JobQueue
from repro.service.store import ResultStore
from repro.sim.results import RunResult
from repro.telemetry import get_logger

logger = get_logger("workers")

#: Module-level indirection so tests can substitute the executor.
run_group = simulate_group


def _run_group_remote(items: List[Tuple[str, Any]], heartbeats: Any,
                      epoch: str
                      ) -> Tuple[List[Tuple[str, RunResult]], int, int]:
    """Pool-side executor that ticks a heartbeat after every member.

    Used instead of the plain batch function when a ``job_timeout`` is
    configured in process mode: the shared ``heartbeats`` mapping (a
    ``multiprocessing.Manager().dict()``) lets the dispatcher-side
    reaper distinguish a *slow but alive* group (heartbeat advances
    between members) from a genuinely hung one.
    """
    pairs: List[Tuple[str, RunResult]] = []
    warmups = restores = 0
    for key, result, warmed, restored in iter_group(items):
        pairs.append((key, result))
        warmups += warmed
        restores += restored
        try:
            heartbeats[epoch] = time.time()
        except Exception:  # pragma: no cover - manager torn down mid-run
            pass
    return pairs, warmups, restores


@dataclass
class WorkerStats:
    """What the pool has done since start (monotonic)."""

    groups: int = 0
    jobs: int = 0
    warmups: int = 0
    restores: int = 0
    #: Failed job executions (each attempt that raised counts once).
    failures: int = 0
    #: Jobs re-enqueued for another attempt (backoff or isolation).
    retried: int = 0
    #: Jobs dead-lettered after exhausting their budget.
    quarantined: int = 0
    #: Groups reaped for exceeding the job timeout.
    timeouts: int = 0
    #: Shard replacements (threads respawned / process pools recycled).
    pool_respawns: int = 0
    #: Leased jobs completed from the store without re-simulating
    #: (crash-resume exactly-once: the dying worker's result landed).
    store_skips: int = 0


class WorkerPool:
    """Dispatcher + shard pool pulling warm groups from the queue."""

    def __init__(self, queue: JobQueue, store: ResultStore,
                 shards: int = 2, max_group: int = 8,
                 use_processes: bool = True,
                 poll_interval: float = 0.05,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout: Optional[float] = None,
                 on_settled: Optional[Callable[[], None]] = None) -> None:
        self.queue = queue
        self.store = store
        #: Fired (from a dispatcher thread, exceptions swallowed) after
        #: a group settles - completed, failed, or quarantined - so an
        #: orchestration layer (the adaptive supervisor) can react to
        #: progress promptly instead of polling blind.
        self.on_settled = on_settled
        self.shards = max(1, int(shards))
        self.max_group = max(1, int(max_group))
        self.use_processes = use_processes
        self.poll_interval = poll_interval
        self.retry = retry if retry is not None else RetryPolicy()
        self.job_timeout = job_timeout
        self.stats = WorkerStats()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: List[threading.Thread] = []
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._inflight = 0
        #: lease epoch -> {"jobs", "started", "ident"} for every group
        #: currently executing (the reaper's watch list).
        self._inflight_groups: Dict[int, Dict[str, Any]] = {}
        #: Thread idents the reaper has given up on; they exit at the
        #: top of their next loop iteration.
        self._retired: set = set()
        self._reaper: Optional[threading.Thread] = None
        self._manager: Optional[Any] = None
        self._heartbeats: Optional[Any] = None
        self._thread_seq = 0
        #: Seconds shards have spent executing groups (finished groups
        #: only; :meth:`utilisation` adds the live in-flight portion).
        self._busy_seconds = 0.0
        self._started_at: Optional[float] = None

    # -- lifecycle -----------------------------------------------------

    def _spawn_shard_thread(self) -> None:
        thread = threading.Thread(
            target=self._loop,
            name=f"repro-worker-{self._thread_seq}", daemon=True)
        self._thread_seq += 1
        thread.start()
        with self._lock:
            self._threads.append(thread)

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        if self._started_at is None:
            self._started_at = time.time()
        logger.info(
            "worker pool starting: %d shard(s), %s mode",
            self.shards,
            "process" if self.use_processes else "inline",
            extra={"event": "workers.start", "shards": self.shards,
                   "mode": "process" if self.use_processes
                   else "inline"})
        if self.use_processes:
            if self.job_timeout is not None:
                self._manager = multiprocessing.Manager()
                self._heartbeats = self._manager.dict()
            self._pool = multiprocessing.Pool(processes=self.shards)
            threads = 1  # one dispatcher feeding the process pool
        else:
            threads = self.shards  # inline: each thread is a shard
        for _ in range(threads):
            self._spawn_shard_thread()
        if self.job_timeout is not None:
            self._reaper = threading.Thread(
                target=self._reap_loop, name="repro-reaper", daemon=True)
            self._reaper.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop leasing, drain in-flight groups, release the pool."""
        self._stop.set()
        self._wake.set()
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._reaper is not None:
            self._reaper.join(timeout=timeout)
            self._reaper = None
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.close()
            pool.join()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._heartbeats = None

    def kick(self) -> None:
        """Wake the dispatcher early (a submission just landed)."""
        self._wake.set()

    # -- dispatch ------------------------------------------------------

    def _is_retired(self) -> bool:
        with self._lock:
            if threading.get_ident() in self._retired:
                self._retired.discard(threading.get_ident())
                return True
        return False

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self._is_retired():
                return
            if self.use_processes and not self._reserve_slot():
                continue
            group = self.queue.lease(self.max_group)
            if group:
                group = self._skip_stored(group)
            if not group:
                if self.use_processes:
                    self._release_slot()
                self._wake.wait(self.poll_interval)
                self._wake.clear()
                continue
            items = [(job.key, job.spec) for job in group]
            epoch = group[0].lease
            self._track(group, epoch)
            if not self.use_processes:
                try:
                    with telemetry.span("job.lease→done",
                                        category="service",
                                        jobs=len(items), epoch=epoch):
                        outcome = run_group(items)
                except Exception as exc:  # worker crash: isolate/retry
                    self._untrack(epoch)
                    self._on_error(group, exc)
                else:
                    self._untrack(epoch)
                    self._on_result(group, outcome)
            else:
                self._dispatch_to_pool(group, items, epoch)

    def _dispatch_to_pool(self, group: List[Job],
                          items: List[Tuple[str, Any]],
                          epoch: int) -> None:
        with self._lock:
            pool = self._pool
        if pool is None:
            # Mid-recycle after a reap: put the group back untouched.
            self._untrack(epoch)
            self.queue.release([j.key for j in group], lease=epoch,
                               refund_attempt=True)
            self._release_slot()
            return
        if self._heartbeats is not None:
            self._heartbeats[str(epoch)] = time.time()
            call: Tuple[Any, Tuple[Any, ...]] = (
                _run_group_remote, (items, self._heartbeats, str(epoch)))
        else:
            call = (run_group, (items,))
        try:
            pool.apply_async(
                call[0], call[1],
                callback=lambda out, g=group, e=epoch:
                    self._finish(g, e, out),
                error_callback=lambda exc, g=group, e=epoch:
                    self._finish_error(g, e, exc))
        except ValueError:  # pool terminated under us by the reaper
            self._untrack(epoch)
            self.queue.release([j.key for j in group], lease=epoch,
                               refund_attempt=True)
            self._release_slot()

    def _skip_stored(self, group: List[Job]) -> List[Job]:
        """Complete leased jobs whose result already exists (verified).

        Happens after a crash: a worker's result hit the store but the
        process died before the queue recorded DONE, so the job came
        back PENDING.  Re-simulating it would violate exactly-once for
        cached runs; completing it from the store is free and correct
        (results are content-addressed and deterministic).
        """
        remaining: List[Job] = []
        skipped = 0
        for job in group:
            if job.key in self.store:
                self.queue.complete(job.key, lease=job.lease)
                skipped += 1
            else:
                remaining.append(job)
        if skipped:
            with self._lock:
                self.stats.store_skips += skipped
            self._wake.set()
            self._notify_settled()
        return remaining

    def _reserve_slot(self) -> bool:
        """Cap in-flight groups at the shard count (process mode)."""
        with self._lock:
            if self._inflight < self.shards:
                self._inflight += 1
                return True
        self._wake.wait(self.poll_interval)
        self._wake.clear()
        return False

    def _release_slot(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
        self._wake.set()

    def _finish(self, group: List[Job], epoch: int, outcome: Any) -> None:
        try:
            self._untrack(epoch)
            self._on_result(group, outcome)
        finally:
            self._release_slot()

    def _finish_error(self, group: List[Job], epoch: int,
                      exc: BaseException) -> None:
        try:
            self._untrack(epoch)
            self._on_error(group, exc)
        finally:
            self._release_slot()

    # -- in-flight tracking and reaping --------------------------------

    def _track(self, group: List[Job], epoch: int) -> None:
        with self._lock:
            self._inflight_groups[epoch] = {
                "jobs": list(group),
                "started": time.time(),
                "ident": None if self.use_processes
                         else threading.get_ident(),
            }

    def _untrack(self, epoch: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._inflight_groups.pop(epoch, None)
            if entry is not None:
                self._busy_seconds += \
                    max(0.0, time.time() - entry["started"])
        if self._heartbeats is not None:
            try:
                self._heartbeats.pop(str(epoch), None)
            except Exception:  # pragma: no cover - manager shut down
                pass
        return entry

    def _heartbeat_age(self, epoch: int, entry: Dict[str, Any],
                       now: float) -> float:
        last = entry["started"]
        if self._heartbeats is not None:
            try:
                last = max(last, self._heartbeats.get(str(epoch), last))
            except Exception:  # pragma: no cover - manager shut down
                pass
        return now - last

    def _reap_loop(self) -> None:
        assert self.job_timeout is not None
        interval = max(0.01, min(self.poll_interval,
                                 self.job_timeout / 4.0))
        while not self._stop.wait(interval):
            now = time.time()
            with self._lock:
                stale = [epoch for epoch, entry
                         in self._inflight_groups.items()
                         if self._heartbeat_age(epoch, entry, now)
                         > self.job_timeout]
            for epoch in stale:
                self._reap(epoch)

    def _reap(self, epoch: int) -> None:
        """A group blew its timeout: dispose it, respawn its shard."""
        entry = self._untrack(epoch)
        if entry is None:  # finished in the race window: not hung
            return
        jobs: List[Job] = entry["jobs"]
        exc = TimeoutError(
            f"job timeout: no progress in {self.job_timeout:.3g}s")
        with self._lock:
            self.stats.timeouts += 1
        logger.warning(
            "reaping hung group (lease epoch %d, %d job(s)): no "
            "progress in %.3gs", epoch, len(jobs), self.job_timeout,
            extra={"event": "workers.reap", "epoch": epoch,
                   "jobs": len(jobs), "timeout": self.job_timeout})
        if not self.use_processes:
            # The stuck thread cannot be killed; retire it (it exits -
            # or its late completions no-op on the stale lease) and
            # spawn a replacement so capacity is not lost.
            with self._lock:
                if entry["ident"] is not None:
                    self._retired.add(entry["ident"])
                    # Forget the zombie so stop() never waits out its
                    # sleep; it is a daemon and its stale lease no-ops.
                    self._threads = [t for t in self._threads
                                     if t.ident != entry["ident"]]
                self.stats.pool_respawns += 1
            self._on_error(jobs, exc)
            if not self._stop.is_set():
                self._spawn_shard_thread()
            return
        # Process mode: terminate the whole pool (the only way to kill
        # a hung worker), dispose the hung group, release any innocent
        # groups swept up by the recycle, then bring up a fresh pool.
        with self._lock:
            pool = self._pool
            self._pool = None
            bystanders = dict(self._inflight_groups)
            self._inflight_groups.clear()
            self._inflight = 0
        if pool is not None:
            pool.terminate()
            pool.join()
        self._on_error(jobs, exc)
        for other_epoch, other in bystanders.items():
            self.queue.release([j.key for j in other["jobs"]],
                               lease=other_epoch, refund_attempt=True)
        if not self._stop.is_set():
            with self._lock:
                self._pool = multiprocessing.Pool(processes=self.shards)
                self.stats.pool_respawns += 1
        self._wake.set()

    # -- completion ----------------------------------------------------

    def _on_result(self, group: List[Job], outcome: Any) -> None:
        pairs, warmups, restores = outcome
        specs = {job.key: job.spec for job in group}
        leases = {job.key: job.lease for job in group}
        finished = set()
        for key, result in pairs:
            self.store.put(key, specs[key], result)
            self.queue.complete(key, lease=leases[key])
            finished.add(key)
        # A group that returned short (shouldn't happen, but never
        # strand a lease) releases its unfinished members.
        leftover = [key for key in specs if key not in finished]
        for key in leftover:
            self.queue.release([key], lease=leases[key])
        with self._lock:
            self.stats.groups += 1
            self.stats.jobs += len(finished)
            self.stats.warmups += warmups
            self.stats.restores += restores
        self._wake.set()
        self._notify_settled()

    def _on_error(self, group: List[Job], exc: BaseException) -> None:
        """Dispose a failed group: isolate, retry with backoff, or
        quarantine - never fail innocent siblings."""
        error = f"{type(exc).__name__}: {exc}"
        logger.warning(
            "group of %d failed: %s", len(group), error,
            extra={"event": "workers.group_error", "jobs": len(group),
                   "error": error})
        retried = quarantined = 0
        for job in group:
            if len(group) > 1:
                # Cannot attribute the crash inside a batch: re-enqueue
                # every member solo (no backoff) so the poisonous one
                # re-fails alone and the innocent ones just succeed.
                if job.attempts < self.retry.max_attempts:
                    self.queue.retry(job.key, error, delay=0.0,
                                     solo=True, lease=job.lease)
                    retried += 1
                else:
                    self.queue.quarantine(job.key, error, lease=job.lease)
                    quarantined += 1
            elif self.retry.should_retry(exc, job.attempts):
                delay = self.retry.delay(job.attempts, job.key)
                self.queue.retry(job.key, error, delay=delay,
                                 solo=True, lease=job.lease)
                retried += 1
            else:
                self.queue.quarantine(job.key, error, lease=job.lease)
                quarantined += 1
        with self._lock:
            self.stats.groups += 1
            self.stats.failures += len(group)
            self.stats.retried += retried
            self.stats.quarantined += quarantined
        self._wake.set()
        self._notify_settled()

    def _notify_settled(self) -> None:
        if self.on_settled is None:
            return
        try:
            self.on_settled()
        except Exception:  # pragma: no cover - observer must not kill us
            logger.exception("on_settled callback raised")

    # -- introspection -------------------------------------------------

    def busy_seconds(self) -> float:
        """Shard-seconds spent executing groups, including in-flight."""
        now = time.time()
        with self._lock:
            live = sum(max(0.0, now - entry["started"])
                       for entry in self._inflight_groups.values())
            return self._busy_seconds + live

    def utilisation(self) -> float:
        """Fraction of shard capacity spent executing since start.

        ``busy shard-seconds / (uptime x shards)``, clamped to [0, 1];
        0.0 before the pool ever started.
        """
        if self._started_at is None:
            return 0.0
        uptime = max(1e-9, time.time() - self._started_at)
        return min(1.0, self.busy_seconds() / (uptime * self.shards))

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            data = asdict(self.stats)
            inflight = len(self._inflight_groups)
        data["shards"] = self.shards
        data["mode"] = "processes" if self.use_processes else "inline"
        data["job_timeout"] = self.job_timeout
        data["max_attempts"] = self.retry.max_attempts
        data["inflight_groups"] = inflight
        data["busy_seconds"] = round(self.busy_seconds(), 6)
        data["utilisation"] = round(self.utilisation(), 6)
        return data

"""Worker-shard pool: N processes draining the job queue.

A dispatcher thread owns the durable :class:`~repro.service.queue`
state and leases one warm group at a time (fair-share order), farming
execution to a ``multiprocessing`` pool of *shards*.  Pool workers are
stateless executors of :func:`~repro.experiment.execute.simulate_group`
- the exact function an in-process Session uses - so a group still
warms once and forks its warm-state snapshot for every member, and a
run computes bit-identical results no matter which surface launched it.

Results stream back through the dispatcher: each finished group is
published to the :class:`~repro.service.store.ResultStore` and its jobs
marked ``done`` *before* the next lease, so the durable state on disk
is never more than one in-flight group away from the truth.  A crash
loses only the groups that were actually executing - the queue demotes
them back to ``pending`` at next startup.

``use_processes=False`` executes groups inline on the dispatcher
threads (one thread per shard) - the mode unit tests and tiny
single-host deployments use; it keeps everything in one process so
monkeypatched simulators and deterministic scheduling work.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.experiment.execute import simulate_group
from repro.service.queue import Job, JobQueue
from repro.service.store import ResultStore

#: Module-level indirection so tests can substitute the executor.
run_group = simulate_group


@dataclass
class WorkerStats:
    """What the pool has done since start (monotonic)."""

    groups: int = 0
    jobs: int = 0
    warmups: int = 0
    restores: int = 0
    failures: int = 0


class WorkerPool:
    """Dispatcher + shard pool pulling warm groups from the queue."""

    def __init__(self, queue: JobQueue, store: ResultStore,
                 shards: int = 2, max_group: int = 8,
                 use_processes: bool = True,
                 poll_interval: float = 0.05) -> None:
        self.queue = queue
        self.store = store
        self.shards = max(1, int(shards))
        self.max_group = max(1, int(max_group))
        self.use_processes = use_processes
        self.poll_interval = poll_interval
        self.stats = WorkerStats()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: List[threading.Thread] = []
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        if self.use_processes:
            self._pool = multiprocessing.Pool(processes=self.shards)
            threads = 1  # one dispatcher feeding the process pool
        else:
            threads = self.shards  # inline: each thread is a shard
        for index in range(threads):
            thread = threading.Thread(target=self._loop,
                                      name=f"repro-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop leasing, drain in-flight groups, release the pool."""
        self._stop.set()
        self._wake.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def kick(self) -> None:
        """Wake the dispatcher early (a submission just landed)."""
        self._wake.set()

    # -- dispatch ------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self._pool is not None and not self._reserve_slot():
                continue
            group = self.queue.lease(self.max_group)
            if not group:
                if self._pool is not None:
                    self._release_slot()
                self._wake.wait(self.poll_interval)
                self._wake.clear()
                continue
            items = [(job.key, job.spec) for job in group]
            if self._pool is None:
                try:
                    outcome = run_group(items)
                except Exception as exc:  # worker crash: fail the group
                    self._on_error(group, exc)
                else:
                    self._on_result(group, outcome)
            else:
                self._pool.apply_async(
                    run_group, (items,),
                    callback=lambda out, g=group: self._finish(g, out),
                    error_callback=lambda exc, g=group:
                        self._finish_error(g, exc))

    def _reserve_slot(self) -> bool:
        """Cap in-flight groups at the shard count (process mode)."""
        with self._lock:
            if self._inflight < self.shards:
                self._inflight += 1
                return True
        self._wake.wait(self.poll_interval)
        self._wake.clear()
        return False

    def _release_slot(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
        self._wake.set()

    def _finish(self, group: List[Job], outcome: Any) -> None:
        try:
            self._on_result(group, outcome)
        finally:
            self._release_slot()

    def _finish_error(self, group: List[Job], exc: BaseException) -> None:
        try:
            self._on_error(group, exc)
        finally:
            self._release_slot()

    # -- completion ----------------------------------------------------

    def _on_result(self, group: List[Job], outcome: Any) -> None:
        pairs, warmups, restores = outcome
        specs = {job.key: job.spec for job in group}
        finished = set()
        for key, result in pairs:
            self.store.put(key, specs[key], result)
            self.queue.complete(key)
            finished.add(key)
        # A group that returned short (shouldn't happen, but never
        # strand a lease) releases its unfinished members.
        leftover = [key for key in specs if key not in finished]
        if leftover:
            self.queue.release(leftover)
        with self._lock:
            self.stats.groups += 1
            self.stats.jobs += len(finished)
            self.stats.warmups += warmups
            self.stats.restores += restores
        self._wake.set()

    def _on_error(self, group: List[Job], exc: BaseException) -> None:
        for job in group:
            self.queue.fail(job.key, f"{type(exc).__name__}: {exc}")
        with self._lock:
            self.stats.groups += 1
            self.stats.failures += len(group)
        self._wake.set()

    # -- introspection -------------------------------------------------

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            data = asdict(self.stats)
        data["shards"] = self.shards
        data["mode"] = "processes" if self.use_processes else "inline"
        return data

"""Thin HTTP client for the experiment service (stdlib ``urllib``).

The CLI's ``repro submit`` is built on this, and it is the intended
programmatic surface for any other consumer::

    from repro.experiment import ExperimentSpec
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8023")
    ticket = client.submit(spec, tenant="alice")
    status = client.wait(ticket["grid_id"], timeout=300)
    records = client.result(ticket["grid_id"])["records"]

Errors come back as :class:`ServiceError` carrying the HTTP status and
decoded body; 429 rejections raise the :class:`Backpressure` subclass so
callers can implement retry policies without string matching.

The transport is resilient by default: connection failures (and injected
``client.request`` faults) are retried ``retries`` times with the
deterministic backoff of a :class:`~repro.resilience.RetryPolicy` before
:class:`ServiceError` (status 0) surfaces.  429 backpressure is *not*
retried unless ``retry_backpressure=True`` - batch submitters opt in and
the client then honours the server's ``Retry-After`` header; interactive
callers keep seeing :class:`Backpressure` immediately.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, \
    Tuple, Union
from urllib.error import HTTPError, URLError
from urllib.parse import quote
from urllib.request import Request, urlopen

from repro import telemetry
from repro.experiment.serialize import experiment_to_dict
from repro.experiment.spec import ExperimentSpec
from repro.resilience import FaultInjected, RetryPolicy, faults

#: Default service endpoint (matches ``repro serve``'s default port).
DEFAULT_URL = "http://127.0.0.1:8023"

#: Poll-interval growth factor / ceiling for :meth:`ServiceClient.wait`.
_POLL_GROWTH = 1.5
_POLL_MAX = 2.0


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the service."""

    def __init__(self, status: int, payload: Mapping[str, Any]) -> None:
        message = payload.get("error") if isinstance(payload, Mapping) \
            else None
        super().__init__(
            f"service returned {status}: {message or payload}")
        self.status = status
        self.payload = dict(payload) if isinstance(payload, Mapping) \
            else {"error": str(payload)}


class Backpressure(ServiceError):
    """The service rejected a submission (429); retry later.

    ``retry_after`` carries the server's ``Retry-After`` header in
    seconds (``None`` when absent).
    """

    def __init__(self, status: int, payload: Mapping[str, Any],
                 retry_after: Optional[float] = None) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ResultNotReady(ServiceError):
    """The grid has not finished yet (409); keep polling."""


class ServiceClient:
    """Minimal JSON-over-HTTP client; one instance per endpoint."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0,
                 retries: int = 2,
                 retry_backpressure: bool = False,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backpressure = retry_backpressure
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy(max_attempts=self.retries + 1)

    # -- transport -----------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Mapping[str, Any]]
                      ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        faults.trip("client.request", path)
        data = json.dumps(body).encode() if body is not None else None
        request = Request(url, data=data, method=method, headers={
            "Content-Type": "application/json",
            "Accept": "application/json",
        })
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {"error": exc.reason}
            if exc.code == 429:
                header = exc.headers.get("Retry-After")
                try:
                    retry_after = float(header) if header else None
                except ValueError:
                    retry_after = None
                raise Backpressure(exc.code, payload,
                                   retry_after=retry_after) from None
            if exc.code == 409:
                raise ResultNotReady(exc.code, payload) from None
            raise ServiceError(exc.code, payload) from None
        except URLError as exc:
            raise ServiceError(
                0, {"error": f"cannot reach {url}: {exc.reason}"}) \
                from None

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, Any]:
        """One logical request = up to ``retries + 1`` attempts.

        Retried: connection-level failures (``ServiceError`` with
        status 0, which includes dropped responses injected by a fault
        plan) and - only when ``retry_backpressure`` is set - 429s,
        sleeping the server's ``Retry-After`` if it sent one.  Real
        HTTP errors (4xx/5xx) mean the request *arrived*; they are
        never retried.
        """
        attempt = 0
        retries = telemetry.counter(
            "repro_client_retries_total",
            "Client request attempts that were retried", ("kind",))
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body)
            except FaultInjected as exc:
                if not exc.transient or attempt > self.retries:
                    raise ServiceError(
                        0, {"error": f"cannot reach "
                                     f"{self.base_url}{path}: {exc}"}) \
                        from None
                retries.labels(kind="fault").inc()
                time.sleep(self.retry_policy.delay(attempt, path))
            except Backpressure as exc:
                if not self.retry_backpressure or attempt > self.retries:
                    raise
                retries.labels(kind="backpressure").inc()
                delay = self.retry_policy.delay(attempt, path)
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                time.sleep(delay)
            except ServiceError as exc:
                if exc.status != 0 or attempt > self.retries:
                    raise
                retries.labels(kind="connection").inc()
                time.sleep(self.retry_policy.delay(attempt, path))

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """Raw Prometheus text exposition from ``/v1/metrics``.

        The one non-JSON endpoint; returned verbatim for scrapers,
        ``repro top``, and tests asserting on series.
        """
        url = f"{self.base_url}/v1/metrics"
        request = Request(url, method="GET",
                          headers={"Accept": "text/plain"})
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except HTTPError as exc:
            raise ServiceError(exc.code,
                               {"error": exc.reason}) from None
        except URLError as exc:
            raise ServiceError(
                0, {"error": f"cannot reach {url}: {exc.reason}"}) \
                from None

    def submit(self,
               experiment: Union[ExperimentSpec, Mapping[str, Any]],
               tenant: str = "default", priority: int = 0,
               name: Optional[str] = None,
               adaptive: Optional[Mapping[str, Any]] = None
               ) -> Dict[str, Any]:
        """Submit a grid; returns the service's status/admission dict.

        ``adaptive`` (an ``AdaptivePolicy.to_dict()`` mapping, or the
        policy object itself) switches the grid to adaptive
        orchestration: the service surveys every cell cheaply and then
        spends refinement rounds only where the CIs demand them.
        """
        wire = experiment_to_dict(experiment) \
            if isinstance(experiment, ExperimentSpec) \
            else dict(experiment)
        body: Dict[str, Any] = {"tenant": tenant, "priority": priority,
                                "experiment": wire}
        if name is not None:
            body["name"] = name
        if adaptive is not None:
            body["adaptive"] = adaptive.to_dict() \
                if hasattr(adaptive, "to_dict") else dict(adaptive)
        return self._request("POST", "/v1/grids", body)

    def status(self, grid_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/grids/{quote(grid_id)}")

    def result(self, grid_id: str,
               metrics: Sequence[str] = ()) -> Dict[str, Any]:
        path = f"/v1/grids/{quote(grid_id)}/result"
        if metrics:
            path += "?metrics=" + quote(",".join(metrics))
        return self._request("GET", path)

    def cancel(self, grid_id: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/grids/{quote(grid_id)}/cancel", {})

    def jobs(self, state: Optional[str] = None) -> Dict[str, Any]:
        """Job listing, optionally filtered (e.g. ``state="quarantined"``)."""
        path = "/v1/jobs"
        if state:
            path += f"?state={quote(state)}"
        return self._request("GET", path)

    def requeue_quarantined(self,
                            keys: Optional[Sequence[str]] = None
                            ) -> Dict[str, Any]:
        """Put quarantined jobs back in play (all of them by default)."""
        body: Dict[str, Any] = {}
        if keys is not None:
            body["keys"] = list(keys)
        return self._request("POST", "/v1/jobs/requeue", body)

    def wait(self, grid_id: str, timeout: float = 600.0,
             poll: float = 0.2, poll_max: float = _POLL_MAX,
             on_progress: Optional[
                 Callable[[Dict[str, Any]], None]] = None
             ) -> Dict[str, Any]:
        """Poll until the grid reaches a terminal state.

        Returns the final status for ``done`` *and* ``degraded`` grids
        (a degraded grid has partial results worth fetching; check
        ``status["quarantined"]``); raises :class:`ServiceError` on
        timeout or when the grid failed/was cancelled.

        The poll interval backs off exponentially (x1.5, capped at
        ``poll_max``) while nothing changes, and snaps back to ``poll``
        whenever progress advances - long waits stop hammering the
        server without going blind.  Every status observed carries
        ``status["progress"] = {"completed": ..., "quarantined": ...,
        "total": ...}``; ``on_progress`` (when given) fires on the first
        poll and then only when completion, quarantine count, or state
        actually changed - not once per poll.
        """
        deadline = time.time() + timeout
        interval = poll
        last_done = -1
        last_seen: Optional[Tuple[int, int, str]] = None
        while True:
            status = self.status(grid_id)
            done = int(status.get("done", 0))
            quarantined = int(status.get("quarantined", 0))
            status["progress"] = {"completed": done,
                                  "quarantined": quarantined,
                                  "total": status.get("unique_runs", 0)}
            observed = (done, quarantined, str(status.get("state", "")))
            if on_progress is not None and observed != last_seen:
                on_progress(status)
            last_seen = observed
            if status["state"] in ("done", "degraded"):
                return status
            if status["state"] in ("failed", "cancelled"):
                raise ServiceError(500, dict(
                    status, error=f"grid {grid_id} {status['state']}"))
            if time.time() >= deadline:
                raise ServiceError(0, dict(
                    status,
                    error=f"timed out after {timeout:.0f}s waiting "
                          f"for grid {grid_id} "
                          f"({status['done']}/{status['unique_runs']} "
                          f"runs done)"))
            if done > last_done:
                last_done = done
                interval = poll  # progress: stay responsive
            else:
                interval = min(poll_max, interval * _POLL_GROWTH)
            time.sleep(min(interval, max(0.0, deadline - time.time())))
        # not reached

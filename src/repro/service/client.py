"""Thin HTTP client for the experiment service (stdlib ``urllib``).

The CLI's ``repro submit`` is built on this, and it is the intended
programmatic surface for any other consumer::

    from repro.experiment import ExperimentSpec
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8023")
    ticket = client.submit(spec, tenant="alice")
    status = client.wait(ticket["grid_id"], timeout=300)
    records = client.result(ticket["grid_id"])["records"]

Errors come back as :class:`ServiceError` carrying the HTTP status and
decoded body; 429 rejections raise the :class:`Backpressure` subclass so
callers can implement retry policies without string matching.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Mapping, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.parse import quote
from urllib.request import Request, urlopen

from repro.experiment.serialize import experiment_to_dict
from repro.experiment.spec import ExperimentSpec

#: Default service endpoint (matches ``repro serve``'s default port).
DEFAULT_URL = "http://127.0.0.1:8023"


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the service."""

    def __init__(self, status: int, payload: Mapping[str, Any]) -> None:
        message = payload.get("error") if isinstance(payload, Mapping) \
            else None
        super().__init__(
            f"service returned {status}: {message or payload}")
        self.status = status
        self.payload = dict(payload) if isinstance(payload, Mapping) \
            else {"error": str(payload)}


class Backpressure(ServiceError):
    """The service rejected a submission (429); retry later."""


class ResultNotReady(ServiceError):
    """The grid has not finished yet (409); keep polling."""


class ServiceClient:
    """Minimal JSON-over-HTTP client; one instance per endpoint."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        request = Request(url, data=data, method=method, headers={
            "Content-Type": "application/json",
            "Accept": "application/json",
        })
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {"error": exc.reason}
            if exc.code == 429:
                raise Backpressure(exc.code, payload) from None
            if exc.code == 409:
                raise ResultNotReady(exc.code, payload) from None
            raise ServiceError(exc.code, payload) from None
        except URLError as exc:
            raise ServiceError(
                0, {"error": f"cannot reach {url}: {exc.reason}"}) \
                from None

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(self,
               experiment: Union[ExperimentSpec, Mapping[str, Any]],
               tenant: str = "default", priority: int = 0,
               name: Optional[str] = None) -> Dict[str, Any]:
        """Submit a grid; returns the service's status/admission dict."""
        wire = experiment_to_dict(experiment) \
            if isinstance(experiment, ExperimentSpec) \
            else dict(experiment)
        body: Dict[str, Any] = {"tenant": tenant, "priority": priority,
                                "experiment": wire}
        if name is not None:
            body["name"] = name
        return self._request("POST", "/v1/grids", body)

    def status(self, grid_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/grids/{quote(grid_id)}")

    def result(self, grid_id: str,
               metrics: Sequence[str] = ()) -> Dict[str, Any]:
        path = f"/v1/grids/{quote(grid_id)}/result"
        if metrics:
            path += "?metrics=" + quote(",".join(metrics))
        return self._request("GET", path)

    def cancel(self, grid_id: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/grids/{quote(grid_id)}/cancel", {})

    def wait(self, grid_id: str, timeout: float = 600.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the grid reaches a terminal state.

        Returns the final status; raises :class:`ServiceError` on
        timeout or when the grid failed/was cancelled.
        """
        deadline = time.time() + timeout
        while True:
            status = self.status(grid_id)
            if status["state"] == "done":
                return status
            if status["state"] in ("failed", "cancelled"):
                raise ServiceError(500, dict(
                    status, error=f"grid {grid_id} {status['state']}"))
            if time.time() >= deadline:
                raise ServiceError(0, dict(
                    status,
                    error=f"timed out after {timeout:.0f}s waiting "
                          f"for grid {grid_id} "
                          f"({status['done']}/{status['unique_runs']} "
                          f"runs done)"))
            time.sleep(poll)

"""Sharded, resumable, multi-tenant experiment service.

This package promotes the in-process experiment
:class:`~repro.experiment.session.Session` into a long-running service
with an HTTP/JSON API, so many clients share one execution fabric:

* :mod:`repro.service.queue` - durable job queue (content-hashed
  RunSpecs with tenant, priority, and state persisted to disk; a killed
  service resumes in place),
* :mod:`repro.service.workers` - worker-shard pool draining the queue,
  reusing warm-group batching so shards warm once per group,
* :mod:`repro.service.store` - content-addressed result store with
  read-through caching and in-flight dedup (identical RunSpecs from
  different tenants execute exactly once),
* :mod:`repro.service.service` - the orchestrator: fair weighted
  round-robin across tenants, bounded queues with 429-style rejection,
  durable grid records, restart reconciliation,
* :mod:`repro.service.api` / :mod:`repro.service.client` - the HTTP
  surface and its thin client; ``repro serve`` / ``repro submit`` make
  the CLI one consumer among many.

See ``docs/service.md`` for architecture and API reference.
"""

from repro.service.api import API_VERSION, ServiceHTTPServer, make_server
from repro.service.client import Backpressure, DEFAULT_URL, \
    ResultNotReady, ServiceClient, ServiceError
from repro.service.queue import CANCELLED, DONE, FAILED, Job, JobQueue, \
    PENDING, QUARANTINED, QueueFull, RUNNING, STATES
from repro.service.service import ExperimentService, ResultPending, \
    ServiceConfig, UnknownGrid
from repro.service.store import ResultStore, StoreStats
from repro.service.workers import WorkerPool, WorkerStats

__all__ = [
    "API_VERSION",
    "Backpressure",
    "CANCELLED",
    "DEFAULT_URL",
    "DONE",
    "ExperimentService",
    "FAILED",
    "Job",
    "JobQueue",
    "PENDING",
    "QUARANTINED",
    "QueueFull",
    "RUNNING",
    "ResultNotReady",
    "ResultPending",
    "ResultStore",
    "STATES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPServer",
    "StoreStats",
    "UnknownGrid",
    "WorkerPool",
    "WorkerStats",
    "make_server",
]

"""Cache line and set containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(slots=True)
class CacheLine:
    """One way of one cache set.

    ``line_addr`` is the full line-aligned physical address (so evictions can
    be written back without reconstructing the address from tag bits).

    Slotted: every cache access walks the set's lines, so the per-line
    attribute reads (``valid``/``line_addr``) are the hottest loads in the
    cache model.
    """

    valid: bool = False
    dirty: bool = False
    line_addr: int = 0
    #: PC signature of the instruction that filled the line (SHiP).
    signature: int = 0
    #: Set when the line was re-referenced after fill (SHiP outcome bit).
    reused: bool = False
    #: Set for prefetch fills (statistics).
    prefetched: bool = False

    def reset(self) -> None:
        self.valid = False
        self.dirty = False
        self.line_addr = 0
        self.signature = 0
        self.reused = False
        self.prefetched = False


@dataclass(slots=True)
class CacheSet:
    """A set: ``ways`` lines plus whatever state the policies keep."""

    ways: int
    lines: List[CacheLine] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = [CacheLine() for _ in range(self.ways)]

    def find(self, line_addr: int) -> Optional[int]:
        """Way index holding ``line_addr``, or None."""
        for way, line in enumerate(self.lines):
            if line.valid and line.line_addr == line_addr:
                return way
        return None

    def find_invalid(self) -> Optional[int]:
        for way, line in enumerate(self.lines):
            if not line.valid:
                return way
        return None

"""Cache replacement policies: LRU (baseline), SRRIP, SHiP."""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.ship import SHiPPolicy, pc_signature
from repro.cache.replacement.srrip import RRPV_INSERT, RRPV_MAX, SRRIPPolicy
from repro.errors import ConfigError

_POLICIES = {
    "lru": LRUPolicy,
    "srrip": SRRIPPolicy,
    "ship": SHiPPolicy,
    "drrip": DRRIPPolicy,
}


def make_replacement(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Construct a replacement policy by name ('lru', 'srrip', 'ship')."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, ways)


__all__ = [
    "DRRIPPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "RRPV_INSERT",
    "RRPV_MAX",
    "SHiPPolicy",
    "SRRIPPolicy",
    "make_replacement",
    "pc_signature",
]

"""True LRU replacement (the paper's baseline policy, Table II)."""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used with a precise recency order per set.

    Implemented with a monotonically increasing timestamp per (set, way);
    the smallest timestamp is the LRU way.
    """

    name = "lru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._clock = itertools.count(1)
        self._stamp = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        self._stamp[set_idx][way] = next(self._clock)

    def on_fill(self, set_idx: int, way: int, pc: int,
                is_prefetch: bool = False) -> None:
        self._touch(set_idx, way)

    def on_hit(self, set_idx: int, way: int, pc: int) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int, lines: Sequence[CacheLine]) -> int:
        stamps = self._stamp[set_idx]
        best = 0
        best_stamp = stamps[0]
        for way in range(1, len(stamps)):
            stamp = stamps[way]
            if stamp < best_stamp:
                best = way
                best_stamp = stamp
        return best

    def eviction_order(self, set_idx: int,
                       lines: Sequence[CacheLine]) -> List[int]:
        stamps = self._stamp[set_idx]
        return sorted(range(self.ways), key=lambda w: stamps[w])

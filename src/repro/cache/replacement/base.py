"""Replacement-policy interface.

BARD needs more from a replacement policy than "pick a victim": it scans the
set *from least- to most-attractive line* looking for a low-cost dirty line
(paper sections IV-B and VII-E).  Policies therefore also expose
:meth:`eviction_order`, the per-set way ordering from most-evictable to
least-evictable (LRU -> MRU for true LRU; descending RRPV for RRIP-family
policies, ties broken by way index).
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.cache.line import CacheLine


class ReplacementPolicy(abc.ABC):
    """Per-cache replacement state and decisions.

    Snapshot contract: the warm-state checkpoint layer
    (:mod:`repro.sim.warmstate`) captures and restores a policy with
    ``copy.deepcopy``, so implementations must keep *all* mutable state
    in deep-copyable attributes (plain containers, ints, or picklable
    iterators such as ``itertools.count``) and must not hold references
    to the engine, the cache, or other simulation components.  Every
    shipped policy (LRU, SRRIP, SHiP, DRRIP) satisfies this.
    """

    name: str = "base"

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways

    @abc.abstractmethod
    def on_fill(self, set_idx: int, way: int, pc: int,
                is_prefetch: bool = False) -> None:
        """A new line was installed into (set, way)."""

    @abc.abstractmethod
    def on_hit(self, set_idx: int, way: int, pc: int) -> None:
        """The line at (set, way) was re-referenced."""

    @abc.abstractmethod
    def victim(self, set_idx: int, lines: Sequence[CacheLine]) -> int:
        """Way the policy would evict from ``set_idx``."""

    @abc.abstractmethod
    def eviction_order(self, set_idx: int,
                       lines: Sequence[CacheLine]) -> List[int]:
        """Ways ordered most-evictable first (LRU -> MRU or max -> min RRPV)."""

    def on_eviction(self, set_idx: int, way: int,
                    line: CacheLine) -> None:
        """The line at (set, way) is being evicted (SHiP feedback hook)."""

"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).

SHiP augments RRIP with a table of saturating counters (the SHCT) indexed by
a PC signature.  When a line whose signature "never hits" is inserted it gets
RRPV = 3 (evict soon); otherwise RRPV = 2 as in SRRIP.  The SHCT learns from
per-line outcome bits: increment on a line hit, decrement when a line is
evicted without having been re-referenced.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.srrip import RRPV_INSERT, RRPV_MAX

#: Number of SHCT entries (signature hash buckets).
SHCT_SIZE = 16384

#: Saturating-counter maximum (3-bit counters).
SHCT_MAX = 7


def pc_signature(pc: int) -> int:
    """Hash a program counter into an SHCT index."""
    return (pc ^ (pc >> 14) ^ (pc >> 28)) & (SHCT_SIZE - 1)


class SHiPPolicy(ReplacementPolicy):
    """SHiP-PC on top of 2-bit RRIP."""

    name = "ship"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self.rrpv = [[RRPV_MAX] * ways for _ in range(num_sets)]
        self.shct = [SHCT_MAX // 2] * SHCT_SIZE

    def on_fill(self, set_idx: int, way: int, pc: int,
                is_prefetch: bool = False) -> None:
        sig = pc_signature(pc)
        if self.shct[sig] == 0 and not is_prefetch:
            self.rrpv[set_idx][way] = RRPV_MAX
        else:
            self.rrpv[set_idx][way] = RRPV_INSERT

    def on_hit(self, set_idx: int, way: int, pc: int) -> None:
        self.rrpv[set_idx][way] = 0
        sig = pc_signature(pc)
        if self.shct[sig] < SHCT_MAX:
            self.shct[sig] += 1

    def on_eviction(self, set_idx: int, way: int, line: CacheLine) -> None:
        if line.valid and not line.reused:
            sig = line.signature & (SHCT_SIZE - 1)
            if self.shct[sig] > 0:
                self.shct[sig] -= 1

    def victim(self, set_idx: int, lines: Sequence[CacheLine]) -> int:
        rrpv = self.rrpv[set_idx]
        while True:
            for way in range(self.ways):
                if rrpv[way] >= RRPV_MAX:
                    return way
            for way in range(self.ways):
                rrpv[way] += 1

    def eviction_order(self, set_idx: int,
                       lines: Sequence[CacheLine]) -> List[int]:
        rrpv = self.rrpv[set_idx]
        return sorted(range(self.ways), key=lambda w: (-rrpv[w], w))

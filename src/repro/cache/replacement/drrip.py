"""DRRIP: Dynamic RRIP with set dueling (Jaleel et al., ISCA 2010).

DRRIP chooses at runtime between SRRIP insertion (RRPV = 2) and BRRIP
insertion (RRPV = 3 most of the time, 2 rarely) using *set dueling*: a few
leader sets are dedicated to each policy and a saturating counter (PSEL)
tracks which leader group misses less; follower sets use the winner.

Included as an extension beyond the paper's LRU/SRRIP/SHiP sweep - BARD's
``eviction_order`` contract (descending RRPV) works unchanged.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.srrip import RRPV_INSERT, RRPV_MAX

#: One leader set per this many sets, for each of the two policies.
_DUEL_PERIOD = 32

#: BRRIP inserts with RRPV_MAX except once per _BRRIP_EPSILON fills.
_BRRIP_EPSILON = 32

#: PSEL saturating counter width.
_PSEL_MAX = 1023


class DRRIPPolicy(ReplacementPolicy):
    """Set-dueling dynamic RRIP."""

    name = "drrip"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self.rrpv = [[RRPV_MAX] * ways for _ in range(num_sets)]
        self.psel = _PSEL_MAX // 2
        self._brrip_tick = 0

    def _set_kind(self, set_idx: int) -> str:
        """'srrip' / 'brrip' leader, or 'follower'."""
        slot = set_idx % _DUEL_PERIOD
        if slot == 0:
            return "srrip"
        if slot == 1:
            return "brrip"
        return "follower"

    def _use_brrip(self, set_idx: int) -> bool:
        kind = self._set_kind(set_idx)
        if kind == "srrip":
            return False
        if kind == "brrip":
            return True
        return self.psel > _PSEL_MAX // 2

    def record_miss(self, set_idx: int) -> None:
        """PSEL training: misses in leader sets vote against their policy."""
        kind = self._set_kind(set_idx)
        if kind == "srrip" and self.psel < _PSEL_MAX:
            self.psel += 1
        elif kind == "brrip" and self.psel > 0:
            self.psel -= 1

    def on_fill(self, set_idx: int, way: int, pc: int,
                is_prefetch: bool = False) -> None:
        self.record_miss(set_idx)
        if self._use_brrip(set_idx):
            self._brrip_tick = (self._brrip_tick + 1) % _BRRIP_EPSILON
            self.rrpv[set_idx][way] = (
                RRPV_INSERT if self._brrip_tick == 0 else RRPV_MAX
            )
        else:
            self.rrpv[set_idx][way] = RRPV_INSERT

    def on_hit(self, set_idx: int, way: int, pc: int) -> None:
        self.rrpv[set_idx][way] = 0

    def victim(self, set_idx: int, lines: Sequence[CacheLine]) -> int:
        rrpv = self.rrpv[set_idx]
        while True:
            for way in range(self.ways):
                if rrpv[way] >= RRPV_MAX:
                    return way
            for way in range(self.ways):
                rrpv[way] += 1

    def eviction_order(self, set_idx: int,
                       lines: Sequence[CacheLine]) -> List[int]:
        rrpv = self.rrpv[set_idx]
        return sorted(range(self.ways), key=lambda w: (-rrpv[w], w))

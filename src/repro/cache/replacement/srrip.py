"""SRRIP: Static Re-Reference Interval Prediction (Jaleel et al., ISCA 2010).

Each way keeps a 2-bit re-reference prediction value (RRPV).  On a hit the
RRPV is set to 0; new lines are inserted with RRPV = 2 (long re-reference
interval).  Victim selection evicts a line with RRPV = 3, incrementing all
RRPVs until one reaches 3 (paper Fig. 16).  Ties are broken by the lowest
way index, matching the paper's "ties broken arbitrarily".
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy

#: Maximum RRPV for a 2-bit counter.
RRPV_MAX = 3

#: Insertion RRPV for SRRIP (long re-reference interval).
RRPV_INSERT = 2


class SRRIPPolicy(ReplacementPolicy):
    """2-bit SRRIP."""

    name = "srrip"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self.rrpv = [[RRPV_MAX] * ways for _ in range(num_sets)]

    def on_fill(self, set_idx: int, way: int, pc: int,
                is_prefetch: bool = False) -> None:
        self.rrpv[set_idx][way] = RRPV_INSERT

    def on_hit(self, set_idx: int, way: int, pc: int) -> None:
        self.rrpv[set_idx][way] = 0

    def victim(self, set_idx: int, lines: Sequence[CacheLine]) -> int:
        rrpv = self.rrpv[set_idx]
        while True:
            for way in range(self.ways):
                if rrpv[way] >= RRPV_MAX:
                    return way
            for way in range(self.ways):
                rrpv[way] += 1

    def eviction_order(self, set_idx: int,
                       lines: Sequence[CacheLine]) -> List[int]:
        """Ways from greatest to least RRPV (paper section VII-E)."""
        rrpv = self.rrpv[set_idx]
        return sorted(range(self.ways), key=lambda w: (-rrpv[w], w))

"""Miss Status Holding Register (MSHR) bookkeeping.

Each outstanding miss owns one :class:`MSHREntry`; subsequent accesses to
the same line merge into it.  The configured MSHR count bounds how many
misses may be *outstanding at the next level*; excess misses queue inside
the cache (modelling the pipeline backing up behind a full MSHR file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

#: Completion callback: receives the engine tick the data arrived.
DoneCallback = Callable[[int], None]


@dataclass
class MSHREntry:
    """State for one outstanding line fill."""

    line_addr: int
    is_write: bool
    pc: int
    core_id: int
    is_prefetch: bool
    allocated_tick: int
    issued: bool = False
    waiters: List[DoneCallback] = field(default_factory=list)

    def merge(self, is_write: bool, is_prefetch: bool,
              on_done: DoneCallback | None) -> None:
        """Fold another access to the same line into this entry."""
        self.is_write = self.is_write or is_write
        if not is_prefetch:
            # A demand access upgrades a prefetch-initiated miss.
            self.is_prefetch = False
        if on_done is not None:
            self.waiters.append(on_done)

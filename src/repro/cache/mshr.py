"""Miss Status Holding Register (MSHR) bookkeeping.

Each outstanding miss owns one :class:`MSHREntry`; subsequent accesses to
the same line merge into it at word granularity (CAM-matched coalescing).
Every entry walks a small FSM:

``ALLOCATED``
    The miss owns an MSHR but has not yet been issued toward the lower
    level (it may be queued behind the issue-bandwidth bound).
``ISSUED``
    :meth:`~repro.cache.cache.Cache._issue` ran; the request is
    traversing this level's tag pipeline.
``FILLING``
    The request is at the lower level; the fill is in flight.
``DRAINING``
    The fill arrived (or a :meth:`~repro.cache.cache.Cache.drain`
    completed the miss functionally); waiters are being notified and the
    entry is retiring.

Two bounding regimes exist.  The legacy regime (the default
configuration, bit-identical to the seed model) treats the configured
MSHR count as an *issue-bandwidth* bound: entries are unbounded, but at
most ``mshrs`` misses may be outstanding at the next level and excess
misses queue inside the cache.  The opt-in pipeline regime
(``CacheConfig.mshr_pipeline``) treats it as a true MSHR-file bound:
occupancy never exceeds ``mshrs``, secondary misses are bounded per
entry by ``mshr_targets``, and inadmissible accesses stall the pipeline
(see :meth:`~repro.cache.cache.Cache._admit`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

#: Completion callback: receives the engine tick the data arrived.
DoneCallback = Callable[[int], None]

#: MSHR entry FSM states (see module docstring).
ALLOCATED = 0
ISSUED = 1
FILLING = 2
DRAINING = 3

#: Coalescing granularity: 8-byte words, so a 64-byte line has 8 words.
WORD_BYTES = 8
WORDS_PER_LINE = 8
#: All words of a line covered (whole-line data, e.g. a writeback merge).
FULL_WORD_MASK = (1 << WORDS_PER_LINE) - 1


def word_index(addr: int) -> int:
    """Which 8-byte word of its line ``addr`` touches."""
    return (addr >> 3) & (WORDS_PER_LINE - 1)


@dataclass
class MSHREntry:
    """State for one outstanding line fill."""

    line_addr: int
    is_write: bool
    pc: int
    core_id: int
    is_prefetch: bool
    allocated_tick: int
    issued: bool = False
    waiters: List[DoneCallback] = field(default_factory=list)
    #: FSM state (ALLOCATED/ISSUED/FILLING/DRAINING).
    state: int = ALLOCATED
    #: Bitmask of the 8-byte words requests to this entry have touched.
    word_mask: int = 0
    #: Requests folded into this entry, the initial one included.
    targets: int = 1
    #: Set by :meth:`~repro.cache.cache.Cache.drain`: the miss was
    #: completed functionally and any in-flight send/fill is stale.
    drained: bool = False

    def merge(self, is_write: bool, is_prefetch: bool,
              on_done: DoneCallback | None, word: int = 0) -> None:
        """Fold another access to the same line into this entry.

        The merge is monotonic: write-ness and demand-ness only ever
        upgrade (a merged read never clears ``is_write``; a merged
        prefetch never re-marks a demand miss as prefetch).
        """
        self.is_write = self.is_write or is_write
        if not is_prefetch:
            # A demand access upgrades a prefetch-initiated miss.
            self.is_prefetch = False
        self.word_mask |= 1 << word
        self.targets += 1
        if on_done is not None:
            self.waiters.append(on_done)

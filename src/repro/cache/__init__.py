"""Cache hierarchy: lines, MSHRs, set-associative caches, and policies."""

from repro.cache.cache import Cache, CacheStats
from repro.cache.line import CacheLine, CacheSet
from repro.cache.mshr import MSHREntry
from repro.cache.replacement import (
    LRUPolicy,
    ReplacementPolicy,
    SHiPPolicy,
    SRRIPPolicy,
    make_replacement,
)
from repro.cache.writeback import (
    EagerWriteback,
    VirtualWriteQueue,
    WritebackPolicy,
    make_writeback_policy,
)

__all__ = [
    "Cache",
    "CacheLine",
    "CacheSet",
    "CacheStats",
    "EagerWriteback",
    "LRUPolicy",
    "MSHREntry",
    "ReplacementPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "VirtualWriteQueue",
    "WritebackPolicy",
    "make_replacement",
    "make_writeback_policy",
]

"""Writeback policies: baseline (none), Eager Writeback, VWQ, and BARD.

BARD itself lives in :mod:`repro.core.bard`; :func:`make_writeback_policy`
constructs any of them by name for configuration-driven wiring.
"""

from typing import Optional

from repro.cache.writeback.base import WritebackPolicy, WritebackPolicyStats
from repro.cache.writeback.eager import EagerWriteback
from repro.cache.writeback.vwq import VirtualWriteQueue
from repro.errors import ConfigError


def make_writeback_policy(
    name: Optional[str],
    mapping,
    tracker=None,
    memctrl=None,
) -> Optional[WritebackPolicy]:
    """Construct a writeback policy by name.

    Accepts: None/'none' (baseline), 'eager', 'vwq', 'bard-e', 'bard-c',
    'bard-h'/'bard'.
    """
    if name is None or name.lower() == "none":
        return None
    lname = name.lower()
    if lname == "eager":
        return EagerWriteback()
    if lname == "vwq":
        return VirtualWriteQueue(mapping)
    if lname.startswith("bard"):
        from repro.core.bard import make_bard

        return make_bard(lname, mapping, tracker=tracker, memctrl=memctrl)
    raise ConfigError(f"unknown writeback policy {name!r}")


__all__ = [
    "EagerWriteback",
    "VirtualWriteQueue",
    "WritebackPolicy",
    "WritebackPolicyStats",
    "make_writeback_policy",
]

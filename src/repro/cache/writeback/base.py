"""Writeback-policy plugin interface.

A writeback policy rides on top of the cache's replacement policy and may

* override the victim choice (BARD-E),
* proactively *cleanse* dirty lines - write them back without eviction
  (BARD-C, Eager Writeback, Virtual Write Queue), and
* observe dirty-bit transitions and issued writebacks (to keep its own
  tracking state, e.g. the BLP-Tracker or VWQ's row index).

The default implementation is a transparent no-op, which is also the
baseline configuration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WritebackPolicyStats:
    """Decision counters (paper Fig. 10 bottom)."""

    victim_selections: int = 0
    overrides: int = 0
    cleanses: int = 0

    @property
    def plain_evictions(self) -> int:
        return self.victim_selections - self.overrides


class WritebackPolicy:
    """Base (no-op) writeback policy; subclasses override selected hooks."""

    name = "none"

    def __init__(self) -> None:
        self.cache = None
        self.stats = WritebackPolicyStats()

    def attach(self, cache) -> None:
        """Bind the policy to its cache (called by the cache constructor)."""
        self.cache = cache

    # -- victim selection ------------------------------------------------

    def choose_victim(self, set_idx: int, default_way: int, now: int) -> int:
        """Return the way to evict; may trigger cleanses as a side effect."""
        self.stats.victim_selections += 1
        return default_way

    # -- observation hooks -------------------------------------------------

    def on_hit(self, set_idx: int, way: int, now: int) -> None:
        """A demand access hit (Eager Writeback triggers here too)."""

    def on_dirty(self, line_addr: int) -> None:
        """A resident line just became dirty."""

    def on_undirty(self, line_addr: int) -> None:
        """A dirty line was written back (evicted or cleansed)."""

    def reset_dirty_tracking(self) -> None:
        """Drop any per-line dirty-tracking state.

        Called before the warm-state machinery re-primes the policy by
        replaying :meth:`on_dirty` for every resident dirty LLC line in
        canonical (set, way) order - the same walk after a functional
        warmup and after a checkpoint restore, so both execution paths
        leave bit-identical policy state.
        """

    def on_writeback(self, line_addr: int) -> None:
        """A writeback for ``line_addr`` was issued toward memory."""

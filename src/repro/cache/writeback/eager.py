"""Eager Writeback (Lee, Tyson & Farrens, MICRO 2000) - paper section VI-A.

EW proactively writes back dirty lines that reach the LRU position, without
considering which DRAM bank they map to.  Following the paper's evaluation
methodology (section VI-C): "we writeback the LRU line if it is dirty
(without considering the bank) following an eviction or a hit, as these
modify the LRU state of the set".

The paper shows EW *hurts* on DDR5 (-0.5% on average) because bank-unaware
proactive writebacks worsen the bank imbalance of WRQ entries.
"""

from __future__ import annotations

from repro.cache.writeback.base import WritebackPolicy


class EagerWriteback(WritebackPolicy):
    """Bank-unaware proactive writeback of LRU dirty lines."""

    name = "eager"

    def _clean_lru_if_dirty(self, set_idx: int, now: int) -> None:
        cache = self.cache
        cset = cache.sets[set_idx]
        order = cache.repl.eviction_order(set_idx, cset.lines)
        for way in order:
            line = cset.lines[way]
            if not line.valid:
                continue
            if line.dirty:
                self.stats.cleanses += 1
                cache.cleanse(set_idx, way, now)
            break

    def choose_victim(self, set_idx: int, default_way: int, now: int) -> int:
        self.stats.victim_selections += 1
        # The eviction itself proceeds normally; after it, the *new* LRU
        # line is eagerly cleaned.  The cache invokes choose_victim before
        # removing the victim, so clean the next-in-line instead.
        cache = self.cache
        cset = cache.sets[set_idx]
        order = cache.repl.eviction_order(set_idx, cset.lines)
        for way in order:
            if way == default_way:
                continue
            line = cset.lines[way]
            if not line.valid:
                continue
            if line.dirty:
                self.stats.cleanses += 1
                cache.cleanse(set_idx, way, now)
            break
        return default_way

    def on_hit(self, set_idx: int, way: int, now: int) -> None:
        self._clean_lru_if_dirty(set_idx, now)

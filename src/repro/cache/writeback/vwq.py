"""Virtual Write Queue (Stuecheli et al., ISCA 2010) - paper section VI-B.

VWQ raises the *row-buffer hit rate* of writes: when a dirty line is written
back, other dirty LLC lines mapping to the *same DRAM row* are proactively
cleaned so the writes drain as row hits.  Following the paper's methodology
(section VI-C) we let VWQ search the entire LLC for same-row dirty lines
(its original set-neighbourhood heuristic does not work under the
page-interleaving mappings real systems use).

The search is implemented with an incrementally maintained index from DRAM
row to resident dirty lines, so it is O(lines in that row) per eviction
rather than a full cache scan.

The paper shows VWQ slightly *hurts* on DDR5 (-0.3%): row hits still pay the
6x same-bankgroup write-to-write delay, and chasing them reduces the bank
parallelism of the WRQ.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set, Tuple

from repro.cache.writeback.base import WritebackPolicy
from repro.dram.mapping import ZenMapping

#: Row key: (channel, subchannel, bankgroup, bank, row).
RowKey = Tuple[int, int, int, int, int]

#: Maximum lines cleaned per triggering eviction (bounds WRQ pressure).
_MAX_CLEANS_PER_EVICTION = 4


class VirtualWriteQueue(WritebackPolicy):
    """Row-hit-seeking proactive writeback."""

    name = "vwq"

    def __init__(self, mapping: ZenMapping) -> None:
        super().__init__()
        self.mapping = mapping
        self._rows: Dict[RowKey, Set[int]] = defaultdict(set)

    def _row_key(self, line_addr: int) -> RowKey:
        c = self.mapping.map(line_addr)
        return (c.channel, c.subchannel, c.bankgroup, c.bank, c.row)

    # -- dirty-line index maintenance -------------------------------------

    def on_dirty(self, line_addr: int) -> None:
        self._rows[self._row_key(line_addr)].add(line_addr)

    def on_undirty(self, line_addr: int) -> None:
        key = self._row_key(line_addr)
        bucket = self._rows.get(key)
        if bucket is not None:
            bucket.discard(line_addr)
            if not bucket:
                del self._rows[key]

    def reset_dirty_tracking(self) -> None:
        self._rows.clear()

    # -- proactive cleaning ------------------------------------------------

    def choose_victim(self, set_idx: int, default_way: int, now: int) -> int:
        self.stats.victim_selections += 1
        cache = self.cache
        victim = cache.sets[set_idx].lines[default_way]
        if victim.valid and victim.dirty:
            self._clean_same_row(victim.line_addr, now)
        return default_way

    def _clean_same_row(self, line_addr: int, now: int) -> None:
        cache = self.cache
        key = self._row_key(line_addr)
        # Copy: cleansing mutates the index through on_undirty.
        candidates = [a for a in self._rows.get(key, ()) if a != line_addr]
        cleaned = 0
        for addr in candidates:
            if cleaned >= _MAX_CLEANS_PER_EVICTION:
                break
            found = cache.find_line(addr)
            if found is None:
                self._rows[key].discard(addr)
                continue
            s, w = found
            if cache.sets[s].lines[w].dirty:
                self.stats.cleanses += 1
                cache.cleanse(s, w, now)
                cleaned += 1

"""Set-associative write-back cache with MSHRs and policy hooks.

This is the building block for the paper's three-level hierarchy
(Table II).  It supports:

* write-allocate stores (a store miss fetches the line, then dirties it),
* writeback-allocate from the level above (a dirty victim arriving from the
  upper level installs directly as dirty, no fetch - the line's data is
  complete),
* a pluggable :class:`~repro.cache.replacement.base.ReplacementPolicy`,
* a pluggable :class:`~repro.cache.writeback.base.WritebackPolicy` - this is
  the hook BARD, Eager Writeback and Virtual Write Queue plug into, and
* an optional prefetcher driven on demand accesses.

Timing: hit latency is charged per level; misses descend to the lower level
after the tag-lookup latency and complete when the lower level responds.
All externally visible times are engine ticks.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Protocol, \
    Tuple

from repro.cache.line import CacheSet
from repro.cache.mshr import DRAINING, DoneCallback, FILLING, \
    FULL_WORD_MASK, ISSUED, MSHREntry, WORDS_PER_LINE
from repro.cache.replacement import ReplacementPolicy, pc_signature
from repro.clock import TICKS_PER_CPU_CYCLE
from repro.dram.commands import LINE_BITS, LINE_SIZE
from repro.errors import ConfigError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.warmstate import CacheWarmState

#: Mask clearing the block-offset bits of a physical address.
_LINE_MASK = ~(LINE_SIZE - 1)

#: Mask selecting the word index of an address (see repro.cache.mshr).
_WORD_IDX_MASK = WORDS_PER_LINE - 1

#: One queued (not yet admitted) access in an MSHR pipeline:
#: (addr, is_write, pc, core_id, is_prefetch, on_done, queued_tick).
_PendingAccess = Tuple[int, bool, int, int, bool, Optional[DoneCallback],
                       int]


class LowerLevel(Protocol):
    """What a cache needs from the level below it."""

    def read(self, line_addr: int, now: int, on_done: DoneCallback,
             core_id: int, is_prefetch: bool, pc: int = 0) -> None: ...

    def writeback(self, line_addr: int, now: int) -> None: ...


@dataclass
class CacheStats:
    """Per-cache counters (demand and prefetch traffic separated)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_misses: int = 0
    mshr_merges: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writebacks: int = 0
    cleanses: int = 0
    writeback_installs: int = 0
    #: Demand accesses that merged into an already outstanding miss.
    secondary_misses: int = 0
    #: New 8-byte words contributed by merges (request coalescing).
    coalesced_words: int = 0
    #: Accesses deferred by MSHR-pipeline admission (occupancy full,
    #: secondary-miss bound hit, or a blocking cache mid-miss).
    mshr_stalls: int = 0
    #: CPU cycles deferred accesses spent queued before admission.
    mshr_stall_cycles: int = 0
    #: Local prefetches dropped at admission (they never queue).
    prefetch_drops: int = 0
    #: ``hist[k]`` = allocations that brought MSHR occupancy to ``k``.
    mshr_occupancy_hist: List[int] = field(default_factory=list)

    def snapshot(self) -> "CacheStats":
        """Copy safe to keep while the live counters mutate.

        ``copy.copy`` alone would alias the occupancy histogram list;
        sampled runs snapshot per-interval stats while the live object
        keeps accumulating through discarded re-warm windows.
        """
        out = copy.copy(self)
        out.mshr_occupancy_hist = list(self.mshr_occupancy_hist)
        return out

    @property
    def demand_accesses(self) -> int:
        return self.accesses - self.prefetch_accesses

    @property
    def demand_misses(self) -> int:
        return self.misses - self.prefetch_misses

    @property
    def miss_rate(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.demand_misses / self.demand_accesses


class Cache:
    """One level of the cache hierarchy."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        hit_latency: int,
        mshr_count: int,
        replacement: ReplacementPolicy,
        engine,
        lower: LowerLevel,
        writeback_policy=None,
        prefetcher=None,
        mshr_targets: int = 0,
        hit_under_miss: bool = True,
        pipeline: bool = False,
    ) -> None:
        if size_bytes % (ways * LINE_SIZE):
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by "
                f"ways*line ({ways}*{LINE_SIZE})"
            )
        self.name = name
        self.num_sets = size_bytes // (ways * LINE_SIZE)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{name}: set count must be a power of two")
        self.ways = ways
        self.hit_latency_ticks = hit_latency * TICKS_PER_CPU_CYCLE
        self._set_mask = self.num_sets - 1
        self.mshr_count = mshr_count
        self.repl = replacement
        self.engine = engine
        self.lower = lower
        self.wb_policy = writeback_policy
        self.prefetcher = prefetcher
        self.stats = CacheStats()

        self.sets = [CacheSet(ways) for _ in range(self.num_sets)]
        # Resident-line index: one {line_addr: way} dict per set, kept in
        # lockstep with the line array by _install/_evict.  Tag lookup is
        # the most frequent cache operation, and the dict makes it O(1)
        # instead of a scan over the ways.
        self._tags: List[Dict[int, int]] = [
            {} for _ in range(self.num_sets)
        ]
        self.mshr: Dict[int, MSHREntry] = {}
        self._outstanding = 0
        self._issue_queue: Deque[int] = deque()

        # MSHR pipeline (opt-in; see repro.cache.mshr).  The legacy
        # regime keeps admission unconditional, so the access entry
        # point binds straight to the processing body and the default
        # configuration pays nothing for the machinery.
        self._pipeline = pipeline
        self.mshr_targets = mshr_targets
        self.hit_under_miss = hit_under_miss
        self._pending: Deque[_PendingAccess] = deque()
        #: Stale fills to swallow: drain() completed these misses
        #: functionally while their lower-level fill was in flight.
        self._cancelled_fills: Dict[int, int] = {}
        #: True while admission has accesses queued - the signal Core
        #: uses to stall issue (plain attribute: read every core tick).
        self.stalled = False
        if pipeline:
            self.access = self._admit_access  # type: ignore[method-assign]
        else:
            self.access = self._process  # type: ignore[method-assign]

        # Functional-warmup plumbing: the next level's warm entry points,
        # or None when the level below is the memory controller (warm
        # traffic stops at the DRAM boundary - there is no timing state
        # to warm there).
        self._warm_lower = getattr(lower, "warm_access", None)
        self._warm_lower_wb = getattr(lower, "warm_writeback", None)

        if self.wb_policy is not None:
            self.wb_policy.attach(self)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr & _LINE_MASK

    def set_index(self, line_addr: int) -> int:
        return (line_addr >> LINE_BITS) & self._set_mask

    def find_line(self, line_addr: int) -> Optional[Tuple[int, int]]:
        """(set_idx, way) for a resident line, else None."""
        set_idx = (line_addr >> LINE_BITS) & self._set_mask
        way = self._tags[set_idx].get(line_addr)
        if way is None:
            return None
        return set_idx, way

    # ------------------------------------------------------------------
    # Demand / prefetch access path
    # ------------------------------------------------------------------

    def access(
        self,
        addr: int,
        is_write: bool,
        pc: int,
        now: int,
        on_done: Optional[DoneCallback],
        core_id: int = 0,
        is_prefetch: bool = False,
    ) -> None:
        """Access one line; ``on_done(tick)`` fires when data is available.

        ``__init__`` rebinds this name per instance (to :meth:`_process`
        in the legacy regime, :meth:`_admit_access` when the MSHR
        pipeline is on), so the common path pays nothing for admission;
        this body only runs through an explicit class-attribute call.
        """
        if self._pipeline:
            self._admit_access(addr, is_write, pc, now, on_done, core_id,
                               is_prefetch)
        else:
            self._process(addr, is_write, pc, now, on_done, core_id,
                          is_prefetch)

    def _admit_access(
        self,
        addr: int,
        is_write: bool,
        pc: int,
        now: int,
        on_done: Optional[DoneCallback],
        core_id: int = 0,
        is_prefetch: bool = False,
    ) -> None:
        """Pipeline-regime entry point: admission control, then process."""
        if (self.mshr or self._pending) and not self._admit(
                addr, is_write, pc, now, on_done, core_id, is_prefetch):
            return
        self._process(addr, is_write, pc, now, on_done, core_id,
                      is_prefetch)

    def _admit(self, addr: int, is_write: bool, pc: int, now: int,
               on_done: Optional[DoneCallback], core_id: int,
               is_prefetch: bool) -> bool:
        """Whether an access may enter the pipeline right now.

        Only consulted while misses are outstanding.  Admitted (True):
        hits while ``hit_under_miss``; secondary misses merging into an
        entry with target headroom; new misses while the MSHR file has a
        free entry and nothing older is queued (queued accesses drain
        FIFO - nothing overtakes them except hits and merges, which
        attach to strictly older misses).  Everything else queues in
        ``_pending`` and raises :attr:`stalled`; inadmissible *local*
        prefetches - those with no completion callback - are dropped
        instead (a real prefetcher gives up under pressure rather than
        occupying pipeline queue slots).  A prefetch that does carry
        ``on_done`` is an upper level's MSHR fill in flight; dropping it
        would wedge that entry forever, so it queues like a demand.
        """
        la = addr & _LINE_MASK
        if self.hit_under_miss:
            if la in self._tags[(la >> LINE_BITS) & self._set_mask]:
                return True
            entry = self.mshr.get(la)
            if entry is not None:
                if not self.mshr_targets \
                        or entry.targets < self.mshr_targets:
                    return True
            elif not self._pending and len(self.mshr) < self.mshr_count:
                return True
        if is_prefetch and on_done is None:
            self.stats.prefetch_drops += 1
            return False
        self.stats.mshr_stalls += 1
        self._pending.append(
            (addr, is_write, pc, core_id, is_prefetch, on_done, now))
        self.stalled = True
        return False

    def _head_admissible(self, addr: int) -> bool:
        """Whether the oldest queued access could enter the pipeline."""
        if not self.mshr:
            return True
        if not self.hit_under_miss:
            return False
        la = addr & _LINE_MASK
        if la in self._tags[(la >> LINE_BITS) & self._set_mask]:
            return True
        entry = self.mshr.get(la)
        if entry is not None:
            return not self.mshr_targets \
                or entry.targets < self.mshr_targets
        return len(self.mshr) < self.mshr_count

    def _drain_pending(self, now: int) -> None:
        """Replay queued accesses in FIFO order while capacity lasts.

        Called when a fill retires an MSHR entry.  Head-of-line order is
        strict: the loop stops at the first inadmissible access, which
        is what makes queued misses drain FIFO (per set and globally).
        """
        pending = self._pending
        stats = self.stats
        while pending:
            head = pending[0]
            if not self._head_admissible(head[0]):
                break
            pending.popleft()
            addr, is_write, pc, core_id, is_prefetch, on_done, queued = \
                head
            stats.mshr_stall_cycles += (now - queued) \
                // TICKS_PER_CPU_CYCLE
            self._process(addr, is_write, pc, now, on_done, core_id,
                          is_prefetch)
        if not pending:
            self.stalled = False

    def _process(
        self,
        addr: int,
        is_write: bool,
        pc: int,
        now: int,
        on_done: Optional[DoneCallback],
        core_id: int = 0,
        is_prefetch: bool = False,
    ) -> None:
        """The access body proper (admission, if any, already passed)."""
        la = addr & _LINE_MASK
        set_idx = (la >> LINE_BITS) & self._set_mask
        stats = self.stats
        stats.accesses += 1
        if is_prefetch:
            stats.prefetch_accesses += 1

        way = self._tags[set_idx].get(la)
        if way is not None:
            hit_line = self.sets[set_idx].lines[way]
            stats.hits += 1
            hit_line.reused = True
            wb_policy = self.wb_policy
            if not is_prefetch:
                self.repl.on_hit(set_idx, way, pc)
            if is_write and not hit_line.dirty:
                hit_line.dirty = True
                if wb_policy is not None:
                    wb_policy.on_dirty(la)
            if wb_policy is not None and not is_prefetch:
                wb_policy.on_hit(set_idx, way, now)
            if on_done is not None:
                done_at = now + self.hit_latency_ticks
                self.engine.schedule(done_at, on_done, done_at)
            if self.prefetcher is not None and not is_prefetch:
                self._run_prefetcher(addr, pc, hit=True, now=now,
                                     is_prefetch=is_prefetch)
            return

        # Miss: merge into an outstanding MSHR or allocate a new one.
        stats.misses += 1
        if is_prefetch:
            stats.prefetch_misses += 1
        elif is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        word = (addr >> 3) & _WORD_IDX_MASK
        entry = self.mshr.get(la)
        if entry is not None:
            mask_before = entry.word_mask
            entry.merge(is_write, is_prefetch, on_done, word=word)
            stats.mshr_merges += 1
            if entry.word_mask != mask_before:
                stats.coalesced_words += 1
            if not is_prefetch:
                stats.secondary_misses += 1
        else:
            entry = MSHREntry(
                line_addr=la,
                is_write=is_write,
                pc=pc,
                core_id=core_id,
                is_prefetch=is_prefetch,
                allocated_tick=now,
                word_mask=1 << word,
            )
            if on_done is not None:
                entry.waiters.append(on_done)
            self.mshr[la] = entry
            occ = len(self.mshr)
            hist = stats.mshr_occupancy_hist
            if len(hist) <= occ:
                hist.extend([0] * (occ + 1 - len(hist)))
            hist[occ] += 1
            self._try_issue(la, now)
        if self.prefetcher is not None and not is_prefetch:
            self._run_prefetcher(addr, pc, hit=False, now=now,
                                 is_prefetch=is_prefetch)

    def _run_prefetcher(self, addr: int, pc: int, hit: bool, now: int,
                        is_prefetch: bool) -> None:
        if self.prefetcher is None or is_prefetch:
            return
        for target in self.prefetcher.on_access(addr, pc, hit):
            tla = target & _LINE_MASK
            if tla == addr & _LINE_MASK:
                continue
            if tla in self._tags[(tla >> LINE_BITS) & self._set_mask]:
                continue
            if tla in self.mshr:
                continue
            self.access(tla, False, pc, now, None, is_prefetch=True)

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------

    def _try_issue(self, line_addr: int, now: int) -> None:
        if self._outstanding >= self.mshr_count:
            self._issue_queue.append(line_addr)
            return
        self._issue(line_addr, now)

    def _issue(self, line_addr: int, now: int) -> None:
        entry = self.mshr[line_addr]
        entry.issued = True
        entry.state = ISSUED
        self._outstanding += 1
        self.engine.schedule(now + self.hit_latency_ticks,
                             self._send, line_addr, entry)

    def _send(self, line_addr: int, entry: MSHREntry) -> None:
        """Forward an issued miss to the lower level (tag latency elapsed)."""
        if entry.drained:
            # drain() completed this miss functionally before the send.
            return
        entry.state = FILLING
        self.lower.read(
            line_addr,
            self.engine.now,
            lambda t, la=line_addr: self._on_fill(la, t),
            entry.core_id,
            entry.is_prefetch,
            pc=entry.pc,
        )

    def _on_fill(self, line_addr: int, now: int) -> None:
        if self._cancelled_fills:
            stale = self._cancelled_fills.get(line_addr, 0)
            if stale:
                # drain() already completed this miss functionally;
                # swallow the fill before it can touch a same-line entry
                # allocated after the drain.
                if stale == 1:
                    del self._cancelled_fills[line_addr]
                else:
                    self._cancelled_fills[line_addr] = stale - 1
                return
        entry = self.mshr.pop(line_addr, None)
        self._outstanding -= 1
        if self._issue_queue:
            self._issue(self._issue_queue.popleft(), now)
        if entry is None:
            # The fill raced with a writeback-install of the same line.
            return
        entry.state = DRAINING
        self.stats.fills += 1
        self._install(line_addr, entry.is_write, entry.pc, now,
                      entry.is_prefetch)
        for waiter in entry.waiters:
            waiter(now)
        if self._pending:
            self._drain_pending(now)

    # ------------------------------------------------------------------
    # Fill / install / evict
    # ------------------------------------------------------------------

    def _install(self, line_addr: int, dirty: bool, pc: int, now: int,
                 is_prefetch: bool) -> None:
        set_idx = (line_addr >> LINE_BITS) & self._set_mask
        cset = self.sets[set_idx]
        tags = self._tags[set_idx]
        # All ways resident (the steady state) - skip the invalid-way scan.
        way = None if len(tags) >= self.ways else cset.find_invalid()
        if way is None:
            way = self._choose_victim(set_idx, now)
            self._evict(set_idx, way, now)
        line = cset.lines[way]
        tags[line_addr] = way
        line.valid = True
        line.dirty = dirty
        line.line_addr = line_addr
        line.signature = pc_signature(pc)
        line.reused = False
        line.prefetched = is_prefetch
        self.repl.on_fill(set_idx, way, pc, is_prefetch)
        if dirty and self.wb_policy is not None:
            self.wb_policy.on_dirty(line_addr)

    def _choose_victim(self, set_idx: int, now: int) -> int:
        default = self.repl.victim(set_idx, self.sets[set_idx].lines)
        if self.wb_policy is None:
            return default
        return self.wb_policy.choose_victim(set_idx, default, now)

    def _evict(self, set_idx: int, way: int, now: int) -> None:
        line = self.sets[set_idx].lines[way]
        if not line.valid:
            return
        del self._tags[set_idx][line.line_addr]
        self.stats.evictions += 1
        self.repl.on_eviction(set_idx, way, line)
        if line.dirty:
            self.stats.dirty_evictions += 1
            self._write_back(line.line_addr, now)
            if self.wb_policy is not None:
                self.wb_policy.on_undirty(line.line_addr)
        line.reset()

    def _write_back(self, line_addr: int, now: int) -> None:
        self.stats.writebacks += 1
        if self.wb_policy is not None:
            self.wb_policy.on_writeback(line_addr)
        self.lower.writeback(line_addr, now + self.hit_latency_ticks)

    def cleanse(self, set_idx: int, way: int, now: int) -> None:
        """Proactively write back a dirty line *without* evicting it.

        This is the primitive BARD-C, Eager Writeback and VWQ build on
        (paper Fig. 9): the line's data goes to the write queue and its
        dirty bit clears, but it stays resident.
        """
        line = self.sets[set_idx].lines[way]
        if not line.valid or not line.dirty:
            return
        line.dirty = False
        self.stats.cleanses += 1
        self._write_back(line.line_addr, now)
        if self.wb_policy is not None:
            self.wb_policy.on_undirty(line.line_addr)

    # ------------------------------------------------------------------
    # Writeback path from the level above
    # ------------------------------------------------------------------

    def writeback(self, line_addr: int, now: int) -> None:
        """Receive a dirty victim from the upper level.

        Hits update the line in place; misses install the line as dirty
        without fetching (writeback-allocate, non-inclusive hierarchy).
        """
        la = self.line_addr(line_addr)
        self.stats.writeback_installs += 1
        found = self.find_line(la)
        if found is not None:
            set_idx, way = found
            line = self.sets[set_idx].lines[way]
            line.reused = True
            if not line.dirty:
                line.dirty = True
                if self.wb_policy is not None:
                    self.wb_policy.on_dirty(la)
            self.repl.on_hit(set_idx, way, 0)
            if self.wb_policy is not None:
                self.wb_policy.on_hit(set_idx, way, now)
            return
        entry = self.mshr.get(la)
        if entry is not None:
            # A fill for this line is in flight; it will install dirty.
            # The victim carries the whole line's data, so the fill now
            # covers every word of the entry (fill-merge).
            entry.is_write = True
            entry.word_mask = FULL_WORD_MASK
            return
        self._install(la, True, 0, now, is_prefetch=False)

    # Lower-level protocol alias: an upper cache calls ``read`` on us.
    def read(self, line_addr: int, now: int, on_done: DoneCallback,
             core_id: int, is_prefetch: bool, pc: int = 0) -> None:
        self.access(line_addr, False, pc, now, on_done, core_id=core_id,
                    is_prefetch=is_prefetch)

    # ------------------------------------------------------------------
    # Functional warmup path (zero engine events)
    # ------------------------------------------------------------------

    def warm_access(self, addr: int, is_write: bool, pc: int,
                    is_prefetch: bool = False) -> None:
        """One warmup access with no timing: state machines only.

        Updates exactly the architectural state the detailed path would
        leave behind - tag arrays, dirty bits, replacement metadata,
        prefetcher tables - while skipping everything timing-related
        (MSHRs, engine events, the writeback policy, DRAM).  Misses
        descend recursively so lower levels warm too, and evicted dirty
        victims install into the level below as writeback-allocates.
        Statistics are not maintained: warmup counters are discarded at
        the measurement boundary anyway, and this loop runs once per
        warmup instruction per core.
        """
        la = addr & _LINE_MASK
        set_idx = (la >> LINE_BITS) & self._set_mask
        way = self._tags[set_idx].get(la)
        if way is not None:
            line = self.sets[set_idx].lines[way]
            line.reused = True
            if not is_prefetch:
                self.repl.on_hit(set_idx, way, pc)
            if is_write:
                line.dirty = True
        else:
            # Fetch descends first (mirroring the detailed fill's
            # temporal order); the write's dirty bit lands at this
            # level only, exactly as a detailed store miss would.
            if self._warm_lower is not None:
                self._warm_lower(la, False, pc, is_prefetch)
            self._warm_install(la, is_write, pc, is_prefetch)
        if self.prefetcher is not None and not is_prefetch:
            for target in self.prefetcher.on_access(addr, pc,
                                                    way is not None):
                tla = target & _LINE_MASK
                if tla == la:
                    continue
                if tla in self._tags[(tla >> LINE_BITS) & self._set_mask]:
                    continue
                self.warm_access(tla, False, pc, is_prefetch=True)

    def _warm_install(self, line_addr: int, dirty: bool, pc: int,
                      is_prefetch: bool) -> None:
        """Install a line during functional warmup.

        Victim choice uses the replacement policy alone - the writeback
        policy is deliberately *not* consulted, which keeps the warm
        state identical under every ``llc_writeback`` setting (the
        property warm-state checkpoint sharing relies on).
        """
        set_idx = (line_addr >> LINE_BITS) & self._set_mask
        cset = self.sets[set_idx]
        tags = self._tags[set_idx]
        way = None if len(tags) >= self.ways else cset.find_invalid()
        if way is None:
            way = self.repl.victim(set_idx, cset.lines)
            victim = cset.lines[way]
            del tags[victim.line_addr]
            self.repl.on_eviction(set_idx, way, victim)
            if victim.dirty and self._warm_lower_wb is not None:
                self._warm_lower_wb(victim.line_addr)
            victim.reset()
        line = cset.lines[way]
        tags[line_addr] = way
        line.valid = True
        line.dirty = dirty
        line.line_addr = line_addr
        line.signature = pc_signature(pc)
        line.reused = False
        line.prefetched = is_prefetch
        self.repl.on_fill(set_idx, way, pc, is_prefetch)

    def warm_writeback(self, line_addr: int) -> None:
        """Receive a dirty victim from the level above during warmup."""
        la = line_addr & _LINE_MASK
        found = self.find_line(la)
        if found is not None:
            set_idx, way = found
            line = self.sets[set_idx].lines[way]
            line.reused = True
            line.dirty = True
            self.repl.on_hit(set_idx, way, 0)
            return
        self._warm_install(la, True, 0, is_prefetch=False)

    # ------------------------------------------------------------------
    # Drain / warm-state snapshot / restore
    # ------------------------------------------------------------------

    def drain(self, now: int = 0) -> None:
        """Complete every outstanding miss functionally, right now.

        Queued (not yet admitted) accesses replay through the functional
        warm path, then every MSHR entry installs its line and fires its
        waiters at ``now``.  Fills already requested from the lower
        level are remembered in ``_cancelled_fills`` and swallowed when
        they arrive, so a stale fill can never complete a same-line
        entry allocated after the drain; sends still scheduled see the
        entry's ``drained`` flag and do nothing.  Used by warm-state
        checkpointing to snapshot mid-miss.  Installs go through the
        warm path, which never consults the writeback policy - callers
        tracking dirty lines must re-prime it afterwards (see
        ``System._prime_writeback_policy``).
        """
        while self._pending:
            (addr, is_write, pc, _core_id, is_prefetch, on_done,
             _queued) = self._pending.popleft()
            self.warm_access(addr, is_write, pc, is_prefetch=is_prefetch)
            if on_done is not None:
                on_done(now)
        self.stalled = False
        if not self.mshr:
            return
        for la, entry in self.mshr.items():
            if entry.state == FILLING:
                self._cancelled_fills[la] = \
                    self._cancelled_fills.get(la, 0) + 1
            entry.state = DRAINING
            entry.drained = True
        for la, entry in self.mshr.items():
            found = self.find_line(la)
            if found is None:
                self._warm_install(la, entry.is_write, entry.pc,
                                   entry.is_prefetch)
            elif entry.is_write:
                set_idx, way = found
                self.sets[set_idx].lines[way].dirty = True
            for waiter in entry.waiters:
                waiter(now)
        self.mshr.clear()
        self._issue_queue.clear()
        self._outstanding = 0

    def snapshot_warm_state(self) -> "CacheWarmState":
        """Deep-copied warm state: tag array + replacement + prefetcher.

        Outstanding misses (MSHR entries or queued accesses) no longer
        raise: they are completed functionally via :meth:`drain` first,
        so mid-miss checkpointing captures the post-drain state.
        """
        from repro.sim.warmstate import CacheWarmState

        if self.mshr or self._pending:
            self.drain(self.engine.now)
        lines: List[List[Optional[Tuple[int, bool, int, bool, bool]]]] = []
        for cset in self.sets:
            lines.append([
                (ln.line_addr, ln.dirty, ln.signature, ln.reused,
                 ln.prefetched) if ln.valid else None
                for ln in cset.lines
            ])
        return CacheWarmState(
            lines=lines,
            repl=copy.deepcopy(self.repl),
            prefetcher=copy.deepcopy(self.prefetcher),
        )

    def restore_warm_state(self, state: "CacheWarmState") -> None:
        """Overwrite this cache's state with a snapshot's (deep copies)."""
        if len(state.lines) != self.num_sets or (
                state.lines and len(state.lines[0]) != self.ways):
            raise SimulationError(
                f"{self.name}: snapshot geometry mismatch "
                f"({len(state.lines)} sets vs {self.num_sets})")
        for set_idx, row in enumerate(state.lines):
            tags = self._tags[set_idx]
            tags.clear()
            for way, data in enumerate(row):
                line = self.sets[set_idx].lines[way]
                if data is None:
                    line.reset()
                    continue
                la, dirty, signature, reused, prefetched = data
                line.valid = True
                line.dirty = dirty
                line.line_addr = la
                line.signature = signature
                line.reused = reused
                line.prefetched = prefetched
                tags[la] = way
        self.repl = copy.deepcopy(state.repl)
        if self.prefetcher is not None and state.prefetcher is not None:
            self.prefetcher = copy.deepcopy(state.prefetcher)

"""Interval planning and result aggregation for sampled runs.

The interval-driven run loop itself lives on
:meth:`repro.sim.system.System.run` (it manipulates engine, core, and
cache internals); this module supplies the pure parts:

* :func:`interval_starts` - the (possibly unbounded) sequence of interval
  start offsets a :class:`~repro.sampling.config.SamplingConfig` places
  in a measured epoch,
* :func:`aggregate_results` - fold the per-interval
  :class:`~repro.sim.results.RunResult` snapshots into one whole-run
  result carrying a :class:`~repro.sampling.stats.SamplingSummary`.

Aggregation sums counters, so a 1-interval sample covering the whole
epoch is bit-identical to the corresponding full run - the equivalence
the golden sampling test pins.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

from repro.cache.cache import CacheStats
from repro.cache.writeback.base import WritebackPolicyStats
from repro.core.bard import BardAccuracy
from repro.dram.channel import ChannelStats
from repro.dram.stats import SubChannelStats
from repro.errors import ConfigError
from repro.sampling.config import SamplingConfig
from repro.sampling.stats import SamplingSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.sim pulls in the config layer,
    # which imports repro.sampling - a module-level import would cycle.
    from repro.sim.results import RunResult


def interval_starts(sampling: SamplingConfig,
                    epoch_instructions: int) -> Iterator[int]:
    """Yield interval start offsets (instructions past the warmup end).

    One interval is placed per period window.  The stream is infinite -
    the run loop takes as many starts as the (possibly adaptive) plan
    needs - and deterministic: the ``random`` scheme draws each window's
    offset from a generator seeded with ``scheme_seed``, so the same
    plan always measures the same slices of the trace.
    """
    period = sampling.resolve_period(epoch_instructions)
    slack = period - sampling.interval_instructions
    rng = random.Random(sampling.scheme_seed) \
        if sampling.scheme == "random" else None
    index = 0
    while True:
        start = index * period
        if rng is not None:
            start += rng.randint(0, slack)
        yield start
        index += 1


def validate_plan(sampling: SamplingConfig,
                  epoch_instructions: int) -> int:
    """Check the plan fits its epoch; returns the resolved period.

    A fixed-count plan must place every interval inside the measured
    epoch.  An adaptive plan (``target_relative_error`` set) may sample
    past the nominal epoch - traces are infinite - so only the minimum
    interval count must fit.
    """
    period = sampling.resolve_period(epoch_instructions)
    if sampling.target_relative_error is None:
        # Random placement can land anywhere inside the last period
        # window, so its worst-case span is the full window count.
        if sampling.scheme == "random":
            span = sampling.intervals * period
        else:
            span = (sampling.intervals - 1) * period \
                + sampling.interval_instructions
        if span > epoch_instructions:
            raise ConfigError(
                f"sampling plan exceeds the measured epoch: "
                f"{sampling.intervals} intervals every {period} "
                f"instructions span up to {span} > sim_instructions "
                f"{epoch_instructions}")
    return period


def _sum_counters(cls, items: Sequence):
    """Field-wise sum of plain counter dataclasses.

    Numeric fields sum directly; list-valued fields (histograms, e.g.
    ``CacheStats.mshr_occupancy_hist``) sum element-wise with the result
    as long as the longest interval's list.
    """
    out = cls()
    for f in dataclasses.fields(cls):
        values = [getattr(item, f.name) for item in items]
        if values and isinstance(values[0], list):
            merged: List[float] = []
            for hist in values:
                if len(hist) > len(merged):
                    merged.extend([0] * (len(hist) - len(merged)))
                for i, count in enumerate(hist):
                    merged[i] += count
            setattr(out, f.name, merged)
        else:
            setattr(out, f.name, sum(values))
    return out


def aggregate_results(
    intervals: List[RunResult],
    per_core_retired: Sequence[int],
    per_core_cycles: Sequence[float],
    label: str,
    summary: SamplingSummary,
) -> RunResult:
    """Fold per-interval results into one whole-run :class:`RunResult`.

    Counters are summed (the LLC/DRAM/channel statistics of the measured
    intervals; fast-forward contributes nothing by construction) and the
    per-core IPC list is pooled - total retired over total cycles - so
    ratio metrics derived from the aggregate match a full run when the
    sample covers the whole epoch.
    """
    from repro.sim.results import RunResult

    first = intervals[0]
    dram = SubChannelStats()
    for res in intervals:
        dram.merge_from(res.dram)
    channels = [
        _sum_counters(ChannelStats,
                      [res.channels[i] for res in intervals])
        for i in range(len(first.channels))
    ]
    wb_stats: Optional[WritebackPolicyStats] = None
    if first.wb_stats is not None:
        wb_stats = _sum_counters(WritebackPolicyStats,
                                 [res.wb_stats for res in intervals])
    accuracy: Optional[BardAccuracy] = None
    if first.bard_accuracy is not None:
        accuracy = _sum_counters(BardAccuracy,
                                 [res.bard_accuracy for res in intervals])
    llc = _sum_counters(CacheStats, [res.llc for res in intervals])
    ipc = [
        retired / cycles if cycles > 0 else 0.0
        for retired, cycles in zip(per_core_retired, per_core_cycles)
    ]
    return RunResult(
        label=label,
        cores=first.cores,
        instructions=sum(res.instructions for res in intervals),
        elapsed_ticks=sum(res.elapsed_ticks for res in intervals),
        ipc=ipc,
        llc=llc,
        dram=dram,
        channels=channels,
        subchannel_count=first.subchannel_count,
        wb_stats=wb_stats,
        bard_accuracy=accuracy,
        llc_demand_accesses=llc.demand_accesses,
        events=sum(res.events for res in intervals),
        mshr_stall_cycles=sum(res.mshr_stall_cycles
                              for res in intervals),
        sampling=summary,
    )


def collect_metric_values(
    intervals: List[RunResult],
    metrics: Sequence[str],
) -> Dict[str, List[float]]:
    """Per-metric value lists across the interval results."""
    return {
        name: [float(getattr(res, name)) for res in intervals]
        for name in metrics
    }

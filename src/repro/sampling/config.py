"""Sampled-simulation configuration.

A :class:`SamplingConfig` describes a SMARTS-style interval-sampling plan
for one run: instead of measuring one monolithic epoch of
``sim_instructions`` per core in full detail, the run alternates

* **fast-forward** - raw trace consumption with no state updates (tens of
  times faster than detailed simulation),
* **functional warming** - the last ``warm_instructions`` of every gap
  are driven through the cache/TLB/replacement/prefetcher state machines
  (:meth:`~repro.cpu.core.Core.warm_up`) so each measurement interval
  starts from warm microarchitectural state, and
* **detailed measurement intervals** of ``interval_instructions`` each,

and reports per-metric means with CLT confidence intervals across the
intervals (:mod:`repro.sampling.stats`).

The plan plugs into :class:`~repro.config.system.SystemConfig` via the
``sampling`` field, which makes it part of every run's content hash:
sampled and full runs of the same (workload, config, seed) can never
collide in the experiment layer's result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError

#: Valid interval-placement schemes.
SCHEMES = ("periodic", "random")


@dataclass(frozen=True)
class SamplingConfig:
    """An interval-sampling plan (see :mod:`repro.sampling`).

    ``intervals`` measurement intervals of ``interval_instructions`` each
    are placed one per period.  The period defaults to
    ``sim_instructions // intervals`` - the plan then tiles the epoch -
    and can be pinned explicitly with ``period_instructions``.  Placement
    within each period window is either ``periodic`` (at the window
    start) or ``random`` (uniform in the window, deterministic in
    ``scheme_seed``).

    When ``target_relative_error`` is set, the run becomes *adaptive*: it
    keeps sampling past ``intervals`` (at the same period) until the mean
    IPC's relative CI half-width reaches the target or ``max_intervals``
    is hit.
    """

    #: Measurement intervals to run (the minimum count in adaptive mode).
    intervals: int = 10
    #: Detailed instructions measured per interval, per core.
    interval_instructions: int = 1_000
    #: Distance between interval starts; ``None`` spreads the intervals
    #: evenly over the measured epoch (``sim_instructions // intervals``).
    period_instructions: Optional[int] = None
    #: Functional-warming instructions at the tail of every fast-forward
    #: gap (the rest of the gap is raw trace skipping).
    warm_instructions: int = 2_000
    #: Detailed (but unmeasured) instructions executed right before each
    #: interval to rebuild pipeline state - ROB occupancy, in-flight
    #: MSHRs, queued DRAM traffic - that functional warming cannot
    #: produce.  Without it the interval starts from an artificially
    #: quiesced pipeline and IPC is biased; a few hundred instructions
    #: (roughly the ROB depth) restore steady state.
    detailed_warm_instructions: int = 500
    #: Interval placement: ``"periodic"`` or ``"random"``.
    scheme: str = "periodic"
    #: RNG seed for the ``"random"`` scheme (placement is deterministic).
    scheme_seed: int = 1
    #: Confidence level for the reported intervals (CLT, two-sided).
    confidence: float = 0.95
    #: Adaptive mode: keep sampling until the mean-IPC CI half-width over
    #: mean is at most this (e.g. ``0.02`` for 2%).  ``None`` disables.
    target_relative_error: Optional[float] = None
    #: Hard cap on intervals in adaptive mode.
    max_intervals: int = 64

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ConfigError("sampling needs at least one interval")
        if self.interval_instructions <= 0:
            raise ConfigError(
                "sampling interval_instructions must be positive")
        if self.period_instructions is not None \
                and self.period_instructions < self.interval_instructions:
            raise ConfigError(
                "sampling period must be at least one interval long")
        if self.warm_instructions < 0:
            raise ConfigError("sampling warm_instructions must be >= 0")
        if self.detailed_warm_instructions < 0:
            raise ConfigError(
                "sampling detailed_warm_instructions must be >= 0")
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"sampling scheme must be one of {SCHEMES}")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(
                "sampling confidence must be strictly between 0 and 1")
        if self.target_relative_error is not None \
                and self.target_relative_error <= 0:
            raise ConfigError(
                "sampling target_relative_error must be positive")
        if self.max_intervals < self.intervals:
            raise ConfigError(
                "sampling max_intervals must be >= intervals")

    def resolve_period(self, epoch_instructions: int) -> int:
        """The concrete period for an epoch of ``epoch_instructions``.

        Raises :class:`~repro.errors.ConfigError` when the epoch is too
        short to hold the plan's intervals.
        """
        period = self.period_instructions
        if period is None:
            period = epoch_instructions // self.intervals
        if period < self.interval_instructions:
            raise ConfigError(
                f"sampling plan does not fit: period {period} < interval "
                f"length {self.interval_instructions} (epoch "
                f"{epoch_instructions}, {self.intervals} intervals)")
        return period

    def with_intervals(self, intervals: int) -> "SamplingConfig":
        """Copy of this plan with a different interval count."""
        return replace(self, intervals=intervals,
                       max_intervals=max(self.max_intervals, intervals))

    def fixed(self, intervals: int) -> "SamplingConfig":
        """A fixed-count re-plan at ``intervals``, spread over the epoch.

        Used by the adaptive orchestrator
        (:meth:`~repro.experiment.spec.RunSpec.refine`): the per-run
        adaptive stop is disabled (``target_relative_error=None``) so
        the run's cost is exactly ``intervals`` measured intervals, and
        a pinned period is released so a grown plan re-tiles the epoch
        instead of overrunning it.  Everything else (interval length,
        warming budgets, scheme, seed, confidence) is preserved.
        """
        return replace(self, intervals=intervals,
                       max_intervals=max(self.max_intervals, intervals),
                       period_instructions=None,
                       target_relative_error=None)

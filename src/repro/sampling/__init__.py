"""Sampled simulation: interval sampling with confidence intervals.

SMARTS-style statistical sampling for the simulator (see
``docs/sampling.md``): a run measures short detailed intervals spread
over the instruction epoch and fast-forwards between them with the
functional engine, reporting per-metric means with CLT confidence
intervals instead of one monolithic measurement::

    from repro import SamplingConfig, Session, small_8core

    cfg = small_8core().with_warmup_mode("functional").with_sampling(
        SamplingConfig(intervals=10, interval_instructions=1_000))
    rs = Session().run_one(cfg, "lbm")
    print(rs.mean_ipc, rs.sampling.ci("mean_ipc"))

The pieces:

* :class:`~repro.sampling.config.SamplingConfig` - the plan (interval
  length, period, count, placement scheme, adaptive error target);
  plugs into :class:`~repro.config.system.SystemConfig` and is part of
  every run's content hash.
* :mod:`repro.sampling.stats` - means, confidence intervals, relative
  error, and the :class:`~repro.sampling.stats.SamplingSummary` attached
  to sampled :class:`~repro.sim.results.RunResult` objects.
* :mod:`repro.sampling.runner` - interval placement and aggregation of
  per-interval snapshots into the whole-run result.
"""

from repro.sampling.config import SCHEMES, SamplingConfig
from repro.sampling.runner import aggregate_results, collect_metric_values, \
    interval_starts, validate_plan
from repro.sampling.stats import SAMPLE_METRICS, MetricEstimate, \
    SamplingSummary, estimate, half_width, mean_ci, relative_error, \
    summarize, z_value

__all__ = [
    "SAMPLE_METRICS",
    "SCHEMES",
    "MetricEstimate",
    "SamplingConfig",
    "SamplingSummary",
    "aggregate_results",
    "collect_metric_values",
    "estimate",
    "half_width",
    "interval_starts",
    "mean_ci",
    "relative_error",
    "summarize",
    "validate_plan",
    "z_value",
]

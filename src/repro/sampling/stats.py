"""Statistics over measurement intervals: means, CIs, relative error.

The estimators are the standard SMARTS/CLT machinery: each measurement
interval contributes one observation per metric; the run's estimate of a
metric is the sample mean across intervals, and its confidence interval
is ``mean +/- z * s / sqrt(n)`` with ``s`` the sample standard deviation
and ``z`` the two-sided normal quantile for the configured confidence.
Everything here is pure arithmetic over plain sequences - no simulator
imports - so the estimators are unit-testable in isolation.

A single interval has no variance estimate; its CI is reported as
degenerate (zero half-width) rather than undefined so downstream
consumers always see a well-formed ``(lo, hi)`` pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import NormalDist
from typing import Dict, List, Sequence, Tuple

#: Metrics summarised per interval by default (superset of the result
#: set's DEFAULT_METRICS so reports can annotate every headline row).
SAMPLE_METRICS: Tuple[str, ...] = (
    "mean_ipc", "mpki", "wpki", "write_blp", "time_writing_pct",
    "mean_w2w_ns",
)


def z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for ``confidence`` in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than 2 values."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def half_width(values: Sequence[float],
               confidence: float = 0.95) -> float:
    """CLT confidence-interval half-width: ``z * s / sqrt(n)``."""
    n = len(values)
    if n < 2:
        return 0.0
    return z_value(confidence) * stdev(values) / math.sqrt(n)


def mean_ci(values: Sequence[float],
            confidence: float = 0.95) -> Tuple[float, float, float]:
    """``(mean, lo, hi)`` for the sample mean at the given confidence."""
    m = mean(values)
    hw = half_width(values, confidence)
    return m, m - hw, m + hw


def relative_error(values: Sequence[float],
                   confidence: float = 0.95) -> float:
    """CI half-width over ``|mean|`` (the SMARTS stopping criterion).

    Returns ``inf`` when the mean is zero but the spread is not, and
    0.0 for a constant (or single-value) sample.
    """
    m = mean(values)
    hw = half_width(values, confidence)
    if hw == 0.0:
        return 0.0
    if m == 0.0:
        return math.inf
    return hw / abs(m)


@dataclass
class MetricEstimate:
    """One metric's estimate across the measurement intervals."""

    mean: float
    stdev: float
    ci_lo: float
    ci_hi: float
    #: CI half-width over ``|mean|`` (0.0 for a constant sample).
    rel_error: float
    #: Number of intervals behind this estimate.
    n: int

    @property
    def half_width(self) -> float:
        return (self.ci_hi - self.ci_lo) / 2.0


def estimate(values: Sequence[float],
             confidence: float = 0.95) -> MetricEstimate:
    """Summarise one metric's per-interval values."""
    m, lo, hi = mean_ci(values, confidence)
    rel = relative_error(values, confidence)
    return MetricEstimate(
        mean=m, stdev=stdev(values), ci_lo=lo, ci_hi=hi,
        rel_error=rel if math.isfinite(rel) else 0.0,
        n=len(values),
    )


def summarize(values_by_metric: Dict[str, Sequence[float]],
              confidence: float = 0.95) -> Dict[str, MetricEstimate]:
    """Per-metric :class:`MetricEstimate` for every metric's value list."""
    return {name: estimate(vals, confidence)
            for name, vals in values_by_metric.items()}


@dataclass
class SamplingSummary:
    """How a sampled run was measured, and what it estimated.

    Carried on :class:`~repro.sim.results.RunResult` (``None`` for full
    runs) and serialised with it into the result cache, so cached sampled
    results keep their confidence intervals.
    """

    scheme: str
    intervals: int
    interval_instructions: int
    period_instructions: int
    warm_instructions: int
    confidence: float
    #: Per-core instruction offsets (relative to the end of warmup) at
    #: which each measurement interval started.
    starts: List[int] = field(default_factory=list)
    metrics: Dict[str, MetricEstimate] = field(default_factory=dict)

    def estimate(self, metric: str) -> MetricEstimate:
        """The named metric's estimate; raises a listing error if absent."""
        est = self.metrics.get(metric)
        if est is None:
            raise ValueError(
                f"no sampled estimate for metric {metric!r}; sampled "
                f"metrics are: {', '.join(sorted(self.metrics))}")
        return est

    def ci(self, metric: str) -> Tuple[float, float]:
        """The named metric's ``(lo, hi)`` confidence interval."""
        est = self.estimate(metric)
        return est.ci_lo, est.ci_hi

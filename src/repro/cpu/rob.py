"""Reorder buffer for the trace-driven core model."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class RobEntry:
    """One in-flight instruction; ``done_tick`` is None while outstanding."""

    __slots__ = ("done_tick", "is_load")

    def __init__(self, done_tick: Optional[int], is_load: bool = False):
        self.done_tick = done_tick
        self.is_load = is_load


class ReorderBuffer:
    """Bounded FIFO of in-flight instructions, retired in order."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.entries: Deque[RobEntry] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.size

    @property
    def head(self) -> Optional[RobEntry]:
        return self.entries[0] if self.entries else None

    def push(self, entry: RobEntry) -> None:
        assert not self.full, "pushed into a full ROB"
        self.entries.append(entry)

    def retire_ready(self, now: int, max_count: int) -> int:
        """Retire up to ``max_count`` completed instructions from the head."""
        retired = 0
        while (
            retired < max_count
            and self.entries
            and self.entries[0].done_tick is not None
            and self.entries[0].done_tick <= now
        ):
            self.entries.popleft()
            retired += 1
        return retired

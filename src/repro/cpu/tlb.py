"""TLB hierarchy (latency model).

The paper's configuration (Table II) has small L1 I/D TLBs backed by a
1024-set, 12-way L2 TLB.  We model the TLBs as set-associative LRU arrays
whose misses add *latency* to the triggering access; page-walk memory
traffic itself is not injected (documented substitution - the walk's cache
footprint is second-order for the write-path experiments this repository
targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: 4 KB pages.
PAGE_BITS = 12

#: One TLB's snapshot: per-set {page: recency stamp} plus the clock.
TLBState = Tuple[List[Dict[int, int]], int]

#: A hierarchy's snapshot: (L1 state, L2 state).
HierarchyState = Tuple[TLBState, TLBState]


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Set-associative LRU TLB; ``lookup`` returns the added latency."""

    def __init__(self, num_sets: int, ways: int, hit_latency: int = 0,
                 name: str = "tlb") -> None:
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.hit_latency = hit_latency
        self.stats = TLBStats()
        # Per-set mapping of page number -> recency stamp.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self._clock = 0

    def _set_index(self, page: int) -> int:
        return page % self.num_sets

    def lookup(self, addr: int) -> bool:
        """Translate; returns True on hit.  Inserts the page on miss."""
        page = addr >> PAGE_BITS
        s = self._sets[self._set_index(page)]
        self.stats.accesses += 1
        self._clock += 1
        if page in s:
            s[page] = self._clock
            return True
        self.stats.misses += 1
        if len(s) >= self.ways:
            lru_page = min(s, key=s.get)
            del s[lru_page]
        s[page] = self._clock
        return False

    def snapshot(self) -> TLBState:
        """Copy of the translation state (stats excluded)."""
        return ([dict(s) for s in self._sets], self._clock)

    def restore(self, state: TLBState) -> None:
        """Overwrite the translation state with a snapshot's (copied)."""
        sets, clock = state
        self._sets = [dict(s) for s in sets]
        self._clock = clock


class TLBHierarchy:
    """L1 TLB backed by a shared L2 TLB; returns total added cycles."""

    def __init__(
        self,
        l1_sets: int = 16,
        l1_ways: int = 4,
        l2_sets: int = 1024,
        l2_ways: int = 12,
        l2_latency: int = 8,
        walk_latency: int = 80,
        name: str = "dtlb",
    ) -> None:
        self.l1 = TLB(l1_sets, l1_ways, name=f"{name}-l1")
        self.l2 = TLB(l2_sets, l2_ways, name=f"{name}-l2")
        self.l2_latency = l2_latency
        self.walk_latency = walk_latency

    def translate(self, addr: int) -> int:
        """Added latency (CPU cycles) for translating ``addr``."""
        if self.l1.lookup(addr):
            return 0
        if self.l2.lookup(addr):
            return self.l2_latency
        return self.l2_latency + self.walk_latency

    def snapshot(self) -> HierarchyState:
        """Copy of both levels' translation state."""
        return (self.l1.snapshot(), self.l2.snapshot())

    def restore(self, state: HierarchyState) -> None:
        """Overwrite both levels' translation state with a snapshot's."""
        l1_state, l2_state = state
        self.l1.restore(l1_state)
        self.l2.restore(l2_state)

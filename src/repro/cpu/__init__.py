"""Trace-driven CPU model: cores, ROB, TLBs, and the trace protocol."""

from repro.cpu.core import Core, CoreStats
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.tlb import TLB, TLBHierarchy, TLBStats
from repro.cpu.trace import (
    LOAD,
    NONMEM,
    STORE,
    TraceRecord,
    mem_fraction,
    replay,
    store_fraction,
    take,
    validate_record,
)

__all__ = [
    "Core",
    "CoreStats",
    "LOAD",
    "NONMEM",
    "ReorderBuffer",
    "RobEntry",
    "STORE",
    "TLB",
    "TLBHierarchy",
    "TLBStats",
    "TraceRecord",
    "mem_fraction",
    "replay",
    "store_fraction",
    "take",
    "validate_record",
]

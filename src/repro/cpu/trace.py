"""Instruction-trace protocol.

A trace is an iterator of ``(kind, addr, pc)`` tuples:

* ``kind`` - :data:`NONMEM` (0), :data:`LOAD` (1) or :data:`STORE` (2),
* ``addr`` - byte address for memory instructions (0 for non-memory),
* ``pc``   - program counter of the instruction (drives SHiP signatures,
  the Berti-like prefetcher, and instruction-fetch modelling).

Workload generators (:mod:`repro.workloads`) produce *infinite* traces; the
core retires instructions until its budget is reached.  This module also
provides small helpers to materialise, replay, and validate traces for
tests and trace-file tooling.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.errors import TraceError

#: Instruction kinds.
NONMEM = 0
LOAD = 1
STORE = 2

TraceRecord = Tuple[int, int, int]


def validate_record(rec: TraceRecord) -> TraceRecord:
    """Check one record's shape; raises :class:`TraceError` if malformed."""
    if len(rec) != 3:
        raise TraceError(f"trace record must have 3 fields, got {rec!r}")
    kind, addr, pc = rec
    if kind not in (NONMEM, LOAD, STORE):
        raise TraceError(f"bad instruction kind {kind!r}")
    if addr < 0 or pc < 0:
        raise TraceError(f"negative address/pc in record {rec!r}")
    if kind != NONMEM and addr == 0:
        raise TraceError("memory instruction with null address")
    return rec


def take(trace: Iterator[TraceRecord], n: int) -> List[TraceRecord]:
    """Materialise the next ``n`` records (testing/inspection helper)."""
    out: List[TraceRecord] = []
    for _ in range(n):
        try:
            out.append(next(trace))
        except StopIteration:
            break
    return out


def replay(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Loop a finite record list forever (simple trace-file playback)."""
    records = list(records)
    if not records:
        raise TraceError("cannot replay an empty trace")
    while True:
        yield from records


def mem_fraction(records: Iterable[TraceRecord]) -> float:
    """Fraction of records that touch memory (workload calibration aid)."""
    records = list(records)
    if not records:
        return 0.0
    mem = sum(1 for k, _, _ in records if k != NONMEM)
    return mem / len(records)


def store_fraction(records: Iterable[TraceRecord]) -> float:
    """Fraction of memory records that are stores."""
    records = [r for r in records if r[0] != NONMEM]
    if not records:
        return 0.0
    return sum(1 for k, _, _ in records if k == STORE) / len(records)

"""Trace-driven out-of-order core model.

The core consumes an infinite instruction trace and retires a configured
budget.  Fidelity targets the paper's needs: memory-level parallelism is
bounded by the ROB (512 entries) and the cache MSHRs, loads block retirement
until their data returns, and stores dirty cache lines that later percolate
to the LLC and DRAM as writebacks.

Event-efficiency: a core self-schedules ticks only while it can make
progress.  When the ROB head is an outstanding load and the ROB is full (or
the issue window is blocked), the core goes dormant and is woken by the
load-completion callback, so stall time costs no events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.clock import TICKS_PER_CPU_CYCLE
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.trace import LOAD, NONMEM, TraceRecord
from repro.dram.commands import LINE_BITS

#: Budget sentinel for quota-driven windows: never reached, so the core
#: runs until explicitly re-targeted (see :meth:`Core.begin_quota`).
_UNBOUNDED = 1 << 62


@dataclass
class CoreStats:
    """Retirement / traffic counters for one core."""

    retired: int = 0
    loads: int = 0
    stores: int = 0
    nonmem: int = 0
    start_tick: int = 0
    finish_tick: int = 0
    sleeps: int = 0
    #: CPU cycles issue stalled because the L1D MSHR pipeline backed up
    #: (admission queue non-empty; only a pipeline-regime L1D raises it).
    mshr_stall_cycles: int = 0

    @property
    def cycles(self) -> float:
        return (self.finish_tick - self.start_tick) / TICKS_PER_CPU_CYCLE

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles > 0 else 0.0


class Core:
    """One out-of-order core fed by a trace iterator."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        engine,
        l1d,
        l1i,
        dtlb,
        itlb,
        rob_size: int = 512,
        issue_width: int = 4,
        retire_width: int = 4,
        budget: int = 100_000,
        on_finish: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.engine = engine
        self.l1d = l1d
        if not hasattr(l1d, "stalled"):
            # Duck-type substitutes (test fakes, ideal memories) never
            # stall; give them the flag so the per-tick read stays a
            # plain attribute load.
            l1d.stalled = False
        self.l1i = l1i
        self.dtlb = dtlb
        self.itlb = itlb
        self.rob = ReorderBuffer(rob_size)
        self.issue_width = issue_width
        self.retire_width = retire_width
        self.budget = budget
        self.on_finish = on_finish
        self.stats = CoreStats()
        self.finished = False
        self._sleeping = False
        self._tick_scheduled = False
        self._last_fetch_line = -1
        #: Soft retirement quota (sampled intervals): the core keeps
        #: executing when it is reached - only the callback fires.
        self._quota: Optional[int] = None
        self._on_quota: Optional[Callable[["Core"], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.stats.start_tick = self.engine.now
        self._schedule_tick(self.engine.now)

    def reset_measurement(self, budget: int) -> None:
        """Begin a fresh measurement epoch (end of warmup)."""
        self.stats = CoreStats(start_tick=self.engine.now)
        self.budget = budget
        self.finished = False

    def begin_quota(self, quota: int,
                    on_quota: Callable[["Core"], None]) -> None:
        """Begin a soft measurement window without stopping the core.

        Counters reset and ``on_quota`` fires once ``quota`` more
        instructions have retired (``stats.finish_tick`` records the
        crossing) - but unlike the budget mechanism the core *keeps
        executing*, so memory contention from this core persists while
        slower cores complete their own windows.  That is what makes
        short sampled intervals faithful: stopping each core at its
        quota would hand the remaining cores an artificially idle
        memory system.  Retirement is clamped at the quota tick, so the
        snapshot taken by the callback holds exactly ``quota`` retired
        instructions.

        The core is (re)scheduled if it is not already live - sampled
        intervals chain without interruption, but the first interval
        after a functional warmup starts from an idle core.
        """
        self.stats = CoreStats(start_tick=self.engine.now)
        self.budget = _UNBOUNDED
        self.finished = False
        self._quota = quota
        self._on_quota = on_quota
        self._sleeping = False
        if not self._tick_scheduled:
            self._schedule_tick(self.engine.now)

    def pause(self) -> None:
        """Idle the core at a fast-forward boundary.

        Pending completion callbacks still land (they only mark ROB
        entries done), but the core schedules no further work until
        :meth:`begin_quota` or :meth:`reset_measurement`/:meth:`start`
        resume it.  Used by the sampled run loop so the event queue can
        drain before functional warming mutates cache state.
        """
        self.finished = True
        self._sleeping = False

    # ------------------------------------------------------------------
    # Functional warmup
    # ------------------------------------------------------------------

    def warm_up(self, budget: int) -> None:
        """Drive ``budget`` trace records through the warm state machines.

        The functional counterpart of the detailed warmup phase: every
        record updates the TLBs, the instruction-fetch line cursor, and
        the cache hierarchy's tag/replacement/prefetcher state through
        :meth:`~repro.cache.cache.Cache.warm_access` - with zero engine
        events (no ROB, no MSHRs, no DRAM timing).  One record counts as
        one warmed instruction, so exactly ``budget`` records are
        consumed; the trace iterator then continues seamlessly into the
        measurement phase.
        """
        trace_next = self.trace.__next__
        l1d_warm = self.l1d.warm_access
        l1i_warm = self.l1i.warm_access
        dtlb_translate = self.dtlb.translate
        itlb_translate = self.itlb.translate
        last_line = self._last_fetch_line
        for _ in range(budget):
            kind, addr, pc = trace_next()
            line = pc >> LINE_BITS
            if line != last_line:
                last_line = line
                itlb_translate(pc)
                l1i_warm(pc, False, pc)
            if kind == NONMEM:
                continue
            dtlb_translate(addr)
            l1d_warm(addr, kind != LOAD, pc)
        self._last_fetch_line = last_line

    def skip_trace(self, records: int) -> None:
        """Fast-forward the trace cursor (warm-state checkpoint restore)."""
        trace_next = self.trace.__next__
        for _ in range(records):
            trace_next()

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _schedule_tick(self, tick: int) -> None:
        if self._tick_scheduled or self.finished:
            return
        self._tick_scheduled = True
        self.engine.schedule(tick, self._tick)

    def _wake(self) -> None:
        if self._sleeping and not self.finished:
            self._sleeping = False
            self._schedule_tick(self.engine.now)

    # ------------------------------------------------------------------
    # The per-activation core step
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.finished:
            return
        # Invariant per-access state (config-derived widths, the ROB, the
        # trace cursor, the clock ratio) is hoisted into locals: this
        # method runs once per active CPU cycle per core.
        now = self.engine.now
        stats = self.stats
        rob = self.rob
        budget = self.budget
        cpu_cycle = TICKS_PER_CPU_CYCLE

        quota = self._quota
        cap = budget if quota is None or budget < quota else quota
        remaining = cap - stats.retired
        if remaining < self.retire_width:
            stats.retired += rob.retire_ready(now, remaining)
        else:
            stats.retired += rob.retire_ready(now, self.retire_width)
        if quota is not None and stats.retired >= quota:
            # Soft window boundary: record it and keep executing.
            stats.finish_tick = now
            self._quota = None
            on_quota, self._on_quota = self._on_quota, None
            on_quota(self)
        if stats.retired >= budget:
            self._finish(now)
            return

        if self.l1d.stalled:
            # The L1D's MSHR admission queue backed up into us: issue
            # stalls this cycle (retirement above still ran) and retries
            # next cycle.  Progress is guaranteed - a non-empty queue
            # implies a fill in flight.  Always False in the legacy
            # regime, so the default configuration's event schedule is
            # untouched.
            stats.mshr_stall_cycles += 1
            self._schedule_tick(now + cpu_cycle)
            return

        rob_entries = rob.entries
        rob_size = rob.size
        trace_next = self.trace.__next__
        push = rob_entries.append
        fetch = self._fetch
        issued = 0
        issue_width = self.issue_width
        while issued < issue_width and len(rob_entries) < rob_size:
            kind, addr, pc = trace_next()
            fetch(pc, now)
            if kind == NONMEM:
                push(RobEntry(now + cpu_cycle))
                stats.nonmem += 1
            elif kind == LOAD:
                entry = RobEntry(None, is_load=True)
                push(entry)
                stats.loads += 1
                self._issue_load(addr, pc, now, entry)
            else:
                # Stores retire immediately (post-retirement store buffer);
                # the write still traverses the hierarchy and dirties lines.
                push(RobEntry(now + cpu_cycle))
                stats.stores += 1
                self._issue_store(addr, pc, now)
            issued += 1

        self._plan_next(now)

    def _plan_next(self, now: int) -> None:
        if not self.rob.full:
            # Still issuing: out-of-order issue continues past a blocked
            # head until the ROB fills.
            self._schedule_tick(now + TICKS_PER_CPU_CYCLE)
            return
        head = self.rob.head
        if head is not None and head.done_tick is not None:
            self._schedule_tick(
                max(head.done_tick, now + TICKS_PER_CPU_CYCLE)
            )
        else:
            # ROB full behind an outstanding load; sleep until a
            # completion callback wakes us.
            self._sleeping = True
            self.stats.sleeps += 1

    def _finish(self, now: int) -> None:
        self.finished = True
        self.stats.finish_tick = now
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------
    # Memory interfaces
    # ------------------------------------------------------------------

    def _issue_load(self, addr: int, pc: int, now: int,
                    entry: RobEntry) -> None:
        delay = self.dtlb.translate(addr) * TICKS_PER_CPU_CYCLE

        def done(t: int) -> None:
            entry.done_tick = t
            self._wake()

        def send() -> None:
            self.l1d.access(addr, False, pc, self.engine.now, done,
                            core_id=self.core_id)

        if delay:
            self.engine.schedule(now + delay, send)
        else:
            send()

    def _issue_store(self, addr: int, pc: int, now: int) -> None:
        delay = self.dtlb.translate(addr) * TICKS_PER_CPU_CYCLE

        def send() -> None:
            self.l1d.access(addr, True, pc, self.engine.now, None,
                            core_id=self.core_id)

        if delay:
            self.engine.schedule(now + delay, send)
        else:
            send()

    def _fetch(self, pc: int, now: int) -> None:
        """Instruction-side traffic: one L1I access per new fetch line."""
        line = pc >> LINE_BITS
        if line == self._last_fetch_line:
            return
        self._last_fetch_line = line
        self.itlb.translate(pc)
        self.l1i.access(pc, False, pc, now, None, core_id=self.core_id)

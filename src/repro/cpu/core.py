"""Trace-driven out-of-order core model.

The core consumes an infinite instruction trace and retires a configured
budget.  Fidelity targets the paper's needs: memory-level parallelism is
bounded by the ROB (512 entries) and the cache MSHRs, loads block retirement
until their data returns, and stores dirty cache lines that later percolate
to the LLC and DRAM as writebacks.

Event-efficiency: a core self-schedules ticks only while it can make
progress.  When the ROB head is an outstanding load and the ROB is full (or
the issue window is blocked), the core goes dormant and is woken by the
load-completion callback, so stall time costs no events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.clock import TICKS_PER_CPU_CYCLE
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.trace import LOAD, NONMEM, STORE, TraceRecord
from repro.dram.commands import LINE_SIZE


@dataclass
class CoreStats:
    """Retirement / traffic counters for one core."""

    retired: int = 0
    loads: int = 0
    stores: int = 0
    nonmem: int = 0
    start_tick: int = 0
    finish_tick: int = 0
    sleeps: int = 0

    @property
    def cycles(self) -> float:
        return (self.finish_tick - self.start_tick) / TICKS_PER_CPU_CYCLE

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles > 0 else 0.0


class Core:
    """One out-of-order core fed by a trace iterator."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        engine,
        l1d,
        l1i,
        dtlb,
        itlb,
        rob_size: int = 512,
        issue_width: int = 4,
        retire_width: int = 4,
        budget: int = 100_000,
        on_finish: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.engine = engine
        self.l1d = l1d
        self.l1i = l1i
        self.dtlb = dtlb
        self.itlb = itlb
        self.rob = ReorderBuffer(rob_size)
        self.issue_width = issue_width
        self.retire_width = retire_width
        self.budget = budget
        self.on_finish = on_finish
        self.stats = CoreStats()
        self.finished = False
        self._sleeping = False
        self._tick_scheduled = False
        self._last_fetch_line = -1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.stats.start_tick = self.engine.now
        self._schedule_tick(self.engine.now)

    def reset_measurement(self, budget: int) -> None:
        """Begin a fresh measurement epoch (end of warmup)."""
        self.stats = CoreStats(start_tick=self.engine.now)
        self.budget = budget
        self.finished = False

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _schedule_tick(self, tick: int) -> None:
        if self._tick_scheduled or self.finished:
            return
        self._tick_scheduled = True
        self.engine.schedule(tick, self._tick)

    def _wake(self) -> None:
        if self._sleeping and not self.finished:
            self._sleeping = False
            self._schedule_tick(self.engine.now)

    # ------------------------------------------------------------------
    # The per-activation core step
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.finished:
            return
        now = self.engine.now

        remaining = self.budget - self.stats.retired
        self.stats.retired += self.rob.retire_ready(
            now, min(self.retire_width, remaining)
        )
        if self.stats.retired >= self.budget:
            self._finish(now)
            return

        issued = 0
        while issued < self.issue_width and not self.rob.full:
            kind, addr, pc = next(self.trace)
            self._fetch(pc, now)
            if kind == NONMEM:
                self.rob.push(RobEntry(now + TICKS_PER_CPU_CYCLE))
                self.stats.nonmem += 1
            elif kind == LOAD:
                entry = RobEntry(None, is_load=True)
                self.rob.push(entry)
                self.stats.loads += 1
                self._issue_load(addr, pc, now, entry)
            else:
                # Stores retire immediately (post-retirement store buffer);
                # the write still traverses the hierarchy and dirties lines.
                self.rob.push(RobEntry(now + TICKS_PER_CPU_CYCLE))
                self.stats.stores += 1
                self._issue_store(addr, pc, now)
            issued += 1

        self._plan_next(now)

    def _plan_next(self, now: int) -> None:
        if not self.rob.full:
            # Still issuing: out-of-order issue continues past a blocked
            # head until the ROB fills.
            self._schedule_tick(now + TICKS_PER_CPU_CYCLE)
            return
        head = self.rob.head
        if head is not None and head.done_tick is not None:
            self._schedule_tick(
                max(head.done_tick, now + TICKS_PER_CPU_CYCLE)
            )
        else:
            # ROB full behind an outstanding load; sleep until a
            # completion callback wakes us.
            self._sleeping = True
            self.stats.sleeps += 1

    def _finish(self, now: int) -> None:
        self.finished = True
        self.stats.finish_tick = now
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------
    # Memory interfaces
    # ------------------------------------------------------------------

    def _issue_load(self, addr: int, pc: int, now: int,
                    entry: RobEntry) -> None:
        delay = self.dtlb.translate(addr) * TICKS_PER_CPU_CYCLE

        def done(t: int) -> None:
            entry.done_tick = t
            self._wake()

        def send() -> None:
            self.l1d.access(addr, False, pc, self.engine.now, done,
                            core_id=self.core_id)

        if delay:
            self.engine.schedule(now + delay, send)
        else:
            send()

    def _issue_store(self, addr: int, pc: int, now: int) -> None:
        delay = self.dtlb.translate(addr) * TICKS_PER_CPU_CYCLE

        def send() -> None:
            self.l1d.access(addr, True, pc, self.engine.now, None,
                            core_id=self.core_id)

        if delay:
            self.engine.schedule(now + delay, send)
        else:
            send()

    def _fetch(self, pc: int, now: int) -> None:
        """Instruction-side traffic: one L1I access per new fetch line."""
        line = pc // LINE_SIZE
        if line == self._last_fetch_line:
            return
        self._last_fetch_line = line
        self.itlb.translate(pc)
        self.l1i.access(pc, False, pc, now, None, core_id=self.core_id)

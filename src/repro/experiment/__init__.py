"""Declarative experiment layer: spec -> plan -> execution -> results.

The grid every paper artifact needs - workloads x configs x policies x
seeds, with optional extra sweep axes - is declared once as an
:class:`ExperimentSpec`, expanded into a deduplicated :class:`RunPlan`,
executed by a :class:`Session` (serial or ``parallel=N`` processes, with
a persistent content-hashed result cache), and queried as a
:class:`ResultSet`::

    from repro import ExperimentSpec, Session, small_8core

    spec = ExperimentSpec(workloads=["lbm", "copy"],
                          configs=small_8core(),
                          policies=["baseline", "bard-h"])
    rs = Session(parallel=4).run(spec)
    print(rs.speedup_vs("policy").filter(policy="bard-h")
            .gmean_speedup_pct())
"""

from repro.experiment.cache import CACHE_DIR_ENV, ResultCache, \
    default_cache_dir
from repro.experiment.execute import KeyedSpec, iter_group, simulate_group
from repro.experiment.resultset import DEFAULT_METRICS, Observation, \
    ResultSet, metric_names, valid_metric
from repro.experiment.serialize import config_from_dict, config_to_dict, \
    experiment_from_dict, experiment_to_dict, result_from_dict, \
    result_to_dict, spec_from_dict
from repro.experiment.session import Session, SessionInterrupted, \
    SessionStats, simulate
from repro.experiment.spec import AXIS_MODIFIERS, BASELINE, INHERIT, Axis, \
    ExperimentSpec, GridPoint, RunPlan, RunSpec, make_axis, warm_group_key

__all__ = [
    "AXIS_MODIFIERS",
    "Axis",
    "BASELINE",
    "CACHE_DIR_ENV",
    "DEFAULT_METRICS",
    "ExperimentSpec",
    "GridPoint",
    "INHERIT",
    "KeyedSpec",
    "Observation",
    "ResultCache",
    "ResultSet",
    "RunPlan",
    "RunSpec",
    "Session",
    "SessionInterrupted",
    "SessionStats",
    "config_from_dict",
    "config_to_dict",
    "default_cache_dir",
    "experiment_from_dict",
    "experiment_to_dict",
    "iter_group",
    "make_axis",
    "metric_names",
    "result_from_dict",
    "result_to_dict",
    "simulate",
    "simulate_group",
    "spec_from_dict",
    "valid_metric",
    "warm_group_key",
]

"""Declarative experiment layer: spec -> plan -> execution -> results.

The grid every paper artifact needs - workloads x configs x policies x
seeds, with optional extra sweep axes - is declared once as an
:class:`ExperimentSpec`, expanded into a deduplicated :class:`RunPlan`,
executed by a :class:`Session` (serial or ``parallel=N`` processes, with
a persistent content-hashed result cache), and queried as a
:class:`ResultSet`::

    from repro import ExperimentSpec, Session, small_8core

    spec = ExperimentSpec(workloads=["lbm", "copy"],
                          configs=small_8core(),
                          policies=["baseline", "bard-h"])
    rs = Session(parallel=4).run(spec)
    print(rs.speedup_vs("policy").filter(policy="bard-h")
            .gmean_speedup_pct())
"""

from repro.experiment.cache import CACHE_DIR_ENV, ResultCache, \
    default_cache_dir
from repro.experiment.resultset import DEFAULT_METRICS, Observation, \
    ResultSet, metric_names, valid_metric
from repro.experiment.serialize import result_from_dict, result_to_dict
from repro.experiment.session import Session, SessionStats, simulate
from repro.experiment.spec import AXIS_MODIFIERS, BASELINE, INHERIT, Axis, \
    ExperimentSpec, GridPoint, RunPlan, RunSpec, make_axis, warm_group_key

__all__ = [
    "AXIS_MODIFIERS",
    "Axis",
    "BASELINE",
    "CACHE_DIR_ENV",
    "DEFAULT_METRICS",
    "ExperimentSpec",
    "GridPoint",
    "INHERIT",
    "Observation",
    "ResultCache",
    "ResultSet",
    "RunPlan",
    "RunSpec",
    "Session",
    "SessionStats",
    "default_cache_dir",
    "make_axis",
    "metric_names",
    "result_from_dict",
    "result_to_dict",
    "simulate",
    "valid_metric",
    "warm_group_key",
]

"""JSON (de)serialisation of :class:`~repro.sim.results.RunResult`.

Every stats object a run carries is a plain dataclass of counters, so
``dataclasses.asdict`` gives the wire form; reconstruction rebuilds the
nested dataclasses explicitly.  A format version guards cached files
against schema drift - an unknown version is treated as a cache miss, not
an error.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.cache.cache import CacheStats
from repro.cache.writeback.base import WritebackPolicyStats
from repro.core.bard import BardAccuracy
from repro.dram.channel import ChannelStats
from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.sampling.stats import MetricEstimate, SamplingSummary
from repro.sim.results import RunResult

#: Bump when the RunResult schema changes incompatibly.
RESULT_FORMAT = 2


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Pure-JSON form of a run result."""
    return {"format": RESULT_FORMAT,
            "result": dataclasses.asdict(result)}


def result_from_dict(payload: Dict[str, Any]) -> Optional[RunResult]:
    """Rebuild a result; ``None`` if the payload is from another format."""
    if not isinstance(payload, dict) \
            or payload.get("format") != RESULT_FORMAT:
        return None
    data = dict(payload["result"])
    data["llc"] = CacheStats(**data["llc"])
    data["dram"] = _subchannel(data["dram"])
    data["channels"] = [ChannelStats(**c) for c in data["channels"]]
    if data.get("wb_stats") is not None:
        data["wb_stats"] = WritebackPolicyStats(**data["wb_stats"])
    if data.get("bard_accuracy") is not None:
        data["bard_accuracy"] = BardAccuracy(**data["bard_accuracy"])
    if data.get("sampling") is not None:
        summary = dict(data["sampling"])
        summary["metrics"] = {
            name: MetricEstimate(**est)
            for name, est in summary["metrics"].items()
        }
        data["sampling"] = SamplingSummary(**summary)
    return RunResult(**data)


def _subchannel(data: Dict[str, Any]) -> SubChannelStats:
    episodes: List[DrainEpisode] = [
        DrainEpisode(**e) for e in data.pop("episodes", [])
    ]
    return SubChannelStats(episodes=episodes, **data)

"""JSON (de)serialisation of the experiment layer's wire objects.

Results (:class:`~repro.sim.results.RunResult`), configurations
(:class:`~repro.config.system.SystemConfig`), run specs
(:class:`~repro.experiment.spec.RunSpec`), and whole experiment grids
(:class:`~repro.experiment.spec.ExperimentSpec`) all round-trip through
plain JSON dicts here.  Every stats/config object is a plain dataclass,
so ``dataclasses.asdict`` gives the wire form; reconstruction rebuilds
the nested dataclasses explicitly.  A format version guards cached files
against schema drift - an unknown version is treated as a cache miss, not
an error.

These round-trips are what lets the experiment service
(:mod:`repro.service`) persist jobs to disk and accept grids over HTTP:
a spec serialised by one process reconstructs - with an identical
content hash - in another.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional

from repro.cache.cache import CacheStats
from repro.cache.writeback.base import WritebackPolicyStats
from repro.config.system import CacheConfig, DramConfig, SystemConfig
from repro.core.bard import BardAccuracy
from repro.dram.channel import ChannelStats
from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.errors import ConfigError
from repro.sampling.config import SamplingConfig
from repro.sampling.stats import MetricEstimate, SamplingSummary
from repro.sim.results import RunResult

#: Bump when the RunResult schema changes incompatibly.
#: v3: CacheStats gained the MSHR-pipeline counters (including the
#: list-valued occupancy histogram) and RunResult ``mshr_stall_cycles``.
RESULT_FORMAT = 3

#: Bump when the ExperimentSpec wire schema changes incompatibly.
EXPERIMENT_FORMAT = 1


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Pure-JSON form of a run result."""
    return {"format": RESULT_FORMAT,
            "result": dataclasses.asdict(result)}


def result_from_dict(payload: Dict[str, Any]) -> Optional[RunResult]:
    """Rebuild a result; ``None`` if the payload is from another format."""
    if not isinstance(payload, dict) \
            or payload.get("format") != RESULT_FORMAT:
        return None
    data = dict(payload["result"])
    data["llc"] = CacheStats(**data["llc"])
    data["dram"] = _subchannel(data["dram"])
    data["channels"] = [ChannelStats(**c) for c in data["channels"]]
    if data.get("wb_stats") is not None:
        data["wb_stats"] = WritebackPolicyStats(**data["wb_stats"])
    if data.get("bard_accuracy") is not None:
        data["bard_accuracy"] = BardAccuracy(**data["bard_accuracy"])
    if data.get("sampling") is not None:
        summary = dict(data["sampling"])
        summary["metrics"] = {
            name: MetricEstimate(**est)
            for name, est in summary["metrics"].items()
        }
        data["sampling"] = SamplingSummary(**summary)
    return RunResult(**data)


def _subchannel(data: Dict[str, Any]) -> SubChannelStats:
    episodes: List[DrainEpisode] = [
        DrainEpisode(**e) for e in data.pop("episodes", [])
    ]
    return SubChannelStats(episodes=episodes, **data)


# ----------------------------------------------------------------------
# Configs, run specs, and experiment grids
# ----------------------------------------------------------------------

def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Pure-JSON form of a system configuration."""
    return dataclasses.asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` form.

    The round-trip is exact: rebuilding and re-serialising yields the
    same canonical JSON, so content hashes computed from a reconstructed
    config match the originals - the invariant the result cache and the
    experiment service's job queue both rely on.
    """
    try:
        fields = dict(data)
        for level in ("l1i", "l1d", "l2", "llc"):
            fields[level] = CacheConfig(**fields[level])
        fields["dram"] = DramConfig(**fields["dram"])
        if fields.get("sampling") is not None:
            fields["sampling"] = SamplingConfig(**fields["sampling"])
        return SystemConfig(**fields)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed system config payload: {exc}")


def spec_from_dict(data: Mapping[str, Any]) -> "RunSpec":
    """Rebuild a :class:`RunSpec` from its :meth:`~RunSpec.describe` form."""
    from repro.experiment.spec import RunSpec

    try:
        return RunSpec(workload=data["workload"],
                       config=config_from_dict(data["config"]),
                       seed=int(data.get("seed", 7)),
                       label=str(data.get("label", "")))
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed run spec payload: {exc}")


def experiment_to_dict(spec: "ExperimentSpec") -> Dict[str, Any]:
    """Wire form of a whole experiment grid (the service submit body)."""
    from repro.experiment.spec import ExperimentSpec  # noqa: F401

    return {
        "format": EXPERIMENT_FORMAT,
        "name": spec.name,
        "workloads": list(spec.workloads),
        "configs": [[name, config_to_dict(cfg)]
                    for name, cfg in spec.configs],
        "policies": list(spec.policies)
                    if spec.policies is not None else None,
        "seeds": list(spec.seeds),
        "axes": [{"name": a.name, "setting": a.setting,
                  "values": list(a.values)} for a in spec.axes],
    }


def experiment_from_dict(data: Mapping[str, Any]) -> "ExperimentSpec":
    """Rebuild an :class:`ExperimentSpec` from :func:`experiment_to_dict`.

    Raises :class:`~repro.errors.ConfigError` on malformed payloads -
    the service maps that to an HTTP 400, keeping client typos from
    looking like server bugs.
    """
    from repro.experiment.spec import Axis, ExperimentSpec, INHERIT

    if not isinstance(data, Mapping):
        raise ConfigError("experiment payload must be a JSON object")
    if data.get("format", EXPERIMENT_FORMAT) != EXPERIMENT_FORMAT:
        raise ConfigError(
            f"unsupported experiment format {data.get('format')!r} "
            f"(this service speaks format {EXPERIMENT_FORMAT})")
    try:
        configs = [(str(name), config_from_dict(cfg))
                   for name, cfg in data["configs"]]
        policies = data.get("policies", None)
        axes = [Axis(name=str(a["name"]), setting=str(a["setting"]),
                     values=tuple(str(v) for v in a["values"]))
                for a in data.get("axes", ())]
        return ExperimentSpec(
            workloads=[str(w) for w in data["workloads"]],
            configs=configs,
            policies=INHERIT if policies is None
            else [str(p) for p in policies],
            seeds=[int(s) for s in data.get("seeds", (7,))],
            axes=axes,
            name=str(data.get("name", "experiment")),
        )
    except ConfigError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed experiment payload: {exc}")

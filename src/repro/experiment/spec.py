"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a *grid* of simulation runs - workloads x
config variants x writeback policies x seeds, optionally extended with
extra sweep axes (write-queue size, device width, ...).  ``expand()``
turns the grid into a :class:`RunPlan`: every grid point resolves to a
concrete, content-hashed :class:`RunSpec`, and identical runs reached
through different grid coordinates (e.g. the baseline policy repeated
under two axes) are deduplicated so each unique simulation executes once.

The content hash is *stable*: it is derived from the canonical JSON form
of (config, workload, seed) plus a format version, so the same spec hashes
identically across processes and sessions - the key for the on-disk
result cache in :mod:`repro.experiment.cache`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple, Union

from repro.config.system import SystemConfig
from repro.errors import ConfigError

#: Bump when simulator semantics change enough to invalidate cached runs.
#: v2: SystemConfig gained the ``sampling`` axis (sampled and full runs
#: of the same machine/trace hash differently by construction).
#: v3: CacheConfig gained the MSHR-pipeline knobs (``mshr_targets``,
#: ``hit_under_miss``, ``mshr_pipeline``) and the warm signature stopped
#: hashing MSHR timing fields.
RUN_KEY_VERSION = 3

#: Canonical label for the no-policy (LRU writeback) baseline.
BASELINE = "baseline"

#: Sentinel: the policy dimension inherits each config's own
#: ``llc_writeback`` instead of overriding it.
INHERIT = "<inherit>"


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def policy_arg(name: Optional[str]) -> Optional[str]:
    """Map the user-facing policy label to the config value."""
    return None if name in (None, BASELINE) else name


def policy_label(name: Optional[str]) -> str:
    """Map a config policy value to its user-facing label."""
    return name if name else BASELINE


# ----------------------------------------------------------------------
# Run specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One concrete simulation: a config, a workload, a seed."""

    workload: str
    config: SystemConfig
    seed: int = 7
    label: str = ""

    def key(self) -> str:
        """Stable content hash identifying this simulation.

        The label is presentation-only and deliberately excluded: two runs
        that simulate the same machine on the same trace share a key.
        Memoised - config serialisation is the expensive part and the key
        is consulted once per grid point per plan/export.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            payload = {
                "version": RUN_KEY_VERSION,
                "workload": self.workload,
                "seed": self.seed,
                "config": dataclasses.asdict(self.config),
            }
            digest = hashlib.sha256(_canonical(payload).encode()) \
                .hexdigest()
            cached = digest[:24]
            object.__setattr__(self, "_key", cached)
        return cached

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable description (stored alongside cached results)."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "label": self.label,
            "config": dataclasses.asdict(self.config),
        }

    def refine(self, intervals: Optional[int] = None,
               full: bool = False) -> "RunSpec":
        """Re-plan this run's measurement at a higher fidelity.

        ``refine(intervals=n)`` returns a copy measuring ``n`` sampled
        intervals (building on the config's own sampling plan, or the
        defaults for a full-detail spec); ``refine(full=True)`` escalates
        to an unsampled full-detail measurement.  Workload, seed, label,
        and every warmup-relevant knob are preserved - and sampling is
        excluded from :func:`~repro.sim.warmstate.warm_config_signature`
        - so the refined run stays in the original's warm-checkpoint
        group and reuses its snapshot instead of re-warming.

        The returned spec has a different content hash (sampling is part
        of the run key), so each refinement round is cached, deduplicated,
        and queued as its own run.
        """
        from repro.sampling.config import SamplingConfig

        if full:
            if intervals is not None:
                raise ConfigError(
                    "refine(full=True) does not take an interval count")
            return dataclasses.replace(
                self, config=self.config.with_sampling(None))
        if intervals is None or intervals < 1:
            raise ConfigError(
                f"refine() needs intervals >= 1 or full=True "
                f"(got intervals={intervals!r})")
        base = self.config.sampling if self.config.sampling is not None \
            else SamplingConfig()
        config = self.config
        if config.warmup_mode != "functional":
            # The sampler requires functional warmup; the spec keeps its
            # warmup budget so only the warm-state *mode* changes.
            config = config.with_warmup_mode("functional")
        return dataclasses.replace(
            self, config=config.with_sampling(base.fixed(intervals)))


def warm_group_key(spec: RunSpec) -> Optional[str]:
    """Checkpoint-sharing key, or None when this run cannot share warmup.

    Runs with equal keys warm identical state - same workload, seed, and
    warmup-relevant configuration (core count, cache geometries,
    replacement/prefetcher settings, warmup budget) - so a
    :class:`~repro.experiment.Session` executes their warmup once and
    forks the snapshot.  Only functional-mode warmups are shareable:
    detailed warm state includes in-flight timing that cannot be
    checkpointed.  Policy/writeback and DRAM variants deliberately hash
    equal, which is what turns an N-policy grid's warmup cost from N
    into 1.
    """
    from repro.sim.warmstate import warm_config_signature

    config = spec.config
    if config.warmup_mode != "functional" or \
            config.warmup_instructions <= 0:
        return None
    payload = {
        "version": RUN_KEY_VERSION,
        "workload": spec.workload,
        "seed": spec.seed,
        "warm_config": warm_config_signature(config),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# Sweep axes
# ----------------------------------------------------------------------

#: Declarative config modifiers addressable by name.  Each takes the base
#: config and the axis value (always given as a string label) and returns
#: the modified config - keeping axes picklable, hashable, and printable.
AXIS_MODIFIERS: Dict[str, Callable[[SystemConfig, str], SystemConfig]] = {
    "policy": lambda cfg, v: cfg.with_writeback(policy_arg(v)),
    "wq": lambda cfg, v: cfg.with_wq(int(v)),
    "device": lambda cfg, v: cfg.with_device(v),
    "replacement": lambda cfg, v: cfg.with_replacement(v),
    "drain": lambda cfg, v: cfg.with_drain_policy(v),
    # MSHR-count sweep: enables the MSHR pipeline and scales the whole
    # hierarchy's MSHR files off one L1D count (L2 2x, LLC 8x).
    "mshr": lambda cfg, v: cfg.with_mshrs(int(v)),
    # Flag axes SET the state (so 'off' clears a flag the base config
    # enabled); apply-only-if-truthy would silently collapse grid points.
    "refresh": lambda cfg, v: dataclasses.replace(
        cfg, dram=dataclasses.replace(cfg.dram, refresh=_truthy(v))),
    "pbpl": lambda cfg, v: dataclasses.replace(
        cfg, dram=dataclasses.replace(cfg.dram, pbpl=_truthy(v))),
    # Sampled-vs-full comparisons: 'off' measures the whole epoch, an
    # integer N samples N intervals (inheriting the config's sampling
    # plan for the other knobs, or defaults).  Enabling sampling forces
    # functional warmup - required by the sampler - so pass
    # ``--warmup-mode functional`` to keep the 'off' points comparable.
    "sample": lambda cfg, v: _apply_sample_axis(cfg, v),
}


def _apply_sample_axis(cfg: SystemConfig, value: str) -> SystemConfig:
    from repro.sampling.config import SamplingConfig

    if str(value).lower() in ("off", "none", "0", "full"):
        return cfg.with_sampling(None)
    base = cfg.sampling if cfg.sampling is not None else SamplingConfig()
    if cfg.warmup_mode != "functional":
        cfg = cfg.with_warmup_mode("functional")
    return cfg.with_sampling(base.with_intervals(int(value)))


def _truthy(value: str) -> bool:
    return str(value).lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class Axis:
    """One extra sweep dimension: a named set of config transformations.

    ``setting`` selects a modifier from :data:`AXIS_MODIFIERS`; ``values``
    are its string labels (e.g. ``Axis("wq", "wq", ("32", "48", "64"))``).
    ``name`` is the coordinate name observations carry in the ResultSet.
    """

    name: str
    setting: str
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.setting not in AXIS_MODIFIERS:
            raise ConfigError(
                f"unknown axis setting {self.setting!r}; choose from "
                f"{sorted(AXIS_MODIFIERS)}")
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values")

    def apply(self, config: SystemConfig, value: str) -> SystemConfig:
        """``config`` with this axis set to ``value`` (a new config)."""
        return AXIS_MODIFIERS[self.setting](config, value)


def make_axis(name: str,
              values: Sequence[Union[str, int, bool]]) -> Axis:
    """Build an :class:`Axis` whose setting shares its name (CLI form)."""
    return Axis(name, name, tuple(str(v) for v in values))


# ----------------------------------------------------------------------
# The experiment grid
# ----------------------------------------------------------------------

ConfigsArg = Union[SystemConfig, Mapping[str, SystemConfig],
                   Sequence[Tuple[str, SystemConfig]]]


class ExperimentSpec:
    """A declarative grid of runs with named axes.

    Parameters accept friendly forms (a single config, a dict of named
    variants, scalar workloads/seeds) and are normalised to tuples so the
    spec itself is hashable and order-stable.
    """

    def __init__(
        self,
        workloads: Union[str, Iterable[str]],
        configs: ConfigsArg,
        policies: Union[None, str, Iterable[Optional[str]]] = INHERIT,
        seeds: Union[int, Iterable[int]] = (7,),
        axes: Iterable[Axis] = (),
        name: str = "experiment",
    ) -> None:
        self.name = name
        self.workloads: Tuple[str, ...] = (
            (workloads,) if isinstance(workloads, str)
            else tuple(workloads))
        if isinstance(configs, SystemConfig):
            self.configs: Tuple[Tuple[str, SystemConfig], ...] = (
                ("default", configs),)
        elif isinstance(configs, Mapping):
            self.configs = tuple(configs.items())
        else:
            self.configs = tuple(configs)
        if policies == INHERIT:
            # Each config variant keeps its own llc_writeback setting.
            self.policies: Optional[Tuple[str, ...]] = None
        else:
            if policies is None or isinstance(policies, str):
                policies = (policies,)
            self.policies = _dedupe(policy_label(p) for p in policies)
            if not self.policies:
                raise ConfigError("experiment needs at least one policy")
        self.seeds: Tuple[int, ...] = (
            (seeds,) if isinstance(seeds, int) else tuple(seeds))
        self.axes: Tuple[Axis, ...] = tuple(axes)
        if not self.workloads:
            raise ConfigError("experiment needs at least one workload")
        if not self.configs:
            raise ConfigError("experiment needs at least one config")
        if not self.seeds:
            raise ConfigError("experiment needs at least one seed")
        names = (["config", "workload", "policy", "seed"]
                 + [a.name for a in self.axes])
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate axis names in {names}")

    # -- identity ------------------------------------------------------

    def hash(self) -> str:
        """Stable content hash of the whole grid."""
        payload = {
            "version": RUN_KEY_VERSION,
            "workloads": list(self.workloads),
            "configs": [(n, dataclasses.asdict(c)) for n, c in self.configs],
            "policies": list(self.policies)
                        if self.policies is not None else INHERIT,
            "seeds": list(self.seeds),
            "axes": [dataclasses.asdict(a) for a in self.axes],
        }
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:24]

    # -- expansion -----------------------------------------------------

    def expand(self) -> "RunPlan":
        """Expand the grid into a deduplicated :class:`RunPlan`."""
        points: List[GridPoint] = []
        axis_values = [[(axis, v) for v in axis.values]
                       for axis in self.axes]
        for (cname, base), workload, seed in product(
                self.configs, self.workloads, self.seeds):
            # INHERIT keeps the config's own policy; an explicit policy
            # list overrides it per grid point.
            policies = self.policies if self.policies is not None \
                else (policy_label(base.llc_writeback),)
            for policy, combo in product(policies, product(*axis_values)):
                cfg = base if self.policies is None \
                    else base.with_writeback(policy_arg(policy))
                coords: Dict[str, object] = {
                    "config": cname,
                    "workload": workload,
                    "policy": policy,
                    "seed": seed,
                }
                final = cfg
                for axis, value in combo:
                    coords[axis.name] = value
                    final = axis.apply(final, value)
                # Axis modifiers may override the policy coordinate (a
                # "policy" axis); keep the coordinate truthful.
                if any(axis.setting == "policy" for axis, _ in combo):
                    coords["policy"] = policy_label(final.llc_writeback)
                label = _point_label(coords)
                points.append(GridPoint(
                    coords=coords,
                    spec=RunSpec(workload=workload, config=final,
                                 seed=seed, label=label)))
        return RunPlan(self, points)


def _dedupe(items: Iterable[str]) -> Tuple[str, ...]:
    seen: Dict[str, None] = {}
    for item in items:
        seen.setdefault(item, None)
    return tuple(seen)


def _point_label(coords: Mapping[str, object]) -> str:
    parts = [str(coords["workload"]), str(coords["policy"])]
    parts += [f"{k}={v}" for k, v in coords.items()
              if k not in ("workload", "policy", "config", "seed")]
    return "/".join(parts)


@dataclass(frozen=True)
class GridPoint:
    """One coordinate of the experiment grid and its resolved run."""

    coords: Mapping[str, object]
    spec: RunSpec


class RunPlan:
    """The expanded grid: ordered points plus deduplicated unique runs."""

    def __init__(self, spec: Optional[ExperimentSpec],
                 points: Sequence[GridPoint]) -> None:
        self.spec = spec
        self.points: Tuple[GridPoint, ...] = tuple(points)
        runs: Dict[str, RunSpec] = {}
        for point in self.points:
            runs.setdefault(point.spec.key(), point.spec)
        #: Unique simulations, first-seen order.
        self.runs: Dict[str, RunSpec] = runs

    def __len__(self) -> int:
        return len(self.points)

    @property
    def unique_count(self) -> int:
        """Number of distinct simulations the plan requires."""
        return len(self.runs)

    @property
    def duplicate_count(self) -> int:
        """Grid points satisfied by another point's simulation."""
        return len(self.points) - len(self.runs)

"""Persistent on-disk result cache.

Results live as one JSON file per unique run, named by the run's content
hash, under ``~/.cache/repro`` (overridable via ``REPRO_CACHE_DIR`` or a
caller-supplied directory).  Files are written atomically; unreadable,
corrupt, or stale-format files simply read as misses.

The cache is safe for concurrent writers.  Many Sessions and service
worker shards routinely share one cache directory, so each publish
takes an advisory ``flock`` on a sidecar lock file (where the platform
provides one) and retries transient ``OSError`` failures with backoff
before degrading to a non-persistent cache.  The content-addressed
naming means a lost race is still benign - both writers hold an
identical payload for the key - but the lock keeps tmp-file churn and
non-atomic filesystems (NFS, some overlayfs) from dropping entries.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

try:  # POSIX only; Windows degrades to atomic-rename-with-retry.
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None  # type: ignore[assignment]

from repro.experiment.serialize import result_from_dict, result_to_dict
from repro.experiment.spec import RunSpec
from repro.sim.results import RunResult

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Publish attempts before a put degrades to non-persistent.
PUT_ATTEMPTS = 3

#: Backoff between publish attempts, doubled each retry.
_RETRY_DELAY = 0.01


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Content-addressed store of finished runs."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory \
            else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for a run key, or ``None`` on miss."""
        path = self._path(key)
        # Any malformed file - unreadable, non-JSON, wrong shape, or
        # drifted inner fields - reads as a miss and gets re-simulated.
        try:
            payload = json.loads(path.read_text())
            return result_from_dict(payload.get("payload", {}))
        except (OSError, ValueError, AttributeError, TypeError, KeyError):
            return None

    @contextlib.contextmanager
    def _publish_lock(self) -> Iterator[None]:
        """Advisory exclusive lock over publishes into this directory.

        Serialises the tmp-write/rename pair across processes so
        concurrent workers cannot interleave on filesystems where
        ``os.replace`` is not atomic.  Platforms without ``fcntl`` (and
        lock-file I/O errors) fall back to the bare atomic rename.
        """
        if fcntl is None:
            yield
            return
        try:
            handle = open(self.directory / ".lock", "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        """Store a finished run; failures degrade to a non-persistent cache.

        A full disk or unwritable directory must never lose the result the
        caller just spent a simulation computing.  Transient failures
        (e.g. a concurrent writer recreating the directory, NFS rename
        races) are retried :data:`PUT_ATTEMPTS` times with backoff under
        the directory's publish lock before giving up.
        """
        body = json.dumps({
            "key": key,
            "spec": spec.describe(),
            "payload": result_to_dict(result),
        })
        for attempt in range(PUT_ATTEMPTS):
            tmp = None
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                with self._publish_lock():
                    fd, tmp = tempfile.mkstemp(dir=self.directory,
                                               suffix=".tmp")
                    with os.fdopen(fd, "w") as handle:
                        handle.write(body)
                    os.replace(tmp, self._path(key))
                return
            except OSError:
                if tmp is not None:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                if attempt + 1 < PUT_ATTEMPTS:
                    time.sleep(_RETRY_DELAY * (2 ** attempt))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

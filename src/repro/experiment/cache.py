"""Persistent on-disk result cache.

Results live as one JSON file per unique run, named by the run's content
hash, under ``~/.cache/repro`` (overridable via ``REPRO_CACHE_DIR`` or a
caller-supplied directory).  Files are written atomically; unreadable,
corrupt, or stale-format files simply read as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.experiment.serialize import result_from_dict, result_to_dict
from repro.experiment.spec import RunSpec
from repro.sim.results import RunResult

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Content-addressed store of finished runs."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory \
            else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for a run key, or ``None`` on miss."""
        path = self._path(key)
        # Any malformed file - unreadable, non-JSON, wrong shape, or
        # drifted inner fields - reads as a miss and gets re-simulated.
        try:
            payload = json.loads(path.read_text())
            return result_from_dict(payload.get("payload", {}))
        except (OSError, ValueError, AttributeError, TypeError, KeyError):
            return None

    def put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        """Store a finished run; failures degrade to a non-persistent cache.

        A full disk or unwritable directory must never lose the result the
        caller just spent a simulation computing.
        """
        body = json.dumps({
            "key": key,
            "spec": spec.describe(),
            "payload": result_to_dict(result),
        })
        tmp = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent workers may race on the same key.
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, self._path(key))
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

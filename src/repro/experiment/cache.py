"""Persistent on-disk result cache with content integrity checking.

Results live as one JSON file per unique run, named by the run's content
hash, under ``~/.cache/repro`` (overridable via ``REPRO_CACHE_DIR`` or a
caller-supplied directory).  Files are written atomically and carry a
``checksum`` over the canonical payload JSON; every read verifies it.
A file that is unreadable, torn, stale-format, or *silently garbled*
(parseable JSON whose numbers no longer match the checksum - bit rot, a
partial copy, a buggy sync tool) is **quarantined** to a ``quarantine/``
sidecar directory and reads as a miss, so the run is transparently
recomputed instead of corrupt data being served as truth.

The cache is safe for concurrent writers.  Many Sessions and service
worker shards routinely share one cache directory, so each publish
takes an advisory ``flock`` on a sidecar lock file (where the platform
provides one) and retries transient ``OSError`` failures with backoff
before degrading to a non-persistent cache.  The content-addressed
naming means a lost race is still benign - both writers hold an
identical payload for the key - but the lock keeps tmp-file churn and
non-atomic filesystems (NFS, some overlayfs) from dropping entries.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterator, Optional

try:  # POSIX only; Windows degrades to atomic-rename-with-retry.
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None  # type: ignore[assignment]

from repro import telemetry
from repro.experiment.serialize import result_from_dict, result_to_dict
from repro.experiment.spec import RunSpec
from repro.resilience import faults
from repro.sim.results import RunResult

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Publish attempts before a put degrades to non-persistent.
PUT_ATTEMPTS = 3

#: Backoff between publish attempts, doubled each retry.
_RETRY_DELAY = 0.01


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def payload_checksum(payload: object) -> str:
    """Checksum over the canonical (sorted, compact) payload JSON.

    ``json.dumps`` round-trips floats exactly (``repr``-based), so the
    checksum survives a write/parse cycle and only changes when the
    *values* change.
    """
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of finished runs, verified on read."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory \
            else default_cache_dir()
        #: Entries quarantined after failing verification (monotonic).
        self.integrity_failures = 0
        # Entries are immutable (content-addressed), so a key verified
        # once never needs re-hashing this process.
        self._verified: set = set()
        self._verified_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine(self, key: str) -> None:
        """Move a failed entry aside (never serve it, keep the evidence)."""
        path = self._path(key)
        target_dir = self.directory / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            path.replace(target_dir / path.name)
        except OSError:  # pragma: no cover - filesystem-dependent
            with contextlib.suppress(OSError):
                path.unlink()
        self.integrity_failures += 1

    def _read_verified(self, key: str) -> Optional[dict]:
        """Parse + checksum-verify an entry; quarantine on any failure.

        Returns the payload dict, or ``None`` for both plain misses
        (no file) and quarantined entries - the caller recomputes either
        way.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss: nothing to quarantine
        try:
            body = json.loads(text)
            payload = body["payload"]
            stored = body["checksum"]
        except (ValueError, TypeError, KeyError):
            # Torn write, truncation, or a pre-integrity legacy entry
            # (no checksum): unverifiable either way.
            self._quarantine(key)
            return None
        if payload_checksum(payload) != stored:
            self._quarantine(key)
            return None
        with self._verified_lock:
            self._verified.add(key)
        return payload

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for a run key, or ``None`` on miss.

        Corrupt or unverifiable entries are quarantined and read as
        misses, so callers transparently recompute them.
        """
        with telemetry.span("cache.get", category="cache"):
            payload = self._read_verified(key)
            if payload is None:
                telemetry.counter(
                    "repro_cache_misses_total",
                    "Result-cache lookups that missed").inc()
                return None
            try:
                result = result_from_dict(payload)
            except (ValueError, AttributeError, TypeError, KeyError):
                # Checksum-valid but schema-drifted (an older writer):
                # not corruption, but still unusable - set it aside.
                self._quarantine(key)
                with self._verified_lock:
                    self._verified.discard(key)
                telemetry.counter(
                    "repro_cache_misses_total",
                    "Result-cache lookups that missed").inc()
                return None
            telemetry.counter(
                "repro_cache_hits_total",
                "Result-cache lookups served from disk").inc()
            return result

    def verify(self, key: str) -> bool:
        """Whether a verified entry exists for ``key`` (cheap when cached).

        Membership *must* verify, not just ``exists()``: a corrupt file
        that counts as present would satisfy admission-time store checks
        and strand its grid waiting on a result that can never be read.
        """
        with self._verified_lock:
            if key in self._verified:
                return True
        return self._read_verified(key) is not None

    @contextlib.contextmanager
    def _publish_lock(self) -> Iterator[None]:
        """Advisory exclusive lock over publishes into this directory.

        Serialises the tmp-write/rename pair across processes so
        concurrent workers cannot interleave on filesystems where
        ``os.replace`` is not atomic.  Platforms without ``fcntl`` (and
        lock-file I/O errors) fall back to the bare atomic rename.
        """
        if fcntl is None:
            yield
            return
        try:
            handle = open(self.directory / ".lock", "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        """Store a finished run; failures degrade to a non-persistent cache.

        A full disk or unwritable directory must never lose the result the
        caller just spent a simulation computing.  Transient failures
        (e.g. a concurrent writer recreating the directory, NFS rename
        races) are retried :data:`PUT_ATTEMPTS` times with backoff under
        the directory's publish lock before giving up.
        """
        with telemetry.span("cache.put", category="cache"):
            self._put(key, spec, result)
        telemetry.counter("repro_cache_puts_total",
                          "Results published to the cache").inc()

    def _put(self, key: str, spec: RunSpec, result: RunResult) -> None:
        payload = result_to_dict(result)
        body = json.dumps({
            "key": key,
            "spec": spec.describe(),
            "checksum": payload_checksum(payload),
            "payload": payload,
        })
        for attempt in range(PUT_ATTEMPTS):
            tmp = None
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                with self._publish_lock():
                    fd, tmp = tempfile.mkstemp(dir=self.directory,
                                               suffix=".tmp")
                    with os.fdopen(fd, "w") as handle:
                        handle.write(body)
                    os.replace(tmp, self._path(key))
                if not faults.corrupt("cache.put", key, self._path(key)):
                    with self._verified_lock:
                        self._verified.add(key)
                return
            except OSError:
                if tmp is not None:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                if attempt + 1 < PUT_ATTEMPTS:
                    time.sleep(_RETRY_DELAY * (2 ** attempt))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists() and self.verify(key)

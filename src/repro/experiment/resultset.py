"""Queryable collections of finished runs.

A :class:`ResultSet` holds one :class:`Observation` per experiment grid
point - its coordinates, run spec, and measured
:class:`~repro.sim.results.RunResult` - and supports the aggregation
vocabulary of the paper's figures and tables: ``filter`` by coordinate,
``group_by`` an axis, ``speedup_vs`` a baseline along an axis, geometric
means, and export to records/JSON.  A whole figure becomes one
expression, e.g.::

    rs.speedup_vs("policy").filter(policy="bard-h").gmean_speedup_pct()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, \
    Optional, Sequence, Tuple, Union

from repro.analysis.metrics import amean, gmean
from repro.experiment.spec import BASELINE, GridPoint, RunSpec
from repro.sim.results import RunResult

#: Metrics exported by default from ``to_records``/``to_json``.
DEFAULT_METRICS: Tuple[str, ...] = (
    "mean_ipc", "mpki", "wpki", "write_blp", "time_writing_pct",
)

Criterion = Union[object, Callable[[object], bool]]

#: Metrics computed relative to a baseline attached by ``speedup_vs``.
RELATIVE_METRICS = ("weighted_speedup", "speedup_pct")


@lru_cache(maxsize=1)
def metric_names() -> Tuple[str, ...]:
    """Every valid scalar metric name, sorted.

    The single source of truth for metric validation: numeric
    :class:`~repro.sim.results.RunResult` fields, its derived properties,
    and the baseline-relative metrics.  Structured fields (``llc``,
    ``dram``, ``ipc``, ``sampling``, ...) are not exportable metrics.
    """
    names = set(RELATIVE_METRICS)
    for f in fields(RunResult):
        if f.type in ("int", "float"):
            names.add(f.name)
    for name in dir(RunResult):
        if isinstance(getattr(RunResult, name, None), property):
            names.add(name)
    return tuple(sorted(names))


def valid_metric(name: str) -> bool:
    """Whether ``name`` resolves to a scalar RunResult metric."""
    return name in metric_names()


def _unknown_metric(name: str) -> ValueError:
    return ValueError(
        f"unknown metric {name!r}; valid metrics are: "
        f"{', '.join(metric_names())}")


@dataclass(frozen=True)
class Observation:
    """One grid point with its measured result.

    ``baseline`` is attached by :meth:`ResultSet.speedup_vs` and enables
    the relative metrics (``weighted_speedup``, ``speedup_pct``).
    """

    coords: Mapping[str, object]
    spec: RunSpec
    result: RunResult
    baseline: Optional[RunResult] = field(default=None, compare=False)

    def value(self, metric: str) -> float:
        """Look up ``metric`` on the result (or relative to the baseline).

        Unknown metric names raise a :class:`ValueError` listing the
        valid ones (see :func:`metric_names`).
        """
        if not valid_metric(metric):
            raise _unknown_metric(metric)
        if metric in RELATIVE_METRICS:
            if self.baseline is None:
                raise ValueError(
                    f"{metric!r} needs a baseline; call speedup_vs() first")
            return getattr(self.result, metric)(self.baseline)
        value = getattr(self.result, metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{metric!r} is not a scalar metric")
        return value

    @property
    def sampled(self) -> bool:
        """Whether this observation came from a sampled run."""
        return self.result.sampling is not None

    def ci(self, metric: str) -> Tuple[float, float]:
        """The metric's ``(lo, hi)`` confidence interval.

        Full (unsampled) observations - e.g. adaptive escalations
        sitting next to sampled cells in a mixed grid - report a
        degenerate ``(value, value)`` interval: their measurement is
        exact, not missing.  Metrics a *sampled* summary does not cover
        still raise :class:`ValueError`.
        """
        if not valid_metric(metric):
            raise _unknown_metric(metric)
        if self.result.sampling is None:
            value = self.value(metric)
            return value, value
        return self.result.sampling.ci(metric)

    def error_bar(self, metric: str) -> float:
        """CI half-width of ``metric``; 0.0 for full (unsampled) runs."""
        if not valid_metric(metric):
            raise _unknown_metric(metric)
        summary = self.result.sampling
        if summary is None or metric not in summary.metrics:
            return 0.0
        return summary.metrics[metric].half_width


class ResultSet:
    """An ordered, filterable collection of observations."""

    def __init__(self, observations: Iterable[Observation],
                 name: str = "", adaptive: Optional[object] = None
                 ) -> None:
        self.observations: Tuple[Observation, ...] = tuple(observations)
        self.name = name
        #: The :class:`~repro.adaptive.report.AdaptiveReport` when this
        #: set came from an adaptive orchestration (``None`` otherwise).
        #: Carried only on the set the orchestration returned - derived
        #: sets (``filter``, ``speedup_vs``, ``group_by``) describe a
        #: subset the grid-level report no longer matches, so they do
        #: not inherit it.
        self.adaptive = adaptive

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def __getitem__(self, index: int) -> Observation:
        return self.observations[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({self.name or 'unnamed'}, n={len(self)})"

    # -- selection -----------------------------------------------------

    def filter(self, **criteria: Criterion) -> "ResultSet":
        """Observations matching every criterion.

        A criterion may be a scalar (equality), a list/tuple/set
        (membership), or a callable predicate over the coordinate value.
        """
        def matches(obs: Observation) -> bool:
            for axis, want in criteria.items():
                have = obs.coords.get(axis)
                if callable(want):
                    if not want(have):
                        return False
                elif isinstance(want, (list, tuple, set, frozenset)):
                    if have not in want:
                        return False
                elif have != want:
                    return False
            return True

        return ResultSet(filter(matches, self.observations), self.name)

    def group_by(self, axis: str) -> "Dict[object, ResultSet]":
        """Split along one axis; groups keep first-seen order."""
        groups: Dict[object, List[Observation]] = {}
        for obs in self.observations:
            groups.setdefault(obs.coords.get(axis), []).append(obs)
        return {value: ResultSet(members, self.name)
                for value, members in groups.items()}

    def axis_values(self, axis: str) -> List[object]:
        """Distinct values of ``axis``, first-seen order."""
        return list(dict.fromkeys(
            obs.coords.get(axis) for obs in self.observations))

    def only(self) -> Observation:
        """The single observation; error when the set isn't singular."""
        if len(self.observations) != 1:
            raise ValueError(
                f"expected exactly one observation, have "
                f"{len(self.observations)}")
        return self.observations[0]

    # -- relative metrics ----------------------------------------------

    def speedup_vs(self, axis: str = "policy",
                   baseline: object = BASELINE) -> "ResultSet":
        """Pair every non-baseline observation with its baseline run.

        The baseline is the observation sharing every coordinate except
        ``axis``, where it has the value ``baseline``.  Returns the
        non-baseline observations with ``baseline`` attached, making
        ``speedup_pct``/``weighted_speedup`` available as metrics.
        """
        def anchor(obs: Observation) -> Tuple:
            return tuple(sorted(
                (k, v) for k, v in obs.coords.items() if k != axis))

        baselines: Dict[Tuple, RunResult] = {}
        for obs in self.observations:
            if obs.coords.get(axis) == baseline:
                baselines[anchor(obs)] = obs.result
        paired: List[Observation] = []
        for obs in self.observations:
            if obs.coords.get(axis) == baseline:
                continue
            ref = baselines.get(anchor(obs))
            if ref is None:
                raise ValueError(
                    f"no {axis}={baseline!r} baseline for point "
                    f"{dict(obs.coords)}")
            paired.append(replace(obs, baseline=ref))
        return ResultSet(paired, self.name)

    # -- aggregation ---------------------------------------------------

    def metric(self, name: str) -> List[float]:
        """The named metric evaluated for every observation, in order.

        ``name`` is any :class:`~repro.sim.results.RunResult` attribute or
        property (e.g. ``"mean_ipc"``, ``"write_blp"``) or a
        baseline-relative metric (``"weighted_speedup"``,
        ``"speedup_pct"``) after :meth:`speedup_vs`.
        """
        return [obs.value(name) for obs in self.observations]

    def gmean(self, metric: str = "weighted_speedup") -> float:
        """Geometric mean of ``metric`` across the observations."""
        return gmean(self.metric(metric))

    def amean(self, metric: str) -> float:
        """Arithmetic mean of ``metric`` across the observations."""
        return amean(self.metric(metric))

    def gmean_speedup_pct(self) -> float:
        """Geometric-mean speedup (%) over attached baselines."""
        return 100.0 * (self.gmean("weighted_speedup") - 1.0)

    def phase_breakdown(self) -> Dict[str, float]:
        """Summed wall-clock seconds per execution phase across the set.

        Phase timings are recorded per run when telemetry is enabled
        (``RunResult.phase_breakdown``); runs executed with telemetry
        off contribute nothing.  Returns ``{}`` when no observation
        carries a breakdown, so callers need no enabled-mode check.
        """
        totals: Dict[str, float] = {}
        for obs in self.observations:
            breakdown = obs.result.phase_breakdown
            if not breakdown:
                continue
            for phase, seconds in breakdown.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return dict(sorted(totals.items()))

    # -- sampling ------------------------------------------------------

    def ci(self, metric: str) -> Tuple[float, float]:
        """``(lo, hi)`` confidence interval of the single observation.

        Filter down to one observation first (like :meth:`only`).  Full
        (unsampled) observations report a degenerate ``(value, value)``
        interval, so mixed grids - sampled cells next to full-detail
        escalations - degrade gracefully.
        """
        return self.only().ci(metric)

    def error_bars(self, metric: str) -> List[float]:
        """Per-observation CI half-widths (0.0 for unsampled runs).

        Aligned with :meth:`metric` - ready to feed the ``errors``
        argument of :func:`repro.analysis.figures.series_to_csv`.
        """
        return [obs.error_bar(metric) for obs in self.observations]

    # -- export --------------------------------------------------------

    def to_records(self, metrics: Sequence[str] = ()) \
            -> List[Dict[str, object]]:
        """One flat dict per observation: coordinates plus metric values."""
        names = tuple(metrics) or DEFAULT_METRICS
        records = []
        for obs in self.observations:
            record: Dict[str, object] = dict(obs.coords)
            record["run_key"] = obs.spec.key()
            for name in names:
                record[name] = obs.value(name)
            records.append(record)
        return records

    def to_json(self, path: Optional[Union[str, Path]] = None,
                metrics: Sequence[str] = ()) -> str:
        """JSON form of :meth:`to_records`; also written to ``path`` if
        given.  Returns the serialised text either way."""
        text = json.dumps(self.to_records(metrics), indent=2)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def results(self) -> List[RunResult]:
        """The raw :class:`RunResult` objects, in observation order."""
        return [obs.result for obs in self.observations]


def from_points(points: Sequence[GridPoint],
                results: Mapping[str, RunResult],
                name: str = "",
                adaptive: Optional[object] = None) -> ResultSet:
    """Assemble a ResultSet from plan points and keyed results."""
    return ResultSet(
        (Observation(coords=p.coords, spec=p.spec,
                     result=results[p.spec.key()]) for p in points),
        name=name, adaptive=adaptive)

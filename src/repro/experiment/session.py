"""Experiment execution: plan -> (cached | simulated) -> ResultSet.

A :class:`Session` owns the run caches and the execution strategy.  Each
unique run in a plan is satisfied from, in order: the in-memory memo
(shared across every ``run``/``run_one`` call on the session), the
on-disk :class:`~repro.experiment.cache.ResultCache`, or a fresh
simulation - serially, or across a ``multiprocessing`` pool when
``parallel > 1``.  Simulations are deterministic in (config, workload,
seed), so serial and parallel execution produce identical results.

Runs using functional warmup (``warmup_mode="functional"``) are
additionally grouped by :func:`~repro.experiment.spec.warm_group_key` -
(workload, warmup-relevant config hash, seed).  Each group executes its
warmup exactly once and forks the resulting warm-state snapshot into
every member (e.g. every policy column of a comparison grid), turning an
N-policy grid's warmup cost from N into 1.  Parallel execution
distributes whole groups across workers so snapshots never cross process
boundaries.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, \
    Optional, Tuple, Union

from repro import telemetry
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.experiment.cache import ResultCache
from repro.experiment.execute import KeyedSpec, iter_group, simulate, \
    simulate_group
from repro.experiment.resultset import ResultSet, from_points
from repro.experiment.spec import ExperimentSpec, RunPlan, RunSpec, \
    warm_group_key
from repro.sim.results import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adaptive.policy import AdaptivePolicy

ProgressFn = Callable[[int, int, RunSpec], None]


class SessionInterrupted(RuntimeError):
    """A grid execution stopped early (Ctrl-C or a worker crash).

    Everything finished before the interrupt was already flushed to the
    on-disk result cache, so re-running the same spec resumes from the
    cached runs instead of starting over.  Attributes:

    ``stats``
        The session's :class:`SessionStats` at the moment of interrupt
        (``simulated`` counts the runs that completed this call).
    ``partial``
        A :class:`~repro.experiment.resultset.ResultSet` of the grid
        points whose runs did complete (possibly empty).
    """

    def __init__(self, message: str, stats: "SessionStats",
                 partial: ResultSet) -> None:
        super().__init__(message)
        self.stats = stats
        self.partial = partial


@dataclass
class SessionStats:
    """Where this session's runs came from (accumulated across calls)."""

    planned: int = 0
    unique: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    #: Warmup phases executed from scratch (detailed or functional).
    warmups_executed: int = 0
    #: Simulations that adopted a shared warm-state snapshot instead of
    #: executing their own warmup.
    checkpoint_restores: int = 0


class Session:
    """Executes experiment plans with memoisation and disk caching.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent result cache.  ``None`` selects the
        default (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    parallel:
        Number of worker processes for fresh simulations (1 = in-process).
    cache:
        Disable to skip the on-disk cache entirely (the in-memory memo
        still deduplicates within the session).
    checkpoints:
        Enable warm-state checkpoint sharing for functional-warmup runs
        (the default).  Disable to make every run execute its own
        warmup, e.g. to measure the checkpoint layer itself.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 parallel: int = 1, cache: bool = True,
                 checkpoints: bool = True) -> None:
        self.parallel = max(1, int(parallel))
        self.cache: Optional[ResultCache] = \
            ResultCache(cache_dir) if cache else None
        self.checkpoints = checkpoints
        self.stats = SessionStats()
        self._memo: Dict[str, RunResult] = {}
        #: Warm-state snapshots kept across run() calls (serial path
        #: only - snapshots never cross process boundaries), so e.g.
        #: adaptive refinement rounds restore a group's checkpoint
        #: instead of re-warming it every round.
        self._snapshots: Dict[str, object] = {}

    # -- plan execution ------------------------------------------------

    def run(self, experiment: Union[ExperimentSpec, RunPlan],
            progress: Optional[ProgressFn] = None) -> ResultSet:
        """Execute every unique run of the experiment; aggregate results."""
        plan = experiment.expand() \
            if isinstance(experiment, ExperimentSpec) else experiment
        self.stats.planned += len(plan)
        self.stats.unique += plan.unique_count

        missing: List[Tuple[str, RunSpec]] = []
        for key, spec in plan.runs.items():
            if key in self._memo:
                self.stats.memo_hits += 1
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                self.stats.disk_hits += 1
                self._memo[key] = cached
            else:
                missing.append((key, spec))

        total = len(missing)
        name = plan.spec.name if plan.spec else ""
        completed = 0
        try:
            for done, (key, result) in enumerate(
                    self._execute(missing), start=1):
                self.stats.simulated += 1
                completed = done
                self._memo[key] = result
                spec = plan.runs[key]
                telemetry.publish_run_result(
                    result, workload=spec.workload,
                    policy=spec.config.llc_writeback or "baseline")
                if self.cache:
                    self.cache.put(key, spec, result)
                if progress:
                    progress(done, total, spec)
        except ConfigError:
            # A mis-specified run is a caller error, not an interrupt:
            # keep the ConfigError contract (CLI exit 2, not 130).
            raise
        except (KeyboardInterrupt, Exception) as exc:
            # Interrupt safety: everything already simulated was cached
            # as it arrived, so hand back the finished points and make
            # the invocation resumable instead of losing it wholesale.
            finished = [p for p in plan.points
                        if p.spec.key() in self._memo]
            partial = from_points(finished, self._memo, name=name)
            raise SessionInterrupted(
                f"experiment {name or 'plan'} interrupted after "
                f"{completed}/{total} fresh runs ({len(finished)}/"
                f"{len(plan)} grid points available; finished runs are "
                f"cached - rerun the same spec to resume): {exc!r}",
                replace(self.stats), partial) from exc

        return from_points(plan.points, self._memo, name=name)

    def run_adaptive(self, experiment: Union[ExperimentSpec, RunPlan],
                     policy: "AdaptivePolicy",
                     progress: Optional[ProgressFn] = None) -> ResultSet:
        """Execute the grid adaptively: cheap survey, targeted refinement.

        Every unique run first executes as a cheap sampled pass
        (``policy.start_intervals`` intervals), then only cells whose
        confidence intervals still straddle a decision boundary earn
        more budget - higher interval counts via
        :meth:`~repro.experiment.spec.RunSpec.refine`, or escalation to
        a full-detail run - while dominated cells are pruned early.
        Rounds run through the ordinary :meth:`run` path, so caching,
        dedup, warm-checkpoint sharing, and telemetry apply unchanged.

        Returns a :class:`~repro.experiment.resultset.ResultSet` shaped
        like the original grid whose observations carry each cell's
        *final* (highest-fidelity) run, with the
        :class:`~repro.adaptive.report.AdaptiveReport` attached as
        ``rs.adaptive``.
        """
        from repro.adaptive.orchestrate import orchestrate

        return orchestrate(self, experiment, policy, progress=progress)

    def _warm_groups(
        self, missing: List[KeyedSpec],
    ) -> List[Tuple[Optional[str], List[KeyedSpec]]]:
        """Partition work items into warm-checkpoint-sharing groups.

        Runs that cannot share (detailed warmup, zero warmup, or
        ``checkpoints=False``) become singleton groups with a ``None``
        group key; shareable runs group by :func:`warm_group_key` and
        carry it, so the serial path can reuse snapshots across calls.
        First-seen plan order is preserved within and across groups.

        Whole groups are dispatched to one pool worker, so with few
        groups and many workers the pool would idle; in that case the
        largest groups are split until every worker has a chunk.  Each
        chunk re-warms once - trading some warmup sharing back for
        parallelism - which never changes results: a restored run is
        bit-identical to a freshly warmed one.
        """
        groups: Dict[object, List[KeyedSpec]] = {}
        for key, spec in missing:
            group_key = warm_group_key(spec) if self.checkpoints else None
            groups.setdefault(
                group_key if group_key is not None else ("solo", key),
                []).append((key, spec))
        chunks = [(gk if isinstance(gk, str) else None, members)
                  for gk, members in groups.items()]
        while len(chunks) < min(self.parallel, len(missing)):
            largest = max(range(len(chunks)),
                          key=lambda i: len(chunks[i][1]))
            group_key, group = chunks[largest]
            if len(group) < 2:
                break
            mid = (len(group) + 1) // 2
            chunks[largest:largest + 1] = [(group_key, group[:mid]),
                                           (group_key, group[mid:])]
        return chunks

    def _execute(
        self, missing: List[KeyedSpec],
    ) -> Iterator[Tuple[str, RunResult]]:
        if not missing:
            return
        groups = self._warm_groups(missing)
        workers = min(self.parallel, len(groups))
        if workers <= 1:
            # Stream member-by-member (not group-by-group) so an
            # interrupt mid-group keeps every member already finished.
            for group_key, group in groups:
                for key, result, warmed, restored in \
                        iter_group(group, simulate,
                                   snapshots=self._snapshots,
                                   group_key=group_key):
                    self.stats.warmups_executed += warmed
                    self.stats.checkpoint_restores += restored
                    yield key, result
            return
        with multiprocessing.Pool(processes=workers) as pool:
            for pairs, warmups, restores in pool.imap_unordered(
                    simulate_group, [g for _, g in groups]):
                self.stats.warmups_executed += warmups
                self.stats.checkpoint_restores += restores
                yield from pairs

    # -- single runs ---------------------------------------------------

    def run_one(self, config: SystemConfig, workload: str, seed: int = 7,
                label: Optional[str] = None) -> RunResult:
        """One simulation through the same memo/cache path as plans."""
        spec = RunSpec(workload=workload, config=config, seed=seed,
                       label=label or workload)
        key = spec.key()
        self.stats.planned += 1
        self.stats.unique += 1
        if key in self._memo:
            self.stats.memo_hits += 1
            result = self._memo[key]
        else:
            result = self.cache.get(key) if self.cache else None
            if result is not None:
                self.stats.disk_hits += 1
            else:
                result = simulate(spec)
                self.stats.simulated += 1
                if spec.config.warmup_instructions > 0:
                    self.stats.warmups_executed += 1
                if self.cache:
                    self.cache.put(key, spec, result)
            self._memo[key] = result
        if label and result.label != label:
            result = replace(result, label=label)
        return result

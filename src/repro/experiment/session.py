"""Experiment execution: plan -> (cached | simulated) -> ResultSet.

A :class:`Session` owns the run caches and the execution strategy.  Each
unique run in a plan is satisfied from, in order: the in-memory memo
(shared across every ``run``/``run_one`` call on the session), the
on-disk :class:`~repro.experiment.cache.ResultCache`, or a fresh
simulation - serially, or across a ``multiprocessing`` pool when
``parallel > 1``.  Simulations are deterministic in (config, workload,
seed), so serial and parallel execution produce identical results.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.config.system import SystemConfig
from repro.experiment.cache import ResultCache
from repro.experiment.resultset import ResultSet, from_points
from repro.experiment.spec import ExperimentSpec, RunPlan, RunSpec
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads.suites import trace_factory

ProgressFn = Callable[[int, int, RunSpec], None]


def simulate(spec: RunSpec) -> RunResult:
    """Execute one run spec (the single entry point to the simulator)."""
    factory = trace_factory(spec.workload, spec.config, seed=spec.seed)
    system = System(spec.config, factory)
    return system.run(label=spec.label or spec.workload)


def _simulate_keyed(item: Tuple[str, RunSpec]) -> Tuple[str, RunResult]:
    key, spec = item
    return key, simulate(spec)


@dataclass
class SessionStats:
    """Where this session's runs came from (accumulated across calls)."""

    planned: int = 0
    unique: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0


class Session:
    """Executes experiment plans with memoisation and disk caching.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent result cache.  ``None`` selects the
        default (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    parallel:
        Number of worker processes for fresh simulations (1 = in-process).
    cache:
        Disable to skip the on-disk cache entirely (the in-memory memo
        still deduplicates within the session).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 parallel: int = 1, cache: bool = True) -> None:
        self.parallel = max(1, int(parallel))
        self.cache: Optional[ResultCache] = \
            ResultCache(cache_dir) if cache else None
        self.stats = SessionStats()
        self._memo: Dict[str, RunResult] = {}

    # -- plan execution ------------------------------------------------

    def run(self, experiment: Union[ExperimentSpec, RunPlan],
            progress: Optional[ProgressFn] = None) -> ResultSet:
        """Execute every unique run of the experiment; aggregate results."""
        plan = experiment.expand() \
            if isinstance(experiment, ExperimentSpec) else experiment
        self.stats.planned += len(plan)
        self.stats.unique += plan.unique_count

        missing: List[Tuple[str, RunSpec]] = []
        for key, spec in plan.runs.items():
            if key in self._memo:
                self.stats.memo_hits += 1
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                self.stats.disk_hits += 1
                self._memo[key] = cached
            else:
                missing.append((key, spec))

        total = len(missing)
        for done, (key, result) in enumerate(
                self._execute(missing), start=1):
            self.stats.simulated += 1
            self._memo[key] = result
            if self.cache:
                self.cache.put(key, plan.runs[key], result)
            if progress:
                progress(done, total, plan.runs[key])

        name = plan.spec.name if plan.spec else ""
        return from_points(plan.points, self._memo, name=name)

    def _execute(self, missing: List[Tuple[str, RunSpec]]):
        if not missing:
            return
        workers = min(self.parallel, len(missing))
        if workers <= 1:
            for item in missing:
                yield _simulate_keyed(item)
            return
        with multiprocessing.Pool(processes=workers) as pool:
            for keyed in pool.imap_unordered(_simulate_keyed, missing):
                yield keyed

    # -- single runs ---------------------------------------------------

    def run_one(self, config: SystemConfig, workload: str, seed: int = 7,
                label: Optional[str] = None) -> RunResult:
        """One simulation through the same memo/cache path as plans."""
        spec = RunSpec(workload=workload, config=config, seed=seed,
                       label=label or workload)
        key = spec.key()
        self.stats.planned += 1
        self.stats.unique += 1
        if key in self._memo:
            self.stats.memo_hits += 1
            result = self._memo[key]
        else:
            result = self.cache.get(key) if self.cache else None
            if result is not None:
                self.stats.disk_hits += 1
            else:
                result = simulate(spec)
                self.stats.simulated += 1
                if self.cache:
                    self.cache.put(key, spec, result)
            self._memo[key] = result
        if label and result.label != label:
            result = replace(result, label=label)
        return result

"""Plan-execution primitives shared by :class:`Session` and the service.

The in-process :class:`~repro.experiment.session.Session` and the
long-running :mod:`repro.service` worker shards execute the same unit of
work: a *warm group* - a list of ``(run key, RunSpec)`` items that share
one functional-warmup state, so the group warms once and every other
member restores the snapshot (see
:func:`~repro.experiment.spec.warm_group_key`).  This module is the
single home of that logic; both consumers import it so a run behaves
identically whether it was launched from the CLI, a test, or an HTTP
submission.

``simulate_group`` is the batch form handed to ``multiprocessing`` pools
(one round-trip per group); ``iter_group`` is the incremental form the
serial path uses so an interrupt mid-group still keeps every finished
member.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, MutableMapping, Optional, \
    Tuple

from repro import telemetry
from repro.experiment.spec import RunSpec
from repro.resilience import faults
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads.suites import trace_factory

#: One (run key, spec) work item.
KeyedSpec = Tuple[str, RunSpec]

#: One finished member: (key, result, warmups executed, snapshots restored).
GroupItem = Tuple[str, RunResult, int, int]

SimulateFn = Callable[[RunSpec], RunResult]


def simulate(spec: RunSpec) -> RunResult:
    """Execute one run spec (the single entry point to the simulator)."""
    with telemetry.span("simulate", workload=spec.workload,
                        label=spec.label or spec.workload):
        factory = trace_factory(spec.workload, spec.config,
                                seed=spec.seed)
        system = System(spec.config, factory)
        return system.run(label=spec.label or spec.workload)


def iter_group(items: List[KeyedSpec],
               simulate_fn: SimulateFn = simulate,
               snapshots: Optional[MutableMapping[str, object]] = None,
               group_key: Optional[str] = None) -> Iterator[GroupItem]:
    """Execute one warm-sharing group, yielding each member as it finishes.

    The first member executes the (functional) warmup and snapshots the
    warm state; every other member restores the snapshot instead of
    re-warming.  Each yielded tuple carries per-member accounting deltas
    (``warmups``, ``restores``) so callers can attribute warmup time as
    results stream out - an interrupt after member *k* loses nothing
    already yielded.

    ``snapshots`` (with its ``group_key``) opts into *cross-call*
    checkpoint reuse: the group's warm snapshot is looked up in - and
    stored into - the mapping, so a later call for the same warm group
    (an adaptive refinement round re-planning the same runs at higher
    fidelity) restores instead of re-warming.  Restored runs are
    bit-identical to freshly warmed ones, so this never changes results.
    Without ``snapshots``, ``simulate_fn`` is consulted for singleton
    groups (the common case for detailed-warmup runs) and shared groups
    drive the snapshot/restore machinery directly.
    """
    share = snapshots is not None and group_key is not None
    if len(items) == 1 and not share:
        key, spec = items[0]
        warmups = 1 if spec.config.warmup_instructions > 0 else 0
        faults.trip("simulate", key)
        yield key, simulate_fn(spec), warmups, 0
        return
    snapshot = snapshots.get(group_key) if share else None
    for key, spec in items:
        faults.trip("simulate", key)
        with telemetry.span("simulate", workload=spec.workload,
                            label=spec.label or spec.workload):
            factory = trace_factory(spec.workload, spec.config,
                                    seed=spec.seed)
            system = System(spec.config, factory)
            if snapshot is None:
                snapshot = system.snapshot_warm_state()
                warmups, restores = 1, 0
                if share:
                    snapshots[group_key] = snapshot
            else:
                system.restore_warm_state(snapshot)
                warmups, restores = 0, 1
            result = system.run(label=spec.label or spec.workload)
        yield key, result, warmups, restores


def simulate_group(
    items: List[KeyedSpec],
) -> Tuple[List[Tuple[str, RunResult]], int, int]:
    """Batch form of :func:`iter_group` for process pools.

    Returns ``(keyed results, warmups executed, checkpoint restores)``
    so the dispatching side can account where warmup time went.
    """
    pairs: List[Tuple[str, RunResult]] = []
    warmups = restores = 0
    for key, result, warmed, restored in iter_group(items):
        pairs.append((key, result))
        warmups += warmed
        restores += restored
    return pairs, warmups, restores

"""Exception types shared across the ``repro`` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class MappingError(ReproError):
    """An address could not be translated by the DRAM address mapping."""


class SchedulingError(ReproError):
    """The memory scheduler reached an inconsistent internal state."""


class TraceError(ReproError):
    """A workload trace was malformed or exhausted unexpectedly."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""

"""BARD reproduction: bank-aware replacement decisions for DDR5 writes.

Reproduction of Vittal & Qureshi, "BARD: Reducing Write Latency of DDR5
Memory by Exploiting Bank-Parallelism" (HPCA 2026), including the full
simulation substrate: a trace-driven multi-core model, a three-level cache
hierarchy with pluggable replacement/writeback policies, and a cycle-level
DDR5 memory system.

Quickstart - declare an experiment grid, run it (deduplicated, cached,
optionally parallel), and query the results::

    from repro import ExperimentSpec, Session, small_8core

    spec = ExperimentSpec(workloads=["lbm", "copy"],
                          configs=small_8core(),
                          policies=["baseline", "bard-h"])
    rs = Session(parallel=4).run(spec)
    bard = rs.speedup_vs("policy").filter(policy="bard-h")
    print(f"BARD-H gmean speedup: {bard.gmean_speedup_pct():+.2f}%")

Single runs stay one call: ``run_workload(small_8core(), "lbm")``.
"""

from repro.adaptive import AdaptivePolicy, AdaptiveReport
from repro.config import (
    CacheConfig,
    DramConfig,
    SystemConfig,
    default_config,
    paper_8core,
    paper_16core,
    small_8core,
    small_16core,
)
from repro.core import BLPTracker, BardPolicy, make_bard
from repro.experiment import (
    Axis,
    ExperimentSpec,
    Observation,
    ResultCache,
    ResultSet,
    RunPlan,
    RunSpec,
    Session,
    make_axis,
)
from repro.sampling import MetricEstimate, SamplingConfig, SamplingSummary
from repro.sim import (
    PolicyComparison,
    RunResult,
    System,
    compare_policies,
    gmean_speedups,
    run_workload,
)
from repro.workloads import (
    ALL_WORKLOADS,
    MIXES,
    QUICK_WORKLOADS,
    WORKLOADS,
    trace_factory,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "AdaptivePolicy",
    "AdaptiveReport",
    "Axis",
    "BLPTracker",
    "BardPolicy",
    "CacheConfig",
    "DramConfig",
    "ExperimentSpec",
    "MIXES",
    "Observation",
    "PolicyComparison",
    "ResultCache",
    "ResultSet",
    "RunPlan",
    "RunSpec",
    "MetricEstimate",
    "Session",
    "SamplingConfig",
    "SamplingSummary",
    "QUICK_WORKLOADS",
    "RunResult",
    "System",
    "SystemConfig",
    "WORKLOADS",
    "__version__",
    "compare_policies",
    "default_config",
    "gmean_speedups",
    "make_axis",
    "make_bard",
    "paper_8core",
    "paper_16core",
    "run_workload",
    "small_8core",
    "small_16core",
    "trace_factory",
    "workload_names",
]

"""Adaptive grid orchestration: spend simulation where the CIs say.

A grid-level, budget-aware scheduler over the sampling subsystem
(``docs/adaptive.md``): every cell first runs a cheap sampled survey
pass, then iterative rounds allocate additional budget - more
measurement intervals, or escalation to a full-detail run - only to
cells whose confidence intervals still straddle a decision boundary,
with bandit-style early stopping of dominated configurations::

    from repro import AdaptivePolicy, ExperimentSpec, Session

    policy = AdaptivePolicy(metric="mean_ipc",
                            target_relative_error=0.02,
                            budget_instructions=2_000_000)
    rs = Session().run_adaptive(spec, policy)
    print(rs.adaptive.savings_pct, rs.adaptive.winners)

The pieces:

* :class:`~repro.adaptive.policy.AdaptivePolicy` - budget, error
  target, decision metric/axis, round limits, escalation rule.
* :class:`~repro.adaptive.planner.AdaptivePlanner` - the pure,
  deterministic decision core shared verbatim by the local loop
  (:meth:`Session.run_adaptive <repro.experiment.session.Session.run_adaptive>`)
  and the service path
  (:meth:`ExperimentService.submit_adaptive
  <repro.service.service.ExperimentService.submit_adaptive>`), which is
  why the two produce identical decisions.
* :class:`~repro.adaptive.report.AdaptiveReport` /
  :class:`~repro.adaptive.report.CellDecision` - per-cell rounds,
  instructions spent, stop reason, and final CI, carried on the
  returned :class:`~repro.experiment.resultset.ResultSet`.
"""

from repro.adaptive.orchestrate import orchestrate
from repro.adaptive.planner import AdaptivePlanner, CellState
from repro.adaptive.policy import ESCALATIONS, LOWER_IS_BETTER, \
    AdaptivePolicy
from repro.adaptive.report import STOP_REASONS, AdaptiveReport, \
    CellDecision

__all__ = [
    "ESCALATIONS",
    "LOWER_IS_BETTER",
    "STOP_REASONS",
    "AdaptivePlanner",
    "AdaptivePolicy",
    "AdaptiveReport",
    "CellDecision",
    "CellState",
    "orchestrate",
]

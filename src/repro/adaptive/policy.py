"""The knobs of an adaptive grid orchestration.

An :class:`AdaptivePolicy` says how much simulation a grid may spend and
when a cell has earned its answer: the decision metric and its target
relative error, the interval ladder (start count and growth factor), an
optional hard budget in detailed instructions, round limits, whether a
cell that outgrows sampling escalates to a full-detail run, and which
axis the comparison is fought along (dominated values of that axis are
pruned early).

Policies are frozen, validated at construction, and round-trip JSON via
:meth:`to_dict` / :meth:`from_dict` - the same policy object drives the
local loop (:meth:`~repro.experiment.session.Session.run_adaptive`) and
the service path, which is what makes their decisions identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.sampling.stats import SAMPLE_METRICS

#: Sampled metrics where a *smaller* value wins the comparison.
LOWER_IS_BETTER = ("mpki", "wpki", "mean_w2w_ns", "time_writing_pct")

#: Valid escalation rules: grow into a full-detail run, or stop at the
#: interval cap and accept the residual CI.
ESCALATIONS = ("full", "stop")


@dataclass(frozen=True)
class AdaptivePolicy:
    """Budget and stopping rules for one adaptive grid orchestration."""

    #: Decision metric; must be one the sampling summaries estimate
    #: (:data:`~repro.sampling.stats.SAMPLE_METRICS`).
    metric: str = "mean_ipc"
    #: Stop refining a cell once its CI half-width over |mean| is at
    #: most this (e.g. ``0.02`` for 2%).
    target_relative_error: float = 0.05
    #: Optional hard cap on detailed instructions spent across the whole
    #: grid (all rounds).  The mandatory survey round always runs;
    #: refinements that would overdraw the budget are denied and their
    #: cells stop with reason ``"budget"``.  ``None`` = unbounded.
    budget_instructions: Optional[int] = None
    #: Rounds a cell must run before any early stop (target, dominance,
    #: decided) may retire it.
    min_rounds: int = 1
    #: Hard round cap per cell; a cell still unconverged after this many
    #: rounds stops with reason ``"max-rounds"``.
    max_rounds: int = 4
    #: Interval count of the cheap survey pass every cell gets first.
    start_intervals: int = 4
    #: Ladder growth factor between rounds (next = ceil(n * growth)).
    growth: float = 2.0
    #: What happens when a cell needs more intervals than fit the epoch
    #: (or its plan's ``max_intervals``): ``"full"`` re-plans it as an
    #: unsampled full-detail run, ``"stop"`` accepts the residual CI.
    escalation: str = "full"
    #: The axis the comparison is decided along.  Cells sharing every
    #: other coordinate form one decision group; a group member whose CI
    #: is strictly dominated by the group leader's is pruned.
    compare_axis: str = "policy"
    #: Disable to keep dominated cells refining toward the error target
    #: (pure precision mode - no bandit-style early stopping).
    prune: bool = True
    #: Override the metric's win direction; ``None`` infers it
    #: (:data:`LOWER_IS_BETTER` metrics prefer smaller values).
    higher_is_better: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.metric not in SAMPLE_METRICS:
            raise ConfigError(
                f"adaptive metric must be a sampled metric, one of "
                f"{list(SAMPLE_METRICS)}; got {self.metric!r}")
        if self.target_relative_error <= 0:
            raise ConfigError(
                "adaptive target_relative_error must be positive")
        if self.budget_instructions is not None \
                and self.budget_instructions <= 0:
            raise ConfigError(
                "adaptive budget_instructions must be positive")
        if self.min_rounds < 1:
            raise ConfigError("adaptive min_rounds must be >= 1")
        if self.max_rounds < self.min_rounds:
            raise ConfigError(
                "adaptive max_rounds must be >= min_rounds")
        if self.start_intervals < 2:
            raise ConfigError(
                "adaptive start_intervals must be >= 2 (confidence "
                "intervals need at least two samples)")
        if self.growth <= 1.0:
            raise ConfigError("adaptive growth must be > 1")
        if self.escalation not in ESCALATIONS:
            raise ConfigError(
                f"adaptive escalation must be one of {ESCALATIONS}")
        if not self.compare_axis:
            raise ConfigError("adaptive compare_axis must be non-empty")

    @property
    def prefers_higher(self) -> bool:
        """Whether a larger metric value wins the comparison."""
        if self.higher_is_better is not None:
            return self.higher_is_better
        return self.metric not in LOWER_IS_BETTER

    def better(self, a: float, b: float) -> bool:
        """Whether value ``a`` beats value ``b`` under this policy."""
        return a > b if self.prefers_higher else a < b

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the wire and grid-record format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptivePolicy":
        """Rebuild from :meth:`to_dict` output; validates like __init__."""
        if not isinstance(data, Mapping):
            raise ConfigError("adaptive policy must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown adaptive policy fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = dict(data)
        for field_name in ("min_rounds", "max_rounds", "start_intervals"):
            if field_name in kwargs:
                kwargs[field_name] = int(kwargs[field_name])
        if kwargs.get("budget_instructions") is not None:
            kwargs["budget_instructions"] = \
                int(kwargs["budget_instructions"])
        if "target_relative_error" in kwargs:
            kwargs["target_relative_error"] = \
                float(kwargs["target_relative_error"])
        if "growth" in kwargs:
            kwargs["growth"] = float(kwargs["growth"])
        return cls(**kwargs)

"""The local adaptive loop: planner rounds driven through a Session.

:func:`orchestrate` is what
:meth:`~repro.experiment.session.Session.run_adaptive` delegates to.
Each planner round becomes an ordinary :class:`RunPlan` executed by the
session, so every run flows through the same memo / disk cache / warm
checkpoint machinery as an exhaustive grid - refinement rounds of one
warm group restore the survey round's snapshot instead of re-warming,
and re-running the same (grid, policy) resumes from cached rounds.

The service path (:meth:`ExperimentService.submit_adaptive`) drives the
identical planner over the durable queue instead; see
:mod:`repro.adaptive.planner` for why the two paths cannot diverge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.adaptive.planner import AdaptivePlanner
from repro.adaptive.policy import AdaptivePolicy
from repro.experiment.resultset import Observation, ResultSet
from repro.experiment.spec import ExperimentSpec, GridPoint, RunPlan
from repro.sim.results import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiment.session import ProgressFn, Session


def orchestrate(session: "Session",
                experiment: Union[ExperimentSpec, RunPlan],
                policy: AdaptivePolicy,
                progress: "Optional[ProgressFn]" = None) -> ResultSet:
    """Run the grid adaptively on ``session``; see ``run_adaptive``."""
    plan = experiment.expand() \
        if isinstance(experiment, ExperimentSpec) else experiment
    planner = AdaptivePlanner(plan, policy)
    results: Dict[str, RunResult] = {}
    specs = planner.start()
    while specs:
        coords = {cell.key: dict(cell.coords)
                  for cell in planner.cells.values()}
        round_plan = RunPlan(None, [
            GridPoint(coords=coords[key], spec=spec)
            for key, spec in specs.items()])
        round_rs = session.run(round_plan, progress=progress)
        for obs in round_rs:
            results[obs.spec.key()] = obs.result
        specs = planner.advance(results)

    report = planner.report()
    final_specs = planner.final_specs()
    observations = []
    for point in plan.points:
        spec = final_specs[point.spec.key()]
        observations.append(Observation(
            coords=point.coords, spec=spec, result=results[spec.key()]))
    name = plan.spec.name if plan.spec is not None else ""
    return ResultSet(observations, name=name, adaptive=report)

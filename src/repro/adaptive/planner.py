"""The deterministic decision core of adaptive grid orchestration.

An :class:`AdaptivePlanner` owns the per-cell state machine: every
unique run of the submitted plan becomes a *cell* that climbs an
interval ladder (``start_intervals``, then ``ceil(n * growth)`` per
round) until its CI meets the policy's error target, its comparison
group's ranking is decided, it is dominated by the group leader
(bandit-style pruning), it escalates to a full-detail run, or budget /
round caps retire it.

The planner is deliberately *pure*: decisions depend only on the policy
and the observed :class:`~repro.sim.results.RunResult` objects - no
wall clock, no randomness, no I/O - and results are themselves
deterministic in (config, workload, seed).  The local loop
(:meth:`~repro.experiment.session.Session.run_adaptive`) and the
service supervisor drive the *same* planner code over the *same*
results, which is what guarantees identical decisions on both paths.
:meth:`state_dict` / :meth:`restore` round-trip the full state through
JSON so the service can persist it in grid records between rounds.

Budget accounting counts **detailed instructions**
(``RunResult.instructions``: instructions measured in full detail,
which is where simulation time goes) and the planner increments the
``repro_adaptive_*`` registry counters from the same events that build
the :class:`~repro.adaptive.report.AdaptiveReport`, so report totals
always reconcile with telemetry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import telemetry
from repro.adaptive.policy import AdaptivePolicy
from repro.adaptive.report import AdaptiveReport, CellDecision
from repro.errors import ConfigError
from repro.experiment.spec import RunPlan, RunSpec
from repro.sim.results import RunResult


def _counter(name: str, help_text: str) -> Any:
    """Always-on operational counter (the service/queue pattern)."""
    return telemetry.REGISTRY.counter(name, help_text)


def _rounds_counter() -> Any:
    return _counter("repro_adaptive_rounds_total",
                    "Adaptive cell-rounds executed")


def _escalations_counter() -> Any:
    return _counter("repro_adaptive_escalations_total",
                    "Adaptive cells escalated to full-detail runs")


def _pruned_counter() -> Any:
    return _counter("repro_adaptive_pruned_total",
                    "Adaptive cells pruned as dominated")


def _instructions_counter() -> Any:
    return telemetry.REGISTRY.counter(
        "repro_adaptive_instructions_total",
        "Adaptive detailed instructions by kind", ("kind",))


@dataclass
class CellState:
    """One unique run's position on the refinement ladder."""

    cell: str                      # original run key (stable identity)
    label: str
    coords: Dict[str, Any]
    group: str                     # decision-group anchor
    value: str                     # compare-axis value
    spec: RunSpec                  # current round's spec
    key: str                       # current spec's run key
    intervals: Optional[int]       # current interval count (None = full)
    cap: int                       # interval-ladder ceiling
    full_cost: int                 # cores * sim_instructions
    rounds: int = 0
    instructions: int = 0
    last_instructions: int = 0
    awaiting: bool = False         # a planned round has no result yet
    stop: Optional[str] = None
    escalated: bool = False
    pruned: bool = False
    has_estimate: bool = False
    mean: float = 0.0
    ci_lo: float = 0.0
    ci_hi: float = 0.0
    rel_error: float = 0.0
    final_key: str = ""
    history: List[Dict[str, Any]] = field(default_factory=list)


def _group_anchor(coords: Mapping[str, Any], compare_axis: str) -> str:
    parts = [f"{k}={coords[k]}" for k in sorted(coords)
             if k != compare_axis]
    return ",".join(parts) or "all"


class AdaptivePlanner:
    """Drives one grid through sampled survey + targeted refinement."""

    def __init__(self, plan: RunPlan, policy: AdaptivePolicy) -> None:
        self.policy = policy
        self.round = 0
        self.spent = 0
        self.totals = {"rounds": 0, "escalations": 0, "pruned": 0}
        self._finalized = False
        self._winners: Dict[str, str] = {}
        self.cells: Dict[str, CellState] = {}
        coords_of: Dict[str, Mapping[str, Any]] = {}
        for point in plan.points:
            coords_of.setdefault(point.spec.key(), point.coords)
        for cell_key, spec in plan.runs.items():
            coords = dict(coords_of[cell_key])
            config = spec.config
            base = config.sampling
            interval_len = base.interval_instructions if base is not None \
                else 1_000
            max_intervals = base.max_intervals if base is not None else 64
            cap = min(max_intervals,
                      config.sim_instructions // max(1, interval_len))
            if cap < 2:
                raise ConfigError(
                    f"adaptive orchestration cannot sample "
                    f"{spec.label or spec.workload!r}: the epoch "
                    f"({config.sim_instructions} instructions) fits "
                    f"fewer than 2 intervals of {interval_len}; shorten "
                    f"the interval or run the grid exhaustively")
            self.cells[cell_key] = CellState(
                cell=cell_key,
                label=spec.label or spec.workload,
                coords=coords,
                group=_group_anchor(coords, policy.compare_axis),
                value=str(coords.get(policy.compare_axis, "")),
                spec=spec, key=cell_key,
                intervals=None, cap=cap,
                full_cost=config.cores * config.sim_instructions)

    # -- round planning ------------------------------------------------

    def start(self) -> Dict[str, RunSpec]:
        """Plan the mandatory survey round (every cell, cheap sampling)."""
        if self.round != 0:
            raise ConfigError("adaptive planner already started")
        self.round = 1
        for cell in self._ordered():
            n0 = min(self.policy.start_intervals, cell.cap)
            self._plan_cell(cell, intervals=n0)
        return self.pending()

    def pending(self) -> Dict[str, RunSpec]:
        """Specs of the rounds planned but not yet observed."""
        return {cell.key: cell.spec for cell in self._ordered()
                if cell.awaiting}

    def _ordered(self) -> List[CellState]:
        return [self.cells[k] for k in sorted(self.cells)]

    def _plan_cell(self, cell: CellState,
                   intervals: Optional[int]) -> None:
        if intervals is None:
            cell.spec = cell.spec.refine(full=True)
            cell.escalated = True
            self.totals["escalations"] += 1
            _escalations_counter().inc()
        else:
            cell.spec = cell.spec.refine(intervals=intervals)
        cell.intervals = intervals
        cell.key = cell.spec.key()
        cell.awaiting = True

    # -- observation + decisions ---------------------------------------

    def advance(self, results: Mapping[str, RunResult]
                ) -> Dict[str, RunSpec]:
        """Feed one round's results; returns the next round's specs.

        ``results`` maps run keys to finished results and must cover
        every awaiting cell.  An empty return value means the
        orchestration is finished (:attr:`finished` turns True and
        :meth:`report` becomes available).
        """
        self._observe(results)
        if not self._all_stopped():
            self._decide()
        if self._all_stopped():
            self._finalize()
            return {}
        self.round += 1
        return self.pending()

    def _observe(self, results: Mapping[str, RunResult]) -> None:
        instructions = _instructions_counter()
        for cell in self._ordered():
            if not cell.awaiting:
                continue
            result = results.get(cell.key)
            if result is None:
                raise ConfigError(
                    f"adaptive round {self.round} is missing the result "
                    f"for {cell.label!r} (run {cell.key})")
            cell.awaiting = False
            cell.rounds += 1
            cell.final_key = cell.key
            cell.last_instructions = result.instructions
            cell.instructions += result.instructions
            self.spent += result.instructions
            cell.history.append({"key": cell.key,
                                 "intervals": cell.intervals,
                                 "instructions": result.instructions})
            self.totals["rounds"] += 1
            _rounds_counter().inc()
            instructions.labels(kind="spent").inc(result.instructions)
            metric = self.policy.metric
            if result.sampling is not None:
                est = result.sampling.estimate(metric)
                cell.mean = est.mean
                cell.ci_lo, cell.ci_hi = est.ci_lo, est.ci_hi
                cell.rel_error = est.rel_error
            else:
                value = float(getattr(result, metric))
                cell.mean = cell.ci_lo = cell.ci_hi = value
                cell.rel_error = 0.0
            cell.has_estimate = True
            if cell.escalated and cell.stop is None:
                # A full-detail result is exact; nothing left to refine.
                cell.stop = "escalated"

    def _dominates(self, leader: CellState, cell: CellState) -> bool:
        """Leader's CI strictly beats the cell's whole CI."""
        if self.policy.prefers_higher:
            return leader.ci_lo > cell.ci_hi
        return leader.ci_hi < cell.ci_lo

    def _group_leader(self,
                      members: List[CellState]) -> Optional[CellState]:
        leader: Optional[CellState] = None
        for cell in members:
            if not cell.has_estimate:
                continue
            if leader is None or \
                    self.policy.better(cell.mean, leader.mean):
                leader = cell
        return leader

    def _decide(self) -> None:
        policy = self.policy
        groups: Dict[str, List[CellState]] = {}
        for cell in self._ordered():
            groups.setdefault(cell.group, []).append(cell)

        refine_candidates: List[CellState] = []
        for members in groups.values():
            leader = self._group_leader(members)
            contested = len(members) > 1 and leader is not None
            decided = contested and all(
                cell is leader or not cell.has_estimate
                or self._dominates(leader, cell)
                for cell in members)
            for cell in members:
                if cell.stop is not None or cell.awaiting \
                        or not cell.has_estimate:
                    continue
                if cell.rounds >= policy.min_rounds:
                    if contested and policy.prune and cell is not leader \
                            and self._dominates(leader, cell):
                        cell.stop = "dominated"
                        cell.pruned = True
                        self.totals["pruned"] += 1
                        _pruned_counter().inc()
                        continue
                    if decided:
                        cell.stop = "decided"
                        continue
                    if cell.rel_error <= policy.target_relative_error:
                        cell.stop = "target-met"
                        continue
                if cell.rounds >= policy.max_rounds:
                    cell.stop = "max-rounds"
                    continue
                refine_candidates.append(cell)

        # Neediest first; ties break on the stable cell id so local and
        # service runs admit refinements in the same order.
        refine_candidates.sort(key=lambda c: (-c.rel_error, c.cell))
        committed = 0
        for cell in refine_candidates:
            assert cell.intervals is not None
            next_n: Optional[int] = math.ceil(
                cell.intervals * self.policy.growth)
            if next_n > cell.cap:
                if self.policy.escalation == "stop":
                    cell.stop = "interval-cap"
                    continue
                next_n = None  # escalate to a full-detail run
            projected = cell.full_cost if next_n is None else \
                -(-cell.last_instructions * next_n // cell.intervals)
            budget = self.policy.budget_instructions
            if budget is not None and \
                    self.spent + committed + projected > budget:
                cell.stop = "budget"
                continue
            committed += projected
            self._plan_cell(cell, intervals=next_n)

    def _all_stopped(self) -> bool:
        return all(cell.stop is not None and not cell.awaiting
                   for cell in self.cells.values())

    @property
    def finished(self) -> bool:
        return self._finalized

    def mark_quarantined(self, keys: Mapping[str, str]) -> None:
        """Retire cells whose current run was dead-lettered (service).

        ``keys`` maps run keys to error strings; matching awaiting
        cells stop with reason ``"quarantined"`` and are excluded from
        winners and the final ResultSet (degraded-grid semantics).
        """
        for cell in self._ordered():
            if cell.awaiting and cell.key in keys:
                cell.awaiting = False
                cell.stop = "quarantined"
                cell.has_estimate = False

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        groups: Dict[str, List[CellState]] = {}
        for cell in self._ordered():
            groups.setdefault(cell.group, []).append(cell)
        for group, members in sorted(groups.items()):
            leader = self._group_leader(members)
            if leader is not None:
                self._winners[group] = leader.value
        _instructions_counter().labels(kind="saved").inc(
            self._instructions_saved())

    def _instructions_full(self) -> int:
        return sum(cell.full_cost for cell in self.cells.values())

    def _instructions_saved(self) -> int:
        return max(0, self._instructions_full() - self.spent)

    # -- outputs -------------------------------------------------------

    def final_specs(self) -> Dict[str, RunSpec]:
        """Original cell key -> highest-fidelity spec that produced the
        cell's final estimate (quarantined cells excluded)."""
        return {cell.cell: cell.spec for cell in self._ordered()
                if cell.stop != "quarantined"}

    def report(self) -> AdaptiveReport:
        if not self._finalized:
            raise ConfigError(
                "adaptive orchestration has not finished; report() is "
                "only available once advance() returns no more work")
        cells = tuple(
            CellDecision(
                cell=cell.cell, label=cell.label,
                coords=dict(cell.coords), group=cell.group,
                value=cell.value, rounds=cell.rounds,
                intervals=cell.intervals, escalated=cell.escalated,
                pruned=cell.pruned, stop=cell.stop or "",
                instructions=cell.instructions, mean=cell.mean,
                ci_lo=cell.ci_lo, ci_hi=cell.ci_hi,
                rel_error=cell.rel_error, final_key=cell.final_key)
            for cell in self._ordered())
        return AdaptiveReport(
            policy=self.policy.to_dict(), cells=cells,
            rounds=self.totals["rounds"],
            escalations=self.totals["escalations"],
            pruned=self.totals["pruned"],
            instructions_spent=self.spent,
            instructions_full=self._instructions_full(),
            winners=dict(self._winners))

    # -- persistence (the service's grid records) ----------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot; :meth:`restore` round-trips it."""
        return {
            "round": self.round,
            "spent": self.spent,
            "totals": dict(self.totals),
            "finalized": self._finalized,
            "winners": dict(self._winners),
            "cells": [{
                "cell": cell.cell, "label": cell.label,
                "coords": dict(cell.coords), "group": cell.group,
                "value": cell.value, "spec": cell.spec.describe(),
                "key": cell.key, "intervals": cell.intervals,
                "cap": cell.cap, "full_cost": cell.full_cost,
                "rounds": cell.rounds,
                "instructions": cell.instructions,
                "last_instructions": cell.last_instructions,
                "awaiting": cell.awaiting, "stop": cell.stop,
                "escalated": cell.escalated, "pruned": cell.pruned,
                "has_estimate": cell.has_estimate,
                "mean": cell.mean, "ci_lo": cell.ci_lo,
                "ci_hi": cell.ci_hi, "rel_error": cell.rel_error,
                "final_key": cell.final_key,
                "history": list(cell.history),
            } for cell in self._ordered()],
        }

    @classmethod
    def restore(cls, policy: AdaptivePolicy,
                state: Mapping[str, Any]) -> "AdaptivePlanner":
        """Rebuild a planner from :meth:`state_dict` output."""
        from repro.experiment.serialize import spec_from_dict

        planner = cls.__new__(cls)
        planner.policy = policy
        planner.round = int(state["round"])
        planner.spent = int(state["spent"])
        planner.totals = {k: int(v)
                          for k, v in state["totals"].items()}
        planner._finalized = bool(state.get("finalized", False))
        planner._winners = {str(k): str(v) for k, v
                            in state.get("winners", {}).items()}
        planner.cells = {}
        for data in state["cells"]:
            spec = spec_from_dict(data["spec"])
            cell = CellState(
                cell=str(data["cell"]), label=str(data["label"]),
                coords=dict(data["coords"]), group=str(data["group"]),
                value=str(data["value"]), spec=spec,
                key=str(data["key"]),
                intervals=data["intervals"], cap=int(data["cap"]),
                full_cost=int(data["full_cost"]),
                rounds=int(data["rounds"]),
                instructions=int(data["instructions"]),
                last_instructions=int(data["last_instructions"]),
                awaiting=bool(data["awaiting"]), stop=data["stop"],
                escalated=bool(data["escalated"]),
                pruned=bool(data["pruned"]),
                has_estimate=bool(data["has_estimate"]),
                mean=float(data["mean"]), ci_lo=float(data["ci_lo"]),
                ci_hi=float(data["ci_hi"]),
                rel_error=float(data["rel_error"]),
                final_key=str(data["final_key"]),
                history=list(data.get("history", [])))
            planner.cells[cell.cell] = cell
        return planner

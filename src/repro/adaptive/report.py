"""Decision records of an adaptive orchestration.

Every grid cell ends with a :class:`CellDecision` - how many rounds it
ran, what they cost, why it stopped, and its final estimate - and the
whole grid with an :class:`AdaptiveReport` aggregating them plus the
per-group winners.  Reports ride on the returned
:class:`~repro.experiment.resultset.ResultSet` (``rs.adaptive``), in the
service's grid records and result envelopes, and in the CLI's
``--json`` output; both classes round-trip JSON.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Stop reasons a cell can retire with (see ``docs/adaptive.md``).
STOP_REASONS = (
    "target-met",    # relative error reached the policy target
    "decided",       # its comparison group's ranking is unambiguous
    "dominated",     # pruned: CI strictly below the group leader's
    "escalated",     # re-ran at full detail; the estimate is exact
    "interval-cap",  # out of intervals and escalation is "stop"
    "budget",        # refinement denied: it would overdraw the budget
    "max-rounds",    # per-cell round cap reached
    "quarantined",   # service path: the cell's run was dead-lettered
)


@dataclass(frozen=True)
class CellDecision:
    """One grid cell's journey through the adaptive rounds."""

    #: Run key of the cell's *original* (pre-refinement) spec - the
    #: stable identity linking the decision back to the submitted grid.
    cell: str
    label: str
    coords: Dict[str, Any]
    #: Decision-group anchor (every coordinate except the compare axis).
    group: str
    #: This cell's value of the compare axis.
    value: str
    rounds: int
    #: Final interval count (``None`` after escalation to full detail).
    intervals: Optional[int]
    escalated: bool
    pruned: bool
    #: Why refinement stopped - one of :data:`STOP_REASONS`.
    stop: str
    #: Detailed instructions this cell consumed across all its rounds.
    instructions: int
    #: Final estimate of the decision metric (mean and CI bounds; the
    #: CI is degenerate for escalated cells, whose estimate is exact).
    mean: float = 0.0
    ci_lo: float = 0.0
    ci_hi: float = 0.0
    rel_error: float = 0.0
    #: Run key of the final (highest-fidelity) execution.
    final_key: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellDecision":
        return cls(**{f: data[f] for f in cls.__dataclass_fields__
                      if f in data})


@dataclass(frozen=True)
class AdaptiveReport:
    """What an adaptive orchestration decided and what it cost.

    ``rounds``/``escalations``/``pruned``/``instructions_spent``/
    ``instructions_saved`` reconcile exactly with the registry counters
    (``repro_adaptive_*``) the run incremented - the planner bumps both
    from the same events.
    """

    policy: Dict[str, Any]
    cells: Tuple[CellDecision, ...]
    #: Total cell-rounds executed (the sum of every cell's ``rounds``).
    rounds: int
    escalations: int
    pruned: int
    #: Detailed instructions actually simulated across all rounds.
    instructions_spent: int
    #: What the same grid costs at exhaustive full detail
    #: (``cores x sim_instructions`` per cell).
    instructions_full: int
    #: Winning compare-axis value per decision group (groups whose
    #: comparison ended without a usable estimate are absent).
    winners: Dict[str, str] = field(default_factory=dict)

    @property
    def instructions_saved(self) -> int:
        """Budget left unspent versus the exhaustive full-detail grid."""
        return max(0, self.instructions_full - self.instructions_spent)

    @property
    def savings_pct(self) -> float:
        """``instructions_saved`` as a percentage of the full grid."""
        if self.instructions_full <= 0:
            return 0.0
        return 100.0 * self.instructions_saved / self.instructions_full

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": dict(self.policy),
            "cells": [cell.to_dict() for cell in self.cells],
            "rounds": self.rounds,
            "escalations": self.escalations,
            "pruned": self.pruned,
            "instructions_spent": self.instructions_spent,
            "instructions_full": self.instructions_full,
            "instructions_saved": self.instructions_saved,
            "savings_pct": round(self.savings_pct, 3),
            "winners": dict(self.winners),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptiveReport":
        return cls(
            policy=dict(data.get("policy", {})),
            cells=tuple(CellDecision.from_dict(c)
                        for c in data.get("cells", [])),
            rounds=int(data.get("rounds", 0)),
            escalations=int(data.get("escalations", 0)),
            pruned=int(data.get("pruned", 0)),
            instructions_spent=int(data.get("instructions_spent", 0)),
            instructions_full=int(data.get("instructions_full", 0)),
            winners={str(k): str(v)
                     for k, v in data.get("winners", {}).items()},
        )

"""BARD: Bank-Aware Replacement Decisions (paper sections IV and V).

Three variants, all driven by the :class:`~repro.core.blp_tracker.BLPTracker`:

* **BARD-E (eviction-based, IV-B)** - only acts when the baseline victim is
  *dirty* and maps to a bank the tracker marks as having a pending write.
  It then scans the set from most- to least-evictable (LRU -> MRU, or
  descending RRPV under RRIP policies) for a dirty line whose bank has *no*
  pending write and evicts that line instead.  Falls back to the default
  victim if no such line exists.

* **BARD-C (cleansing-based, IV-C)** - only acts when the baseline victim is
  *clean*.  It scans the set in the same order for a dirty line mapping to a
  bank without a pending write and *cleanses* it (writeback without
  eviction).  The victim choice itself is never changed.

* **BARD-H (hybrid, V)** - BARD-E when the victim is dirty, BARD-C when it
  is clean.  This is the configuration the paper simply calls "BARD".

Every writeback the LLC issues (eviction or cleanse) marks the destination
bank in the tracker via :meth:`BardPolicy.on_writeback`.

The optional *accuracy probe* (paper section VII-I) cross-checks each BARD
decision against the memory controller's actual write queues; it is pure
instrumentation and never influences decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.writeback.base import WritebackPolicy
from repro.core.blp_tracker import BLPTracker
from repro.dram.mapping import ZenMapping


@dataclass
class BardAccuracy:
    """Decision-accuracy counters (paper section VII-I)."""

    checked: int = 0
    incorrect: int = 0

    @property
    def error_rate(self) -> float:
        return self.incorrect / self.checked if self.checked else 0.0


class BardPolicy(WritebackPolicy):
    """BARD writeback policy for the LLC.

    Parameters
    ----------
    mapping:
        The DRAM address mapping, used to compute a line's bank id - the
        same computation the hardware's address-mapping function performs
        before indexing the BLP-Tracker (paper Fig. 7a).
    tracker:
        The shared BLP-Tracker instance.
    use_eviction:
        Enable the BARD-E behaviour (dirty victims).
    use_cleansing:
        Enable the BARD-C behaviour (clean victims).
    memctrl:
        Optional memory-controller handle for the accuracy probe.
    """

    def __init__(
        self,
        mapping: ZenMapping,
        tracker: Optional[BLPTracker] = None,
        use_eviction: bool = True,
        use_cleansing: bool = True,
        memctrl=None,
    ) -> None:
        super().__init__()
        self.mapping = mapping
        self.tracker = tracker if tracker is not None else BLPTracker(
            channels=mapping.channels
        )
        self.use_eviction = use_eviction
        self.use_cleansing = use_cleansing
        self.memctrl = memctrl
        self.accuracy = BardAccuracy()
        if use_eviction and use_cleansing:
            self.name = "bard-h"
        elif use_eviction:
            self.name = "bard-e"
        elif use_cleansing:
            self.name = "bard-c"
        else:
            self.name = "bard-off"

    # ------------------------------------------------------------------
    # Tracker plumbing
    # ------------------------------------------------------------------

    def _channel_bank(self, line_addr: int) -> tuple[int, int]:
        coord = self.mapping.map(line_addr)
        return coord.channel, coord.bank_id

    def _improves_blp(self, line_addr: int) -> bool:
        """True when the line maps to a bank without a pending write."""
        channel, bank = self._channel_bank(line_addr)
        return not self.tracker.is_pending(channel, bank)

    def on_writeback(self, line_addr: int) -> None:
        channel, bank = self._channel_bank(line_addr)
        self.tracker.mark_writeback(channel, bank)

    # ------------------------------------------------------------------
    # Victim selection (BARD-E) and cleansing (BARD-C)
    # ------------------------------------------------------------------

    def choose_victim(self, set_idx: int, default_way: int, now: int) -> int:
        self.stats.victim_selections += 1
        cache = self.cache
        lines = cache.sets[set_idx].lines
        victim = lines[default_way]

        if victim.valid and victim.dirty:
            if not self.use_eviction:
                return default_way
            if self._improves_blp(victim.line_addr):
                # The bank has no pending write: the default eviction
                # already improves BLP.
                return default_way
            way = self._scan_for_low_cost_dirty(set_idx, default_way)
            if way is None:
                return default_way
            self.stats.overrides += 1
            self._probe_accuracy(lines[way].line_addr)
            return way

        if self.use_cleansing:
            way = self._scan_for_low_cost_dirty(set_idx, None)
            if way is not None:
                self.stats.cleanses += 1
                self._probe_accuracy(lines[way].line_addr)
                cache.cleanse(set_idx, way, now)
        return default_way

    def _scan_for_low_cost_dirty(self, set_idx: int,
                                 skip_way: Optional[int]) -> Optional[int]:
        """First dirty line (most-evictable first) whose bank is write-free."""
        cache = self.cache
        lines = cache.sets[set_idx].lines
        for way in cache.repl.eviction_order(set_idx, lines):
            if way == skip_way:
                continue
            line = lines[way]
            if line.valid and line.dirty and self._improves_blp(
                line.line_addr
            ):
                return way
        return None

    # ------------------------------------------------------------------
    # Accuracy probe (instrumentation only)
    # ------------------------------------------------------------------

    def _probe_accuracy(self, line_addr: int) -> None:
        if self.memctrl is None:
            return
        self.accuracy.checked += 1
        if self.memctrl.pending_writes_for_line(line_addr) > 0:
            # BARD believed this bank was write-free, but the WRQ disagrees.
            self.accuracy.incorrect += 1


def make_bard(variant: str, mapping: ZenMapping,
              tracker: Optional[BLPTracker] = None,
              memctrl=None) -> BardPolicy:
    """Construct a BARD variant by name: 'bard-e', 'bard-c' or 'bard-h'."""
    variant = variant.lower()
    flags = {
        "bard-e": (True, False),
        "bard-c": (False, True),
        "bard-h": (True, True),
        "bard": (True, True),
    }
    if variant not in flags:
        raise ValueError(f"unknown BARD variant {variant!r}")
    use_e, use_c = flags[variant]
    return BardPolicy(mapping, tracker=tracker, use_eviction=use_e,
                      use_cleansing=use_c, memctrl=memctrl)

"""BLP-Tracker: low-cost tracking of banks with pending writes (paper IV-A).

One bit per DRAM bank per channel (64 banks/channel -> 8 bytes of SRAM per
channel per LLC slice).  A bank's bit is set when the LLC issues a writeback
mapping to it; BARD then treats that bank as "has a pending write" and avoids
sending it more writes.  The tracker never talks to the memory controller.

Self-reset (paper Fig. 7b): when all 32 bits belonging to one *sub-channel*
become 1, those 32 bits reset to 0 - the write stream has covered every
bank, so a new tracking epoch begins.

The paper assumes all LLC slices' trackers are broadcast-synchronized
(section VII-H); we model the post-synchronization state with a single
shared instance and account the broadcast bandwidth analytically in the
Table VIII benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError

#: Banks per DDR5 channel (2 sub-channels x 32 banks).
BANKS_PER_CHANNEL = 64

#: Banks per sub-channel (the self-reset granularity).
BANKS_PER_SUBCHANNEL = 32


@dataclass
class BLPTrackerStats:
    """Bookkeeping for overhead and accuracy analyses."""

    bits_set: int = 0
    self_resets: int = 0
    broadcasts: int = 0


@dataclass
class BLPTracker:
    """Per-channel bit vectors of banks that recently received a writeback."""

    channels: int = 1
    #: Ablation hook: with self_reset disabled the tracker saturates and
    #: BARD eventually finds no "low-cost" banks at all.
    self_reset: bool = True
    bits: List[int] = field(default_factory=list)
    stats: BLPTrackerStats = field(default_factory=BLPTrackerStats)

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigError("BLPTracker needs at least one channel")
        if not self.bits:
            self.bits = [0] * self.channels

    @property
    def storage_bytes_per_channel(self) -> int:
        """SRAM cost: 64 bits = 8 bytes per channel per slice (paper)."""
        return BANKS_PER_CHANNEL // 8

    def is_pending(self, channel: int, bank_id: int) -> bool:
        """Does BARD believe ``bank_id`` (0..63) has a pending write?"""
        return bool(self.bits[channel] >> bank_id & 1)

    def mark_writeback(self, channel: int, bank_id: int) -> None:
        """Record a writeback to ``bank_id``; self-reset if a sub-channel
        becomes fully covered."""
        self.stats.broadcasts += 1
        if not self.is_pending(channel, bank_id):
            self.stats.bits_set += 1
        self.bits[channel] |= 1 << bank_id
        if not self.self_reset:
            return
        sub = bank_id // BANKS_PER_SUBCHANNEL
        mask = ((1 << BANKS_PER_SUBCHANNEL) - 1) << (
            sub * BANKS_PER_SUBCHANNEL
        )
        if self.bits[channel] & mask == mask:
            self.bits[channel] &= ~mask
            self.stats.self_resets += 1

    def popcount(self, channel: int) -> int:
        """Number of banks currently marked pending on ``channel``."""
        return bin(self.bits[channel]).count("1")

    def reset(self) -> None:
        """Clear all bits (between statistics epochs)."""
        self.bits = [0] * self.channels

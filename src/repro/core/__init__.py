"""The paper's contribution: BARD and the BLP-Tracker."""

from repro.core.bard import BardAccuracy, BardPolicy, make_bard
from repro.core.blp_tracker import (
    BANKS_PER_CHANNEL,
    BANKS_PER_SUBCHANNEL,
    BLPTracker,
    BLPTrackerStats,
)

__all__ = [
    "BANKS_PER_CHANNEL",
    "BANKS_PER_SUBCHANNEL",
    "BLPTracker",
    "BLPTrackerStats",
    "BardAccuracy",
    "BardPolicy",
    "make_bard",
]

"""Discrete-event simulation engine.

A single binary-heap event queue keyed by ``(tick, sequence)`` so that
simultaneous events fire in schedule order (deterministic runs).  Components
self-schedule: cores tick themselves while they can make progress and go
dormant when stalled (woken by memory-completion callbacks), and DRAM
channels tick only while their queues are non-empty.  Simulated time is
therefore proportional to *activity*, not wall-clock cycles.

Performance notes (this is the innermost loop of every simulation):

* Each heap entry is a *slotted event record* - the 4-tuple
  ``(tick, seq, fn, args)``.  Callers pass a callable plus positional
  arguments instead of allocating a closure per event
  (``schedule(t, self._tick_sc, idx)`` rather than
  ``schedule(t, lambda: self._tick_sc(idx))``), which removes one object
  allocation and one indirection from every scheduled event.  Heap
  ordering only ever compares the ``(tick, seq)`` prefix, so the
  callable and args never participate in comparisons.
* :meth:`run` dispatches events in *same-tick batches*: the clock is
  advanced once per distinct tick and every event sharing that tick is
  fired from a tight inner loop with the heap bound to a local.
* Run termination uses the :meth:`stop` flag - a plain attribute test
  per event - rather than calling a ``until()`` predicate before every
  dispatch.  The predicate form is still supported for callers that
  need it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: One scheduled event: (tick, sequence, callable, positional args).
Event = Tuple[int, int, Callable[..., None], tuple]


class Engine:
    """Minimal deterministic discrete-event engine (integer ticks)."""

    __slots__ = ("now", "events_fired", "_heap", "_seq", "_stopped")

    def __init__(self) -> None:
        self.now: int = 0
        self.events_fired: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._stopped: bool = False

    def schedule(self, tick: int, fn: Callable[..., None], *args) -> None:
        """Schedule ``fn(*args)`` to run at ``tick`` (clamped to the present).

        Events scheduled for the same tick fire in schedule order.
        """
        if tick < self.now:
            tick = self.now
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (tick, seq, fn, args))

    def schedule_in(self, delay: int, fn: Callable[..., None],
                    *args) -> None:
        """Schedule ``fn(*args)`` after ``delay`` ticks."""
        self.schedule(self.now + delay, fn, *args)

    def stop(self) -> None:
        """Ask the current :meth:`run` call to return after this event.

        Intended to be called from inside an event callback (e.g. when the
        last core retires its budget); pending events stay queued so a
        subsequent :meth:`run` can resume them.
        """
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        heap = self._heap
        if not heap:
            return False
        tick, _, fn, args = heapq.heappop(heap)
        if tick < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = tick
        self.events_fired += 1
        fn(*args)
        return True

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_events: int = 500_000_000,
    ) -> None:
        """Run events until stopped, ``until()`` is true, or the queue drains.

        Without ``until`` this is the fast path: events are dispatched in
        same-tick batches and only the :meth:`stop` flag is tested between
        events.  With ``until`` the predicate is evaluated before every
        event, exactly as the historical engine did.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        limit = max_events
        self._stopped = False
        try:
            if until is None:
                while heap:
                    tick = heap[0][0]
                    self.now = tick
                    # Same-tick batch: drain every event at `tick` without
                    # touching the clock again.  Events scheduled *for this
                    # tick* during the batch keep the batch alive (their
                    # sequence numbers order them after the current event),
                    # so the storm guard must run per event - a zero-delay
                    # self-rescheduling loop never leaves this batch.
                    while heap and heap[0][0] == tick:
                        _, _, fn, args = pop(heap)
                        fired += 1
                        fn(*args)
                        if self._stopped:
                            return
                        if fired > limit:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; "
                                "likely an event storm"
                            )
            else:
                while heap:
                    if self._stopped or until():
                        return
                    tick, _, fn, args = pop(heap)
                    self.now = tick
                    fired += 1
                    fn(*args)
                    if fired > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely an event storm"
                        )
        finally:
            self.events_fired += fired

    def run_for(self, ticks: int, max_events: int = 500_000_000) -> None:
        """Run until simulated time advances by ``ticks``.

        Honours the same run controls as :meth:`run`: a :meth:`stop`
        call from inside an event halts at that event boundary (the
        clock stays at the stopping event's tick), and ``max_events``
        bounds the dispatch count so a zero-delay self-rescheduling
        event cannot spin forever inside the window.
        """
        deadline = self.now + ticks
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        limit = max_events
        self._stopped = False
        try:
            while heap and heap[0][0] <= deadline:
                tick, _, fn, args = pop(heap)
                self.now = tick
                fired += 1
                fn(*args)
                if self._stopped:
                    return
                if fired > limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely an event storm"
                    )
        finally:
            self.events_fired += fired
        if self.now < deadline:
            self.now = deadline

"""Discrete-event simulation engine.

A single binary-heap event queue keyed by ``(tick, sequence)`` so that
simultaneous events fire in schedule order (deterministic runs).  Components
self-schedule: cores tick themselves while they can make progress and go
dormant when stalled (woken by memory-completion callbacks), and DRAM
channels tick only while their queues are non-empty.  Simulated time is
therefore proportional to *activity*, not wall-clock cycles.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple

from repro.errors import SimulationError

Event = Tuple[int, int, Callable[[], None]]


class Engine:
    """Minimal deterministic discrete-event engine (integer ticks)."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_fired = 0

    def schedule(self, tick: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at ``tick`` (clamped to the present)."""
        if tick < self.now:
            tick = self.now
        heapq.heappush(self._heap, (tick, next(self._seq), fn))

    def schedule_in(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` after ``delay`` ticks."""
        self.schedule(self.now + delay, fn)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        tick, _, fn = heapq.heappop(self._heap)
        if tick < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = tick
        self._events_fired += 1
        fn()
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_events: int = 500_000_000,
    ) -> None:
        """Run events until ``until()`` is true or the queue drains."""
        fired = 0
        while self._heap:
            if until is not None and until():
                return
            self.step()
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely an event storm"
                )

    def run_for(self, ticks: int) -> None:
        """Run until simulated time advances by ``ticks``."""
        deadline = self.now + ticks
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if self.now < deadline:
            self.now = deadline

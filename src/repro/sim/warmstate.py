"""Warm-state checkpoints for functional warmup.

A :class:`WarmState` captures everything a *functional* warmup produces:
per-cache tag arrays with dirty bits, replacement-policy metadata,
prefetcher tables, per-core TLB contents, fetch-line cursors, and how
far each core's trace was consumed.  Restoring it into a freshly built
:class:`~repro.sim.system.System` is equivalent to re-running the same
functional warmup - which is what lets a :class:`~repro.experiment.Session`
execute the warmup for an N-policy comparison grid once and fork the
snapshot into every policy/writeback variant.

The warm state is deliberately *policy-independent*: the functional warm
path never consults the LLC writeback policy (victim choice uses the
replacement policy alone, and no writebacks are "issued" toward memory),
so a snapshot taken under one ``llc_writeback`` setting restores exactly
into a system using another.  :func:`warm_config_signature` hashes the
configuration fields the warm state *does* depend on - core count, cache
geometries/replacement/prefetchers, and the warmup budget - and guards
every restore.

Detailed warmup cannot be snapshotted: its warm state includes in-flight
MSHRs, queued DRAM commands, and pending engine events.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.replacement.base import ReplacementPolicy
    from repro.config.system import SystemConfig
    from repro.cpu.tlb import HierarchyState
    from repro.prefetch.base import Prefetcher

#: One valid cache line: (line_addr, dirty, signature, reused, prefetched).
LineState = Tuple[int, bool, int, bool, bool]


def warm_config_signature(config: "SystemConfig") -> str:
    """Stable hash of the config fields a functional warm state depends on.

    Two configs with equal signatures produce identical warm state from
    the same (workload, seed), so their runs can share one checkpoint.
    DRAM parameters, ROB/issue/retire widths, ``sim_instructions`` and
    the LLC writeback policy are deliberately excluded - none of them
    influence the functional warm path.  So are the per-level MSHR
    timing knobs (``mshrs``, ``mshr_targets``, ``hit_under_miss``,
    ``mshr_pipeline``): the functional warm path has no MSHRs at all,
    which lets every point of an ``mshr`` sweep share one checkpoint.
    """
    payload = {
        "cores": config.cores,
        "warmup_instructions": config.warmup_instructions,
        "warmup_mode": config.warmup_mode,
        "l1i": _warm_cache_fields(config.l1i),
        "l1d": _warm_cache_fields(config.l1d),
        "l2": _warm_cache_fields(config.l2),
        "llc": _warm_cache_fields(config.llc),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _warm_cache_fields(cache_config) -> dict:
    """One level's config minus the fields the warm path ignores."""
    fields = dataclasses.asdict(cache_config)
    for timing_only in ("mshrs", "mshr_targets", "hit_under_miss",
                        "mshr_pipeline"):
        fields.pop(timing_only, None)
    return fields


@dataclass
class CacheWarmState:
    """One cache's warm state: tag array + policy/prefetcher metadata."""

    #: Per set, per way: the line's state, or None for an invalid way.
    lines: List[List[Optional[LineState]]]
    #: Deep copy of the replacement policy (recency stamps, RRPVs, ...).
    repl: "ReplacementPolicy"
    #: Deep copy of the prefetcher (delta tables, signatures), if any.
    prefetcher: Optional["Prefetcher"]


@dataclass
class CoreWarmState:
    """One core's warm state: TLB contents and trace position."""

    dtlb: "HierarchyState"
    itlb: "HierarchyState"
    #: Last instruction-fetch line (suppresses redundant L1I accesses).
    last_fetch_line: int
    #: Trace records the warmup consumed; restore fast-forwards a fresh
    #: trace iterator by this many records (generation is deterministic
    #: and cheap next to detailed simulation).
    consumed: int


@dataclass
class WarmState:
    """A complete post-warmup snapshot of a :class:`System`."""

    #: :func:`warm_config_signature` of the config that produced this.
    signature: str
    #: Caches in System order: [llc, *l2s, *l1ds, *l1is].
    caches: List[CacheWarmState]
    cores: List[CoreWarmState]

"""Simulation infrastructure: engine, system builder, runner, results."""

from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController
from repro.sim.results import RunResult
from repro.sim.runner import (
    PolicyComparison,
    compare_policies,
    gmean_speedups,
    run_workload,
)
from repro.sim.system import System

__all__ = [
    "Engine",
    "MemoryController",
    "PolicyComparison",
    "RunResult",
    "System",
    "compare_policies",
    "gmean_speedups",
    "run_workload",
]

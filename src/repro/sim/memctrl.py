"""Memory controller: the bridge between the LLC and the DRAM channels.

Translates line addresses to DRAM coordinates with the configured mapping
and submits :class:`~repro.dram.commands.MemRequest` objects to the right
channel.  Also exposes the ground-truth pending-write probe used by the
BLP-Tracker accuracy analysis (paper section VII-I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, Op
from repro.dram.mapping import ZenMapping


@dataclass
class MemCtrlStats:
    reads: int = 0
    writes: int = 0


class MemoryController:
    """Routes LLC traffic into the DDR5 channels."""

    def __init__(self, mapping: ZenMapping, channels: List[Channel]) -> None:
        if len(channels) != mapping.channels:
            raise ValueError(
                f"mapping expects {mapping.channels} channels, "
                f"got {len(channels)}"
            )
        self.mapping = mapping
        self.channels = channels
        self.stats = MemCtrlStats()

    def read(self, line_addr: int, now: int, on_done, core_id: int,
             is_prefetch: bool, pc: int = 0) -> None:
        coord = self.mapping.map(line_addr)
        self.stats.reads += 1
        req = MemRequest(
            addr=line_addr,
            op=Op.READ,
            coord=coord,
            arrival_tick=now,
            core_id=core_id,
            is_prefetch=is_prefetch,
            on_complete=on_done,
        )
        self.channels[coord.channel].submit(req)

    def writeback(self, line_addr: int, now: int) -> None:
        coord = self.mapping.map(line_addr)
        self.stats.writes += 1
        req = MemRequest(
            addr=line_addr,
            op=Op.WRITE,
            coord=coord,
            arrival_tick=now,
            on_complete=None,
        )
        self.channels[coord.channel].submit(req)

    def pending_writes_for_line(self, line_addr: int) -> int:
        """Ground truth for the BLP-Tracker accuracy probe."""
        coord = self.mapping.map(line_addr)
        return self.channels[coord.channel].pending_writes_for_bank(
            coord.bank_id
        )

    def finalize(self) -> None:
        for channel in self.channels:
            channel.finalize()

"""System builder: wires cores, caches, BARD, and DRAM from a config."""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro import telemetry

from repro.cache.cache import Cache, CacheStats
from repro.cache.replacement import make_replacement
from repro.cache.writeback import make_writeback_policy
from repro.cache.writeback.base import WritebackPolicyStats
from repro.config.system import SystemConfig
from repro.core.bard import BardPolicy
from repro.core.blp_tracker import BLPTracker
from repro.cpu.core import Core, CoreStats
from repro.cpu.tlb import TLBHierarchy
from repro.cpu.trace import TraceRecord
from repro.dram.channel import Channel, ChannelStats
from repro.dram.mapping import ZenMapping
from repro.dram.stats import SubChannelStats
from repro.dram.timing import ddr5_4800_x4, ddr5_4800_x8
from repro.errors import SimulationError
from repro.prefetch import make_prefetcher
from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController
from repro.sim.results import RunResult
from repro.sim.warmstate import CoreWarmState, WarmState, \
    warm_config_signature

TraceFactory = Callable[[int], Iterator[TraceRecord]]


class System:
    """A complete simulated machine built from a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig, traces: TraceFactory) -> None:
        self.config = config
        self.engine = Engine()
        # Phase timings accumulate here when telemetry is on; None keeps
        # the disabled path branch-free at every span site (the span()
        # helper itself is the gate and ignores a None breakdown).
        self._phases: Optional[Dict[str, float]] = \
            {} if telemetry.enabled() else None

        timing = ddr5_4800_x8() if config.dram.device == "x8" else (
            ddr5_4800_x4()
        )
        self.mapping = ZenMapping(channels=config.dram.channels,
                                  pbpl=config.dram.pbpl)
        self.channels: List[Channel] = []
        for _ in range(config.dram.channels):
            channel = Channel(
                timing,
                rq_capacity=config.dram.rq_capacity,
                wq_capacity=config.dram.wq_capacity,
                wq_high=config.dram.wq_high,
                wq_low=config.dram.wq_low,
                ideal_writes=config.dram.ideal_writes,
                drain_policy=config.dram.drain_policy,
                refresh=config.dram.refresh,
            )
            channel.attach(self.engine)
            self.channels.append(channel)
        self.memctrl = MemoryController(self.mapping, self.channels)

        self.tracker = BLPTracker(channels=config.dram.channels)
        self.llc_policy = make_writeback_policy(
            config.llc_writeback,
            self.mapping,
            tracker=self.tracker,
            memctrl=self.memctrl,
        )
        self.llc = Cache(
            "LLC",
            config.llc.size_bytes,
            config.llc.ways,
            config.llc.hit_latency,
            config.llc.mshrs,
            make_replacement(
                config.llc.replacement,
                config.llc.size_bytes // (config.llc.ways * 64),
                config.llc.ways,
            ),
            self.engine,
            self.memctrl,
            writeback_policy=self.llc_policy,
            mshr_targets=config.llc.mshr_targets,
            hit_under_miss=config.llc.hit_under_miss,
            pipeline=config.llc.mshr_pipeline,
        )

        self.cores: List[Core] = []
        self.l2s: List[Cache] = []
        self.l1ds: List[Cache] = []
        self.l1is: List[Cache] = []
        self._finished_count = 0
        self._warmed = False
        for core_id in range(config.cores):
            l2 = self._make_cache(f"L2-{core_id}", config.l2, self.llc)
            l1d = self._make_cache(f"L1D-{core_id}", config.l1d, l2)
            l1i = self._make_cache(f"L1I-{core_id}", config.l1i, l2)
            dtlb = TLBHierarchy(name=f"dtlb-{core_id}")
            itlb = TLBHierarchy(name=f"itlb-{core_id}")
            core = Core(
                core_id,
                traces(core_id),
                self.engine,
                l1d,
                l1i,
                dtlb,
                itlb,
                rob_size=config.rob_size,
                issue_width=config.issue_width,
                retire_width=config.retire_width,
                budget=config.warmup_instructions,
                on_finish=self._core_finished,
            )
            self.cores.append(core)
            self.l2s.append(l2)
            self.l1ds.append(l1d)
            self.l1is.append(l1i)

    def _make_cache(self, name: str, cfg, lower) -> Cache:
        return Cache(
            name,
            cfg.size_bytes,
            cfg.ways,
            cfg.hit_latency,
            cfg.mshrs,
            make_replacement(cfg.replacement,
                             cfg.size_bytes // (cfg.ways * 64), cfg.ways),
            self.engine,
            lower,
            prefetcher=make_prefetcher(cfg.prefetcher),
            mshr_targets=cfg.mshr_targets,
            hit_under_miss=cfg.hit_under_miss,
            pipeline=cfg.mshr_pipeline,
        )

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    def _core_finished(self, core: Core) -> None:
        self._finished_count += 1
        if self._finished_count >= len(self.cores):
            # Stop the engine from inside the finishing event: cheaper than
            # evaluating an `until()` predicate before every dispatch, and
            # it halts at exactly the same event boundary.
            self.engine.stop()

    def _all_finished(self) -> bool:
        return self._finished_count >= len(self.cores)

    def _run_phase(self) -> None:
        self._finished_count = sum(1 for c in self.cores if c.finished)
        if self._all_finished():
            return
        self.engine.run()

    def _run_quota(self, quota: int) -> List["CoreStats"]:
        """Run until every core retires ``quota`` more instructions.

        The soft-quota counterpart of :meth:`_run_phase` for sampled
        intervals: each core's counters reset and are snapshotted the
        tick its quota is reached, but the core *keeps executing* until
        the slowest core gets there - memory contention never
        artificially drains the way it would if finished cores went
        idle.  Returns the per-core stat snapshots, each holding exactly
        ``quota`` retired instructions.
        """
        pending = len(self.cores)
        snapshots: List[Optional[CoreStats]] = [None] * len(self.cores)

        def on_quota(core: Core) -> None:
            nonlocal pending
            snapshots[core.core_id] = copy.copy(core.stats)
            pending -= 1
            if pending == 0:
                self.engine.stop()

        for core in self.cores:
            core.begin_quota(quota, on_quota)
        self.engine.run()
        if pending:
            raise SimulationError(
                "event queue drained before every core reached its "
                "sampling quota")
        return snapshots

    def reset_stats(self) -> None:
        """Start a fresh measurement epoch (end of warmup)."""
        for cache in [self.llc, *self.l2s, *self.l1ds, *self.l1is]:
            cache.stats = CacheStats()
        for channel in self.channels:
            channel.stats = ChannelStats()
            for sc in channel.subchannels:
                sc.stats = SubChannelStats()
        if self.llc_policy is not None:
            self.llc_policy.stats = WritebackPolicyStats()
            if isinstance(self.llc_policy, BardPolicy):
                self.llc_policy.accuracy = type(self.llc_policy.accuracy)()

    # ------------------------------------------------------------------
    # Warmup and warm-state checkpoints
    # ------------------------------------------------------------------

    def warm_up(self) -> None:
        """Execute the warmup phase now (idempotent; :meth:`run` skips it).

        ``warmup_mode="detailed"`` runs the warmup through the full
        timing model, exactly as :meth:`run` historically did.
        ``"functional"`` drives each core's trace straight through the
        cache/TLB/replacement/prefetcher state machines with zero engine
        events - no ROB, no MSHRs, no DRAM timing - so the engine clock
        stays at 0 and measurement starts from a warm hierarchy at tick
        0.  Either way statistics are reset so measurement begins a
        clean epoch.
        """
        if self._warmed:
            return
        self._warmed = True
        config = self.config
        if config.warmup_instructions <= 0:
            return
        if config.warmup_mode == "functional":
            with telemetry.span("warmup.functional",
                                breakdown=self._phases,
                                instructions=config.warmup_instructions):
                for core in self.cores:
                    core.warm_up(config.warmup_instructions)
                self._prime_writeback_policy()
        else:
            with telemetry.span("warmup.detailed",
                                breakdown=self._phases,
                                instructions=config.warmup_instructions):
                for core in self.cores:
                    core.start()
                self._run_phase()
        self.reset_stats()

    def _prime_writeback_policy(self) -> None:
        """Rebuild the LLC policy's dirty index from the warm tag array.

        Replays ``on_dirty`` for every resident dirty LLC line in
        canonical (set, way) order.  Running the same walk after a
        functional warmup and after a checkpoint restore makes both
        paths leave bit-identical policy state, regardless of the order
        lines became dirty while warming.
        """
        policy = self.llc_policy
        if policy is None:
            return
        policy.reset_dirty_tracking()
        for cset in self.llc.sets:
            for line in cset.lines:
                if line.valid and line.dirty:
                    policy.on_dirty(line.line_addr)

    def _warm_caches(self) -> List[Cache]:
        """Caches in canonical snapshot order."""
        return [self.llc, *self.l2s, *self.l1ds, *self.l1is]

    def drain(self) -> None:
        """Functionally complete every in-flight cache miss, top down.

        Upper levels drain first so their warm installs (and any warm
        writebacks of evicted dirty victims) land in still-live lower
        levels; the LLC drains last.  The writeback policy's dirty index
        is re-primed afterwards (the warm path never consults it).
        """
        for cache in [*self.l1is, *self.l1ds, *self.l2s, self.llc]:
            cache.drain(self.engine.now)
        self._prime_writeback_policy()

    def _bank_command_totals(self) -> Tuple[int, int]:
        """Lifetime (activates, precharges) summed over every bank."""
        acts = pres = 0
        for channel in self.channels:
            for sc in channel.subchannels:
                for bank in sc.banks:
                    acts += bank.stats.activates
                    pres += bank.stats.precharges
        return acts, pres

    def snapshot_warm_state(self) -> WarmState:
        """Deep-copied post-warmup state, restorable into a fresh system.

        Requires ``warmup_mode="functional"``; warms the system first if
        :meth:`warm_up` has not run yet.  The snapshot is independent of
        this system - its caches/TLBs/traces may keep running without
        disturbing it - and independent of the LLC writeback policy, so
        one snapshot forks into every policy variant of a comparison
        grid (see :meth:`restore_warm_state`).
        """
        if self.config.warmup_mode != "functional":
            raise SimulationError(
                "warm-state snapshots require warmup_mode='functional' "
                "(a detailed warmup leaves in-flight timing state that "
                "cannot be checkpointed)")
        self.warm_up()
        if self.engine.now or self.engine.events_fired:
            raise SimulationError(
                "snapshot_warm_state must run before measurement starts")
        consumed = self.config.warmup_instructions
        with telemetry.span("checkpoint.snapshot",
                            breakdown=self._phases):
            return WarmState(
                signature=warm_config_signature(self.config),
                caches=[c.snapshot_warm_state()
                        for c in self._warm_caches()],
                cores=[
                    CoreWarmState(
                        dtlb=core.dtlb.snapshot(),
                        itlb=core.itlb.snapshot(),
                        last_fetch_line=core._last_fetch_line,
                        consumed=consumed,
                    )
                    for core in self.cores
                ],
            )

    def restore_warm_state(self, state: WarmState) -> None:
        """Adopt a snapshot's warm state instead of executing warmup.

        Must be called on a freshly built system whose warmup-relevant
        configuration matches the snapshot's (same cores, cache
        geometries, replacement/prefetcher settings, and warmup budget -
        the DRAM configuration and LLC writeback policy may differ).
        The caller is responsible for building the system from the same
        (workload, seed): the snapshot records how far each core's trace
        was consumed, and this method fast-forwards the fresh trace
        iterators to that point.
        """
        if warm_config_signature(self.config) != state.signature:
            raise SimulationError(
                "warm-state snapshot does not match this system's "
                "warmup-relevant configuration")
        if self.engine.now or self.engine.events_fired or self._warmed:
            raise SimulationError(
                "restore_warm_state requires a freshly built system")
        with telemetry.span("checkpoint.restore",
                            breakdown=self._phases):
            for cache, cache_state in zip(self._warm_caches(),
                                          state.caches):
                cache.restore_warm_state(cache_state)
            for core, core_state in zip(self.cores, state.cores):
                core.dtlb.restore(core_state.dtlb)
                core.itlb.restore(core_state.itlb)
                core._last_fetch_line = core_state.last_fetch_line
                core.skip_trace(core_state.consumed)
            self._prime_writeback_policy()
        self._warmed = True

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(self, label: Optional[str] = None) -> RunResult:
        """Warmup, reset statistics, measure, and collect the result.

        When the config carries a :class:`~repro.sampling.SamplingConfig`
        the measurement epoch is sampled (alternating fast-forward and
        detailed intervals, see :meth:`run_sampled`) instead of simulated
        monolithically.
        """
        config = self.config
        if config.sampling is not None:
            return self.run_sampled(label=label)
        self.warm_up()
        start_tick = self.engine.now
        with telemetry.span("measure", breakdown=self._phases,
                            instructions=config.sim_instructions):
            for core in self.cores:
                core.reset_measurement(config.sim_instructions)
                core.start()
            self._run_phase()
            self.memctrl.finalize()
        result = self._collect(
            label or (config.llc_writeback or "baseline"),
            start_tick=start_tick, start_events=0)
        if self._phases is not None:
            result.phase_breakdown = dict(self._phases)
        return result

    def _collect(self, label: str, start_tick: int, start_events: int,
                 core_stats=None) -> RunResult:
        """Snapshot the counters of the epoch begun at ``start_tick``.

        ``core_stats`` overrides the per-core counters (quota-driven
        sampled intervals snapshot them at the quota crossing; the live
        stats keep accumulating while slower cores finish their
        windows).
        """
        if core_stats is None:
            core_stats = [c.stats for c in self.cores]
        finish = max(s.finish_tick for s in core_stats)
        dram_total = SubChannelStats()
        for channel in self.channels:
            dram_total.merge_from(channel.aggregate_stats())
        instructions = sum(s.retired for s in core_stats)
        return RunResult(
            events=self.engine.events_fired - start_events,
            label=label,
            cores=self.config.cores,
            instructions=instructions,
            elapsed_ticks=finish - start_tick,
            ipc=[s.ipc for s in core_stats],
            llc=self.llc.stats.snapshot(),
            mshr_stall_cycles=sum(s.mshr_stall_cycles
                                  for s in core_stats),
            dram=dram_total,
            channels=[copy.copy(c.stats) for c in self.channels],
            subchannel_count=2 * len(self.channels),
            wb_stats=(copy.copy(self.llc_policy.stats)
                      if self.llc_policy else None),
            bard_accuracy=(copy.copy(self.llc_policy.accuracy)
                           if isinstance(self.llc_policy, BardPolicy)
                           else None),
            llc_demand_accesses=self.llc.stats.demand_accesses,
        )

    def run_sampled(self, label: Optional[str] = None) -> RunResult:
        """Sampled measurement: fast-forward / warm / measure intervals.

        Implements the plan in ``config.sampling`` (see
        ``docs/sampling.md``).  After the usual functional warmup, each
        measurement interval is reached by raw trace fast-forwarding
        (:meth:`~repro.cpu.core.Core.skip_trace`) followed by
        ``warm_instructions`` of functional warming
        (:meth:`~repro.cpu.core.Core.warm_up` - the same machinery the
        warmup phase uses, keeping cache/TLB/replacement/prefetcher
        state warm), then measured in full detail for
        ``interval_instructions`` per core.  Statistics reset at each
        interval start, so every interval yields an independent
        :class:`RunResult` snapshot; the aggregate result sums the
        interval counters and carries a
        :class:`~repro.sampling.stats.SamplingSummary` with per-metric
        CLT confidence intervals.

        In adaptive mode (``target_relative_error`` set) intervals keep
        coming - at the same period - until the mean-IPC relative CI
        half-width reaches the target or ``max_intervals`` is hit.
        """
        from repro.sampling import SAMPLE_METRICS, SamplingSummary, \
            aggregate_results, collect_metric_values, interval_starts, \
            summarize, validate_plan

        config = self.config
        sampling = config.sampling
        if sampling is None:
            raise SimulationError(
                "run_sampled requires a sampling config; use run() for "
                "full measurement")
        epoch = config.sim_instructions
        period = validate_plan(sampling, epoch)
        starts = interval_starts(sampling, epoch)

        self.warm_up()
        run_label = label or (config.llc_writeback or "baseline")
        # The interval the plan cannot run past: its cores stop at their
        # budget exactly like the end of a full run (which keeps a
        # 1-interval sample covering the epoch bit-identical to the full
        # run); every earlier interval uses soft quotas so no core ever
        # stops executing mid-plan.
        last_index = (sampling.intervals
                      if sampling.target_relative_error is None
                      else sampling.max_intervals) - 1
        intervals: List[RunResult] = []
        starts_used: List[int] = []
        ipc_values: List[float] = []
        retired = [0] * len(self.cores)
        cycles = [0.0] * len(self.cores)
        consumed = 0
        index = 0
        while True:
            start = next(starts)
            gap = start - consumed
            if gap > 0:
                with telemetry.span(f"sampling.gap[{index}]",
                                    breakdown=self._phases,
                                    instructions=gap):
                    # The gap is spent, from the back: a detailed-but-
                    # unmeasured pipeline re-warm, functional cache
                    # warming before that, raw trace skipping for the
                    # rest.
                    detail = min(gap,
                                 sampling.detailed_warm_instructions)
                    warm = min(gap - detail, sampling.warm_instructions)
                    skip = gap - detail - warm
                    if warm:
                        # Functional warming rewrites tag arrays in
                        # place; a detailed fill still in flight from
                        # the previous interval would land on a
                        # rewritten set and corrupt the tag index.  Idle
                        # the cores and complete the pipeline first (the
                        # queue empties: channels stop ticking once
                        # reads drain and the write queue is below its
                        # watermark).
                        for core in self.cores:
                            core.pause()
                        self.engine.run()
                    for core in self.cores:
                        if skip:
                            core.skip_trace(skip)
                        if warm:
                            core.warm_up(warm)
                    if warm:
                        self._prime_writeback_policy()
                    if detail:
                        # Discarded detailed window: refills the ROB,
                        # MSHRs, and memory queues so the measured
                        # interval starts from steady pipeline state, as
                        # a continuous run would have it.
                        self._run_quota(detail)
                    consumed += gap
            self.reset_stats()
            start_tick = self.engine.now
            start_events = self.engine.events_fired
            start_acts, start_pres = self._bank_command_totals()
            with telemetry.span(
                    f"sampling.interval[{index}]",
                    breakdown=self._phases,
                    instructions=sampling.interval_instructions):
                if index == last_index:
                    for core in self.cores:
                        core.reset_measurement(
                            sampling.interval_instructions)
                        core.start()
                    self._run_phase()
                    core_stats = None
                else:
                    core_stats = self._run_quota(
                        sampling.interval_instructions)
            consumed += sampling.interval_instructions
            starts_used.append(start)
            interval_cores = core_stats if core_stats is not None \
                else [c.stats for c in self.cores]
            ipc_values.append(
                sum(s.ipc for s in interval_cores) / len(interval_cores))
            done = index == last_index \
                or self._sampling_done(sampling, ipc_values)
            if done:
                # Close the in-flight drain episode and roll per-bank
                # command counters up exactly once, as a full run would.
                self.memctrl.finalize()
            interval_result = self._collect(run_label, start_tick,
                                            start_events, core_stats)
            # Per-bank ACT/PRE counters accumulate for the system's whole
            # life and only roll into the sub-channel stats at finalize
            # (i.e. once, after the last interval) - attribute each
            # interval its own delta so discarded re-warm windows never
            # inflate the sample's command counts (and its power model).
            acts, pres = self._bank_command_totals()
            interval_result.dram.activates = acts - start_acts
            interval_result.dram.precharges = pres - start_pres
            intervals.append(interval_result)
            for core_id, stats in enumerate(interval_cores):
                retired[core_id] += stats.retired
                cycles[core_id] += stats.cycles
            if done:
                break
            index += 1

        values = collect_metric_values(intervals, SAMPLE_METRICS)
        summary = SamplingSummary(
            scheme=sampling.scheme,
            intervals=len(intervals),
            interval_instructions=sampling.interval_instructions,
            period_instructions=period,
            warm_instructions=sampling.warm_instructions,
            confidence=sampling.confidence,
            starts=starts_used,
            metrics=summarize(values, sampling.confidence),
        )
        result = aggregate_results(intervals, retired, cycles,
                                   run_label, summary)
        if self._phases is not None:
            result.phase_breakdown = dict(self._phases)
        return result

    @staticmethod
    def _sampling_done(sampling, ipc_values: List[float]) -> bool:
        """Whether the interval just measured completes the plan."""
        n = len(ipc_values)
        if n < sampling.intervals:
            return False
        target = sampling.target_relative_error
        if target is None:
            return True
        if n >= sampling.max_intervals:
            return True
        from repro.sampling import relative_error

        return n >= 2 and \
            relative_error(ipc_values, sampling.confidence) <= target

"""System builder: wires cores, caches, BARD, and DRAM from a config."""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional

from repro.cache.cache import Cache, CacheStats
from repro.cache.replacement import make_replacement
from repro.cache.writeback import make_writeback_policy
from repro.cache.writeback.base import WritebackPolicyStats
from repro.config.system import SystemConfig
from repro.core.bard import BardPolicy
from repro.core.blp_tracker import BLPTracker
from repro.cpu.core import Core
from repro.cpu.tlb import TLBHierarchy
from repro.cpu.trace import TraceRecord
from repro.dram.channel import Channel, ChannelStats
from repro.dram.mapping import ZenMapping
from repro.dram.stats import SubChannelStats
from repro.dram.timing import ddr5_4800_x4, ddr5_4800_x8
from repro.errors import SimulationError
from repro.prefetch import make_prefetcher
from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController
from repro.sim.results import RunResult
from repro.sim.warmstate import CoreWarmState, WarmState, \
    warm_config_signature

TraceFactory = Callable[[int], Iterator[TraceRecord]]


class System:
    """A complete simulated machine built from a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig, traces: TraceFactory) -> None:
        self.config = config
        self.engine = Engine()

        timing = ddr5_4800_x8() if config.dram.device == "x8" else (
            ddr5_4800_x4()
        )
        self.mapping = ZenMapping(channels=config.dram.channels,
                                  pbpl=config.dram.pbpl)
        self.channels: List[Channel] = []
        for _ in range(config.dram.channels):
            channel = Channel(
                timing,
                rq_capacity=config.dram.rq_capacity,
                wq_capacity=config.dram.wq_capacity,
                wq_high=config.dram.wq_high,
                wq_low=config.dram.wq_low,
                ideal_writes=config.dram.ideal_writes,
                drain_policy=config.dram.drain_policy,
                refresh=config.dram.refresh,
            )
            channel.attach(self.engine)
            self.channels.append(channel)
        self.memctrl = MemoryController(self.mapping, self.channels)

        self.tracker = BLPTracker(channels=config.dram.channels)
        self.llc_policy = make_writeback_policy(
            config.llc_writeback,
            self.mapping,
            tracker=self.tracker,
            memctrl=self.memctrl,
        )
        self.llc = Cache(
            "LLC",
            config.llc.size_bytes,
            config.llc.ways,
            config.llc.hit_latency,
            config.llc.mshrs,
            make_replacement(
                config.llc.replacement,
                config.llc.size_bytes // (config.llc.ways * 64),
                config.llc.ways,
            ),
            self.engine,
            self.memctrl,
            writeback_policy=self.llc_policy,
        )

        self.cores: List[Core] = []
        self.l2s: List[Cache] = []
        self.l1ds: List[Cache] = []
        self.l1is: List[Cache] = []
        self._finished_count = 0
        self._warmed = False
        for core_id in range(config.cores):
            l2 = self._make_cache(f"L2-{core_id}", config.l2, self.llc)
            l1d = self._make_cache(f"L1D-{core_id}", config.l1d, l2)
            l1i = self._make_cache(f"L1I-{core_id}", config.l1i, l2)
            dtlb = TLBHierarchy(name=f"dtlb-{core_id}")
            itlb = TLBHierarchy(name=f"itlb-{core_id}")
            core = Core(
                core_id,
                traces(core_id),
                self.engine,
                l1d,
                l1i,
                dtlb,
                itlb,
                rob_size=config.rob_size,
                issue_width=config.issue_width,
                retire_width=config.retire_width,
                budget=config.warmup_instructions,
                on_finish=self._core_finished,
            )
            self.cores.append(core)
            self.l2s.append(l2)
            self.l1ds.append(l1d)
            self.l1is.append(l1i)

    def _make_cache(self, name: str, cfg, lower) -> Cache:
        return Cache(
            name,
            cfg.size_bytes,
            cfg.ways,
            cfg.hit_latency,
            cfg.mshrs,
            make_replacement(cfg.replacement,
                             cfg.size_bytes // (cfg.ways * 64), cfg.ways),
            self.engine,
            lower,
            prefetcher=make_prefetcher(cfg.prefetcher),
        )

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    def _core_finished(self, core: Core) -> None:
        self._finished_count += 1
        if self._finished_count >= len(self.cores):
            # Stop the engine from inside the finishing event: cheaper than
            # evaluating an `until()` predicate before every dispatch, and
            # it halts at exactly the same event boundary.
            self.engine.stop()

    def _all_finished(self) -> bool:
        return self._finished_count >= len(self.cores)

    def _run_phase(self) -> None:
        self._finished_count = sum(1 for c in self.cores if c.finished)
        if self._all_finished():
            return
        self.engine.run()

    def reset_stats(self) -> None:
        """Start a fresh measurement epoch (end of warmup)."""
        for cache in [self.llc, *self.l2s, *self.l1ds, *self.l1is]:
            cache.stats = CacheStats()
        for channel in self.channels:
            channel.stats = ChannelStats()
            for sc in channel.subchannels:
                sc.stats = SubChannelStats()
        if self.llc_policy is not None:
            self.llc_policy.stats = WritebackPolicyStats()
            if isinstance(self.llc_policy, BardPolicy):
                self.llc_policy.accuracy = type(self.llc_policy.accuracy)()

    # ------------------------------------------------------------------
    # Warmup and warm-state checkpoints
    # ------------------------------------------------------------------

    def warm_up(self) -> None:
        """Execute the warmup phase now (idempotent; :meth:`run` skips it).

        ``warmup_mode="detailed"`` runs the warmup through the full
        timing model, exactly as :meth:`run` historically did.
        ``"functional"`` drives each core's trace straight through the
        cache/TLB/replacement/prefetcher state machines with zero engine
        events - no ROB, no MSHRs, no DRAM timing - so the engine clock
        stays at 0 and measurement starts from a warm hierarchy at tick
        0.  Either way statistics are reset so measurement begins a
        clean epoch.
        """
        if self._warmed:
            return
        self._warmed = True
        config = self.config
        if config.warmup_instructions <= 0:
            return
        if config.warmup_mode == "functional":
            for core in self.cores:
                core.warm_up(config.warmup_instructions)
            self._prime_writeback_policy()
        else:
            for core in self.cores:
                core.start()
            self._run_phase()
        self.reset_stats()

    def _prime_writeback_policy(self) -> None:
        """Rebuild the LLC policy's dirty index from the warm tag array.

        Replays ``on_dirty`` for every resident dirty LLC line in
        canonical (set, way) order.  Running the same walk after a
        functional warmup and after a checkpoint restore makes both
        paths leave bit-identical policy state, regardless of the order
        lines became dirty while warming.
        """
        policy = self.llc_policy
        if policy is None:
            return
        policy.reset_dirty_tracking()
        for cset in self.llc.sets:
            for line in cset.lines:
                if line.valid and line.dirty:
                    policy.on_dirty(line.line_addr)

    def _warm_caches(self) -> List[Cache]:
        """Caches in canonical snapshot order."""
        return [self.llc, *self.l2s, *self.l1ds, *self.l1is]

    def snapshot_warm_state(self) -> WarmState:
        """Deep-copied post-warmup state, restorable into a fresh system.

        Requires ``warmup_mode="functional"``; warms the system first if
        :meth:`warm_up` has not run yet.  The snapshot is independent of
        this system - its caches/TLBs/traces may keep running without
        disturbing it - and independent of the LLC writeback policy, so
        one snapshot forks into every policy variant of a comparison
        grid (see :meth:`restore_warm_state`).
        """
        if self.config.warmup_mode != "functional":
            raise SimulationError(
                "warm-state snapshots require warmup_mode='functional' "
                "(a detailed warmup leaves in-flight timing state that "
                "cannot be checkpointed)")
        self.warm_up()
        if self.engine.now or self.engine.events_fired:
            raise SimulationError(
                "snapshot_warm_state must run before measurement starts")
        consumed = self.config.warmup_instructions
        return WarmState(
            signature=warm_config_signature(self.config),
            caches=[c.snapshot_warm_state() for c in self._warm_caches()],
            cores=[
                CoreWarmState(
                    dtlb=core.dtlb.snapshot(),
                    itlb=core.itlb.snapshot(),
                    last_fetch_line=core._last_fetch_line,
                    consumed=consumed,
                )
                for core in self.cores
            ],
        )

    def restore_warm_state(self, state: WarmState) -> None:
        """Adopt a snapshot's warm state instead of executing warmup.

        Must be called on a freshly built system whose warmup-relevant
        configuration matches the snapshot's (same cores, cache
        geometries, replacement/prefetcher settings, and warmup budget -
        the DRAM configuration and LLC writeback policy may differ).
        The caller is responsible for building the system from the same
        (workload, seed): the snapshot records how far each core's trace
        was consumed, and this method fast-forwards the fresh trace
        iterators to that point.
        """
        if warm_config_signature(self.config) != state.signature:
            raise SimulationError(
                "warm-state snapshot does not match this system's "
                "warmup-relevant configuration")
        if self.engine.now or self.engine.events_fired or self._warmed:
            raise SimulationError(
                "restore_warm_state requires a freshly built system")
        for cache, cache_state in zip(self._warm_caches(), state.caches):
            cache.restore_warm_state(cache_state)
        for core, core_state in zip(self.cores, state.cores):
            core.dtlb.restore(core_state.dtlb)
            core.itlb.restore(core_state.itlb)
            core._last_fetch_line = core_state.last_fetch_line
            core.skip_trace(core_state.consumed)
        self._prime_writeback_policy()
        self._warmed = True

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(self, label: Optional[str] = None) -> RunResult:
        """Warmup, reset statistics, measure, and collect the result."""
        config = self.config
        self.warm_up()
        start_tick = self.engine.now
        for core in self.cores:
            core.reset_measurement(config.sim_instructions)
            core.start()
        self._run_phase()
        self.memctrl.finalize()

        finish = max(c.stats.finish_tick for c in self.cores)
        dram_total = SubChannelStats()
        for channel in self.channels:
            dram_total.merge_from(channel.aggregate_stats())
        instructions = sum(c.stats.retired for c in self.cores)
        return RunResult(
            events=self.engine.events_fired,
            label=label or (config.llc_writeback or "baseline"),
            cores=config.cores,
            instructions=instructions,
            elapsed_ticks=finish - start_tick,
            ipc=[c.stats.ipc for c in self.cores],
            llc=copy.copy(self.llc.stats),
            dram=dram_total,
            channels=[copy.copy(c.stats) for c in self.channels],
            subchannel_count=2 * len(self.channels),
            wb_stats=(copy.copy(self.llc_policy.stats)
                      if self.llc_policy else None),
            bard_accuracy=(copy.copy(self.llc_policy.accuracy)
                           if isinstance(self.llc_policy, BardPolicy)
                           else None),
            llc_demand_accesses=self.llc.stats.demand_accesses,
        )

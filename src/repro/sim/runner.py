"""High-level run orchestration: single runs, comparisons, and sweeps.

These helpers are thin shims over the declarative experiment layer
(:mod:`repro.experiment`): ``run_workload`` simulates one named workload
under one configuration, and ``compare_policies`` runs the same workload
under several LLC writeback policies and reports speedups versus the
first (baseline) entry - the building block for paper Figs. 10, 11, 15
and 17.  Grid-shaped studies should use
:class:`~repro.experiment.ExperimentSpec` directly for deduplication,
parallelism, and caching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

from repro.analysis.metrics import gmean
from repro.config.system import SystemConfig
from repro.sim.results import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment.session import Session


def run_workload(
    config: SystemConfig,
    workload: str,
    label: Optional[str] = None,
    seed: int = 7,
) -> RunResult:
    """Simulate ``workload`` (a suite name from :mod:`repro.workloads`)."""
    # Imported here: repro.sim must stay importable without pulling the
    # experiment layer (which itself builds on repro.sim).
    from repro.experiment.session import Session

    session = Session(cache=False)
    return session.run_one(config, workload, seed=seed,
                           label=label or f"{workload}")


@dataclass
class PolicyComparison:
    """Results of one workload under several policies."""

    workload: str
    results: Dict[str, RunResult]
    baseline: str

    def speedup_pct(self, policy: str) -> float:
        return self.results[policy].speedup_pct(self.results[self.baseline])


def compare_policies(
    config: SystemConfig,
    workload: str,
    policies: Sequence[Optional[str]],
    seed: int = 7,
    session: Optional["Session"] = None,
) -> PolicyComparison:
    """Run ``workload`` under each policy; first entry is the baseline.

    Repeated policies are deduplicated (one simulation each) while the
    baseline-first order is preserved.
    """
    from repro.experiment.session import Session
    from repro.experiment.spec import ExperimentSpec, policy_label

    spec = ExperimentSpec(workloads=workload, configs=config,
                          policies=policies, seeds=seed,
                          name=f"compare:{workload}")
    session = session or Session(cache=False)
    rs = session.run(spec)
    results: Dict[str, RunResult] = {
        str(obs.coords["policy"]):
            replace(obs.result, label=str(obs.coords["policy"]))
        for obs in rs
    }
    return PolicyComparison(workload=workload, results=results,
                            baseline=policy_label(policies[0]))


def gmean_speedups(
    comparisons: Iterable[PolicyComparison], policy: str
) -> float:
    """Geometric-mean speedup (%) of ``policy`` across workloads."""
    ratios = []
    for comp in comparisons:
        base = comp.results[comp.baseline]
        ratios.append(comp.results[policy].weighted_speedup(base))
    return 100.0 * (gmean(ratios) - 1.0)

"""High-level run orchestration: single runs, comparisons, and sweeps.

``run_workload`` simulates one named workload (ratemode or mix) under one
configuration.  ``compare_policies`` runs the same workload under several
LLC writeback policies and reports speedups versus the first (baseline)
entry - the building block for paper Figs. 10, 11, 15 and 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import gmean
from repro.config.system import SystemConfig
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads.suites import trace_factory


def run_workload(
    config: SystemConfig,
    workload: str,
    label: Optional[str] = None,
    seed: int = 7,
) -> RunResult:
    """Simulate ``workload`` (a suite name from :mod:`repro.workloads`)."""
    factory = trace_factory(workload, config, seed=seed)
    system = System(config, factory)
    return system.run(label=label or f"{workload}")


@dataclass
class PolicyComparison:
    """Results of one workload under several policies."""

    workload: str
    results: Dict[str, RunResult]
    baseline: str

    def speedup_pct(self, policy: str) -> float:
        return self.results[policy].speedup_pct(self.results[self.baseline])


def compare_policies(
    config: SystemConfig,
    workload: str,
    policies: Sequence[Optional[str]],
    seed: int = 7,
) -> PolicyComparison:
    """Run ``workload`` under each policy; first entry is the baseline."""
    results: Dict[str, RunResult] = {}
    names: List[str] = []
    for policy in policies:
        name = policy or "baseline"
        cfg = config.with_writeback(policy)
        results[name] = run_workload(cfg, workload, label=name, seed=seed)
        names.append(name)
    return PolicyComparison(workload=workload, results=results,
                            baseline=names[0])


def gmean_speedups(
    comparisons: Iterable[PolicyComparison], policy: str
) -> float:
    """Geometric-mean speedup (%) of ``policy`` across workloads."""
    ratios = []
    for comp in comparisons:
        base = comp.results[comp.baseline]
        ratios.append(comp.results[policy].weighted_speedup(base))
    return 100.0 * (gmean(ratios) - 1.0)

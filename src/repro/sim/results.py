"""Run results: the measured quantities every experiment consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.cache import CacheStats
from repro.cache.writeback.base import WritebackPolicyStats
from repro.clock import NS_PER_TICK, TICKS_PER_DRAM_CYCLE
from repro.core.bard import BardAccuracy
from repro.dram.channel import ChannelStats
from repro.dram.power import PowerReport, estimate_power
from repro.dram.stats import SubChannelStats
from repro.sampling.stats import SamplingSummary


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    label: str
    cores: int
    instructions: int
    elapsed_ticks: int
    ipc: List[float]
    llc: CacheStats
    dram: SubChannelStats
    channels: List[ChannelStats] = field(default_factory=list)
    subchannel_count: int = 2
    wb_stats: Optional[WritebackPolicyStats] = None
    bard_accuracy: Optional[BardAccuracy] = None
    llc_demand_accesses: int = 0
    #: Engine events dispatched over the whole run (warmup + measurement);
    #: deterministic in (config, workload, seed) and the denominator-free
    #: numerator of the perf harness's events/sec metric.
    events: int = 0
    #: CPU cycles core issue stalled on L1D MSHR-pipeline backpressure,
    #: summed over cores (0 unless ``mshr_pipeline`` is on somewhere).
    mshr_stall_cycles: int = 0
    #: How the run was sampled, with per-metric confidence intervals;
    #: ``None`` for full (unsampled) runs.
    sampling: Optional[SamplingSummary] = None
    #: Wall-clock seconds per execution phase (``warmup.functional``,
    #: ``measure``, ``sampling.interval``, ...), recorded when telemetry
    #: is enabled; ``None`` otherwise.  Indexed phases are collapsed
    #: (every ``sampling.interval[i]`` accumulates into one key), so the
    #: dict stays small regardless of interval count.
    phase_breakdown: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Derived metrics (the paper's reporting vocabulary)
    # ------------------------------------------------------------------

    @property
    def runtime_ns(self) -> float:
        return self.elapsed_ticks * NS_PER_TICK

    @property
    def elapsed_dram_cycles(self) -> float:
        return self.elapsed_ticks / TICKS_PER_DRAM_CYCLE

    @property
    def mpki(self) -> float:
        """LLC demand misses per kilo-instruction (Table IV)."""
        if not self.instructions:
            return 0.0
        return self.llc.demand_misses * 1000 / self.instructions

    @property
    def wpki(self) -> float:
        """LLC writebacks per kilo-instruction (Table IV)."""
        if not self.instructions:
            return 0.0
        return self.llc.writebacks * 1000 / self.instructions

    @property
    def time_writing_pct(self) -> float:
        """% of execution time spent writing to DRAM (Figs. 2/14).

        Write-mode cycles are summed across sub-channels, so normalise by
        elapsed time times the number of sub-channels.
        """
        denom = self.elapsed_dram_cycles * max(1, self.subchannel_count)
        if denom <= 0:
            return 0.0
        return 100.0 * self.dram.write_mode_cycles / denom

    @property
    def write_blp(self) -> float:
        """Mean banks written per WRQ drain episode (Figs. 3/14)."""
        return self.dram.mean_blp

    @property
    def mean_w2w_ns(self) -> float:
        return self.dram.mean_w2w_ns

    @property
    def max_w2w_ns(self) -> float:
        return self.dram.max_w2w_ns

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipc) / len(self.ipc) if self.ipc else 0.0

    # -- MSHR pipeline pressure (LLC view; docs/architecture.md) -------

    @property
    def secondary_misses(self) -> int:
        """LLC demand accesses that merged into an outstanding miss."""
        return self.llc.secondary_misses

    @property
    def coalesced_words(self) -> int:
        """New 8-byte words merges contributed to LLC MSHR entries."""
        return self.llc.coalesced_words

    @property
    def mshr_occupancy_mean(self) -> float:
        """Mean LLC MSHR occupancy observed at entry allocation."""
        hist = self.llc.mshr_occupancy_hist
        total = sum(hist)
        if not total:
            return 0.0
        return sum(i * n for i, n in enumerate(hist)) / total

    def weighted_speedup(self, baseline: "RunResult") -> float:
        """Normalised weighted speedup versus ``baseline`` (same workload).

        ``sum_i(IPC_i / IPC_i^base) / n`` - per-core IPC ratios averaged, the
        paper's weighted-speedup metric with the baseline run providing the
        reference IPCs.
        """
        assert len(self.ipc) == len(baseline.ipc)
        ratios = [
            mine / base if base > 0 else 1.0
            for mine, base in zip(self.ipc, baseline.ipc)
        ]
        return sum(ratios) / len(ratios)

    def speedup_pct(self, baseline: "RunResult") -> float:
        """Percentage speedup over ``baseline`` (paper Figs. 10/11/15/17)."""
        return 100.0 * (self.weighted_speedup(baseline) - 1.0)

    def power_report(self) -> PowerReport:
        return estimate_power(self.dram, self.runtime_ns)

"""Configuration presets.

``paper_8core`` mirrors paper Table II exactly.  ``small_8core`` keeps the
same *shape* (ways, watermarks, policies, relative capacities) but scales
capacities down ~32x so a pure-Python cycle model finishes in seconds; the
workload generators size their working sets relative to the LLC, so cache
pressure - the thing BARD responds to - is preserved.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.config.system import CacheConfig, DramConfig, SystemConfig

KB = 1024
MB = 1024 * KB


def paper_8core() -> SystemConfig:
    """The paper's baseline 8-core configuration (Table II)."""
    return SystemConfig(
        cores=8,
        rob_size=512,
        issue_width=4,
        retire_width=4,
        l1i=CacheConfig(32 * KB, 8, 1, 8),
        l1d=CacheConfig(48 * KB, 12, 4, 16, prefetcher="berti"),
        l2=CacheConfig(512 * KB, 8, 14, 32, prefetcher="spp"),
        llc=CacheConfig(16 * MB, 16, 36, 128),
        dram=DramConfig(channels=1),
        warmup_instructions=25_000_000,
        sim_instructions=100_000_000,
    )


def paper_16core() -> SystemConfig:
    """The paper's 16-core configuration: 32 MB LLC, 2 channels."""
    base = paper_8core()
    return replace(
        base,
        cores=16,
        llc=CacheConfig(32 * MB, 16, 36, 128),
        dram=replace(base.dram, channels=2),
    )


def small_8core() -> SystemConfig:
    """Scaled-down 8-core system for fast pure-Python runs."""
    return SystemConfig(
        cores=8,
        rob_size=512,
        issue_width=4,
        retire_width=4,
        l1i=CacheConfig(4 * KB, 8, 1, 8),
        l1d=CacheConfig(6 * KB, 12, 4, 16, prefetcher="berti"),
        l2=CacheConfig(32 * KB, 8, 14, 32, prefetcher="spp"),
        llc=CacheConfig(128 * KB, 16, 36, 128),
        dram=DramConfig(channels=1),
        warmup_instructions=8_000,
        sim_instructions=24_000,
    )


def small_16core() -> SystemConfig:
    """Scaled-down 16-core system: doubled LLC, two channels."""
    base = small_8core()
    return replace(
        base,
        cores=16,
        llc=CacheConfig(256 * KB, 16, 36, 128),
        dram=replace(base.dram, channels=2),
    )


def default_config() -> SystemConfig:
    """Scale-aware default: ``REPRO_SCALE=paper`` selects Table II sizes."""
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        return paper_8core()
    return small_8core()


#: Named preset registry - the single source of truth for every surface
#: that accepts a preset by name (CLI ``--preset``, service submissions).
PRESETS = {
    "small-8core": small_8core,
    "small-16core": small_16core,
    "paper-8core": paper_8core,
    "paper-16core": paper_16core,
}

"""System configuration and presets."""

from repro.config.presets import (
    PRESETS,
    default_config,
    paper_8core,
    paper_16core,
    small_8core,
    small_16core,
)
from repro.config.system import CacheConfig, DramConfig, SystemConfig

__all__ = [
    "CacheConfig",
    "DramConfig",
    "PRESETS",
    "SystemConfig",
    "default_config",
    "paper_8core",
    "paper_16core",
    "small_8core",
    "small_16core",
]

"""System configuration and presets."""

from repro.config.presets import (
    default_config,
    paper_8core,
    paper_16core,
    small_8core,
    small_16core,
)
from repro.config.system import CacheConfig, DramConfig, SystemConfig

__all__ = [
    "CacheConfig",
    "DramConfig",
    "SystemConfig",
    "default_config",
    "paper_8core",
    "paper_16core",
    "small_8core",
    "small_16core",
]

"""System configuration dataclasses.

A :class:`SystemConfig` describes the complete simulated machine (paper
Table II).  Presets in :mod:`repro.config.presets` provide the paper's exact
configuration plus a scaled-down profile suitable for pure-Python runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.sampling.config import SamplingConfig


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    ways: int
    hit_latency: int
    mshrs: int
    replacement: str = "lru"
    prefetcher: Optional[str] = None
    #: Max requests coalesced into one MSHR entry (0 = unlimited);
    #: exceeding it is a secondary-miss stall.  Pipeline regime only.
    mshr_targets: int = 0
    #: Whether hits may proceed while misses are outstanding.  ``False``
    #: models a blocking cache.  Pipeline regime only.
    hit_under_miss: bool = True
    #: Opt into the MSHR pipeline: ``mshrs`` becomes a true MSHR-file
    #: occupancy bound with admission stalls that back up into the core
    #: (see ``docs/architecture.md``).  The default (off) keeps the
    #: legacy issue-bandwidth interpretation, bit-identical to the seed
    #: model.
    mshr_pipeline: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache size and ways must be positive")
        if self.hit_latency < 1 or self.mshrs < 1:
            raise ConfigError("cache latency and MSHR count must be >= 1")
        if self.mshr_targets < 0:
            raise ConfigError("mshr_targets must be >= 0 (0 = unlimited)")
        if self.mshr_targets and not self.mshr_pipeline:
            raise ConfigError(
                "mshr_targets needs mshr_pipeline=True (the legacy "
                "regime never bounds coalescing)")
        if not self.hit_under_miss and not self.mshr_pipeline:
            raise ConfigError(
                "hit_under_miss=False needs mshr_pipeline=True (the "
                "legacy regime always hits under miss)")


@dataclass(frozen=True)
class DramConfig:
    """DDR5 memory-system parameters (paper Table II defaults)."""

    channels: int = 1
    device: str = "x4"
    rq_capacity: int = 64
    wq_capacity: int = 48
    wq_high: int = 40
    wq_low: int = 8
    ideal_writes: bool = False
    pbpl: bool = True
    #: Write-drain scheduling: 'min-latency' (baseline) or 'fcfs' (ablation).
    drain_policy: str = "min-latency"
    #: All-bank refresh model (off by default, matching the paper).
    refresh: bool = False

    def __post_init__(self) -> None:
        if self.device not in ("x4", "x8"):
            raise ConfigError("DRAM device must be 'x4' or 'x8'")
        if not 0 <= self.wq_low < self.wq_high <= self.wq_capacity:
            raise ConfigError("invalid write-queue watermarks")
        if self.drain_policy not in ("min-latency", "fcfs"):
            raise ConfigError("drain_policy must be 'min-latency' or 'fcfs'")


@dataclass(frozen=True)
class SystemConfig:
    """The full simulated machine."""

    cores: int = 8
    rob_size: int = 512
    issue_width: int = 4
    retire_width: int = 4
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(4096, 8, 1, 8)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(6144, 12, 4, 16,
                                            prefetcher="berti")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(65536, 8, 14, 32,
                                            prefetcher="spp")
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(524288, 16, 36, 128)
    )
    llc_writeback: Optional[str] = None
    dram: DramConfig = field(default_factory=DramConfig)
    warmup_instructions: int = 5_000
    sim_instructions: int = 20_000
    #: How warmup instructions are executed.  ``"detailed"`` (default)
    #: drives them through the full timing model - bit-identical to the
    #: historical behaviour.  ``"functional"`` drives them straight
    #: through the cache/TLB/replacement/prefetcher state machines with
    #: no engine events (no ROB, no MSHRs, no DRAM timing), which is
    #: several times faster and enables warm-state checkpoint sharing
    #: across an experiment grid (see ``docs/performance.md``).
    warmup_mode: str = "detailed"
    #: Interval-sampling plan (``docs/sampling.md``).  ``None`` (default)
    #: measures the whole epoch in full detail; a
    #: :class:`~repro.sampling.config.SamplingConfig` switches the run to
    #: alternating fast-forward and detailed measurement intervals and
    #: requires ``warmup_mode="functional"`` (the fast-forward path is
    #: the functional engine; detailed warmup would leave in-flight
    #: timing state the sampler cannot reason about).
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("need at least one core")
        if self.rob_size < self.issue_width:
            raise ConfigError("ROB must hold at least one issue group")
        if self.warmup_mode not in ("detailed", "functional"):
            raise ConfigError(
                "warmup_mode must be 'detailed' or 'functional'")
        if self.sampling is not None and self.warmup_mode != "functional":
            raise ConfigError(
                "sampled runs require warmup_mode='functional' (the "
                "fast-forward between measurement intervals is the "
                "functional engine); pass --warmup-mode functional or "
                "drop the sampling config")

    def with_writeback(self, policy: Optional[str]) -> "SystemConfig":
        """Copy of this config using the named LLC writeback policy."""
        return replace(self, llc_writeback=policy)

    def with_replacement(self, policy: str) -> "SystemConfig":
        """Copy of this config using the named LLC replacement policy."""
        return replace(self, llc=replace(self.llc, replacement=policy))

    def with_warmup_mode(self, mode: str) -> "SystemConfig":
        """Copy of this config using the named warmup mode."""
        return replace(self, warmup_mode=mode)

    def with_sampling(
            self, sampling: Optional[SamplingConfig]) -> "SystemConfig":
        """Copy of this config using the given sampling plan (or none).

        Sampled runs require ``warmup_mode="functional"``; set it first
        (:meth:`with_warmup_mode`) or construction raises
        :class:`~repro.errors.ConfigError`.
        """
        return replace(self, sampling=sampling)

    def with_mshrs(self, mshrs: int) -> "SystemConfig":
        """Copy with the MSHR pipeline on and scaled MSHR files.

        ``mshrs`` sizes the L1D MSHR file; L2 gets ``2x`` and the LLC
        ``8x``, preserving the default 16/32/128 proportions so one knob
        sweeps the whole hierarchy's miss parallelism (the ``mshr``
        sweep axis).  The L1I keeps the legacy regime - instruction
        fetch is not the paper's MLP story.
        """
        if mshrs < 1:
            raise ConfigError("with_mshrs needs mshrs >= 1")
        return replace(
            self,
            l1d=replace(self.l1d, mshrs=mshrs, mshr_pipeline=True),
            l2=replace(self.l2, mshrs=2 * mshrs, mshr_pipeline=True),
            llc=replace(self.llc, mshrs=8 * mshrs, mshr_pipeline=True),
        )

    def with_wq(self, capacity: int, high: Optional[int] = None,
                low: Optional[int] = None) -> "SystemConfig":
        """Copy with a different write-queue size (paper Fig. 17 sweep).

        Watermarks scale with capacity unless given explicitly (the paper's
        48-entry queue uses high=40, low=8, i.e. high = capacity - 8).
        """
        high = high if high is not None else capacity - 8
        low = low if low is not None else 8
        return replace(
            self, dram=replace(self.dram, wq_capacity=capacity,
                               wq_high=high, wq_low=low)
        )

    def with_ideal_writes(self) -> "SystemConfig":
        """Copy with the idealised write timing (every write at 3.3 ns)."""
        return replace(self, dram=replace(self.dram, ideal_writes=True))

    def with_device(self, device: str) -> "SystemConfig":
        """Copy using 'x4' or 'x8' DRAM devices (paper Table VI)."""
        return replace(self, dram=replace(self.dram, device=device))

    def with_drain_policy(self, policy: str) -> "SystemConfig":
        """Copy using a different write-drain scheduling policy."""
        return replace(self, dram=replace(self.dram, drain_policy=policy))

    def with_refresh(self) -> "SystemConfig":
        """Copy with the all-bank refresh model enabled."""
        return replace(self, dram=replace(self.dram, refresh=True))

    def without_pbpl(self) -> "SystemConfig":
        """Copy with permutation-based page interleaving disabled."""
        return replace(self, dram=replace(self.dram, pbpl=False))

"""Simulator performance scenarios and measurement helpers.

This package is the single source of truth for the repository's
performance-tracking loop (see ``docs/performance.md``):

* :data:`~repro.perf.scenarios.SCENARIOS` defines the three
  representative workloads every optimisation PR is measured on,
* :func:`~repro.perf.scenarios.measure_scenario` times one scenario
  through the experiment layer's :class:`~repro.experiment.Session`,
* :func:`~repro.perf.scenarios.bench_report` assembles the
  ``BENCH_simcore.json`` payload, including the speedup versus the
  checked-in seed baseline.

The golden-stats regression test (``tests/test_golden_stats.py``) reuses
the same scenario definitions, so the runs that are timed are exactly the
runs whose statistics are pinned bit-for-bit.
"""

from repro.perf.scenarios import (
    ADAPTIVE_SCENARIO,
    BENCH_SCHEMA,
    GOLDEN_SIM_INSTRUCTIONS,
    GOLDEN_WARMUP_INSTRUCTIONS,
    SAMPLING_SCENARIO,
    SCENARIOS,
    WARMUP_SCENARIO,
    AdaptiveScenario,
    PerfScenario,
    SamplingScenario,
    WarmupScenario,
    adaptive_scenario_configs,
    bench_report,
    measure_adaptive_scenario,
    measure_sampling_scenario,
    measure_scenario,
    measure_telemetry_overhead,
    measure_warmup_scenario,
    sampling_scenario_configs,
    scenario_config,
    warmup_scenario_config,
)

__all__ = [
    "ADAPTIVE_SCENARIO",
    "BENCH_SCHEMA",
    "GOLDEN_SIM_INSTRUCTIONS",
    "GOLDEN_WARMUP_INSTRUCTIONS",
    "SAMPLING_SCENARIO",
    "SCENARIOS",
    "WARMUP_SCENARIO",
    "AdaptiveScenario",
    "PerfScenario",
    "SamplingScenario",
    "WarmupScenario",
    "adaptive_scenario_configs",
    "bench_report",
    "measure_adaptive_scenario",
    "measure_sampling_scenario",
    "measure_scenario",
    "measure_telemetry_overhead",
    "measure_warmup_scenario",
    "sampling_scenario_configs",
    "scenario_config",
    "warmup_scenario_config",
]

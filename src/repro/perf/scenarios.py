"""Performance scenarios: what the perf harness times, and how.

Three scenarios cover the simulator's qualitatively different hot paths:

``write_stream``
    ``copy`` on the 8-core system - a write-heavy streaming kernel that
    stresses the LLC writeback path, the write queue and drain episodes.
``graph_mix``
    ``bc`` on the 8-core system - irregular graph-analytics accesses with
    high MLP, stressing MSHR handling and the FR-FCFS read scheduler.
``multicore_ddr5``
    ``mix0`` on the 16-core, two-channel system - the scaling
    configuration, stressing the engine's event queue and both channels.

Throughput is reported as **engine events per second of host wall time**.
The event count for a given (config, workload, seed) is deterministic
(the golden-stats test pins the run's statistics bit-for-bit), so
events/sec moves only when the host or the simulator implementation
changes - which is exactly what a perf trajectory should measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.metrics import gmean
from repro.config.presets import small_8core, small_16core
from repro.config.system import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment.session import Session

#: Schema identifier stamped into every BENCH_simcore.json.
BENCH_SCHEMA = "repro-bench-simcore/1"

#: Instruction budgets for the tiny golden-stats runs (fast enough for
#: the tier-1 suite while still exercising warmup-boundary behaviour).
GOLDEN_WARMUP_INSTRUCTIONS = 1_000
GOLDEN_SIM_INSTRUCTIONS = 3_000

#: Instruction budgets for timed runs: (warmup, sim) per mode.
_FULL_BUDGET = (8_000, 24_000)
_QUICK_BUDGET = (2_000, 6_000)


@dataclass(frozen=True)
class PerfScenario:
    """One named perf scenario: a workload on a preset configuration."""

    name: str
    workload: str
    preset: str  # "small_8core" | "small_16core"
    description: str

    def config(self, warmup: int, sim: int) -> SystemConfig:
        """The scenario's system config with the given instruction budget."""
        base = small_16core() if self.preset == "small_16core" \
            else small_8core()
        return replace(base, warmup_instructions=warmup,
                       sim_instructions=sim)


SCENARIOS: List[PerfScenario] = [
    PerfScenario(
        name="write_stream",
        workload="copy",
        preset="small_8core",
        description="write-heavy streaming kernel (LLC writeback / "
                    "WRQ drain path)",
    ),
    PerfScenario(
        name="graph_mix",
        workload="bc",
        preset="small_8core",
        description="irregular graph-analytics mix (MSHR / FR-FCFS "
                    "read path)",
    ),
    PerfScenario(
        name="multicore_ddr5",
        workload="mix0",
        preset="small_16core",
        description="16-core two-channel DDR5 mix (event-queue scaling)",
    ),
]


def scenario_config(scenario: PerfScenario, quick: bool = False,
                    golden: bool = False) -> SystemConfig:
    """Resolve a scenario to a concrete :class:`SystemConfig`.

    ``golden`` selects the tiny budget the golden-stats test pins;
    ``quick`` the CI smoke budget; otherwise the full perf budget.
    """
    if golden:
        return scenario.config(GOLDEN_WARMUP_INSTRUCTIONS,
                               GOLDEN_SIM_INSTRUCTIONS)
    warmup, sim = _QUICK_BUDGET if quick else _FULL_BUDGET
    return scenario.config(warmup, sim)


def measure_scenario(scenario: PerfScenario, quick: bool = False,
                     repeats: int = 2, seed: int = 7) -> Dict[str, object]:
    """Time one scenario; returns its BENCH_simcore.json entry.

    Each repeat simulates from scratch through a fresh, cache-disabled
    :class:`~repro.experiment.Session` (a cached run would time JSON
    deserialisation, not the simulator).  The best repeat is reported,
    which is standard practice for throughput benchmarks: the minimum
    wall time is the least contaminated by host noise.
    """
    from repro.experiment.session import Session

    config = scenario_config(scenario, quick=quick)
    best_seconds: Optional[float] = None
    events = 0
    for _ in range(max(1, repeats)):
        session = Session(cache=False)
        start = time.perf_counter()
        result = session.run_one(config, scenario.workload, seed=seed)
        seconds = time.perf_counter() - start
        events = result.events
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return {
        "name": scenario.name,
        "workload": scenario.workload,
        "preset": scenario.preset,
        "description": scenario.description,
        "warmup_instructions": config.warmup_instructions,
        "sim_instructions": config.sim_instructions,
        "seed": seed,
        "events": events,
        "best_seconds": round(best_seconds, 4),
        "events_per_sec": round(events / best_seconds, 1),
    }


def bench_report(entries: List[Dict[str, object]], mode: str,
                 repeats: int,
                 baseline: Optional[Dict[str, object]] = None,
                 ) -> Dict[str, object]:
    """Assemble the BENCH_simcore.json payload.

    ``baseline`` is the parsed ``benchmarks/perf/baseline_seed.json``
    (the pre-overhaul engine measured on the reference host); when given,
    the report carries the geomean speedup against it.  Cross-host
    comparisons are indicative only - the trajectory is meaningful when
    baseline and measurement ran on the same machine.
    """
    gm = round(gmean(e["events_per_sec"] for e in entries), 1)
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "created_unix": int(time.time()),
        "mode": mode,
        "repeats": repeats,
        "scenarios": entries,
        "geomean_events_per_sec": gm,
    }
    if baseline is not None:
        base_gm = float(baseline["geomean_events_per_sec"])
        report["baseline"] = {
            "source": baseline.get("source", "benchmarks/perf/"
                                             "baseline_seed.json"),
            "geomean_events_per_sec": base_gm,
            "speedup_vs_baseline": round(gm / base_gm, 3) if base_gm else None,
        }
    return report

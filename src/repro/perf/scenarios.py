"""Performance scenarios: what the perf harness times, and how.

Four throughput scenarios cover the simulator's qualitatively different
hot paths:

``write_stream``
    ``copy`` on the 8-core system - a write-heavy streaming kernel that
    stresses the LLC writeback path, the write queue and drain episodes.
``graph_mix``
    ``bc`` on the 8-core system - irregular graph-analytics accesses with
    high MLP, stressing MSHR handling and the FR-FCFS read scheduler.
``multicore_ddr5``
    ``mix0`` on the 16-core, two-channel system - the scaling
    configuration, stressing the engine's event queue and both channels.
``mshr_pressure``
    ``bc`` again, but with the MSHR pipeline enabled and a tight MSHR
    file (``with_mshrs(2)``) - stressing admission control, the pending
    queue, and the core's issue-stall path.

Throughput is reported as **engine events per second of host wall time**.
The event count for a given (config, workload, seed) is deterministic
(the golden-stats test pins the run's statistics bit-for-bit), so
events/sec moves only when the host or the simulator implementation
changes - which is exactly what a perf trajectory should measure.

A fourth, differently shaped scenario tracks the warmup layer:

``paper_warmup``
    A warmup-dominated two-policy comparison grid, timed end-to-end
    twice - per-run detailed warmup vs functional warmup with shared
    warm-state checkpoints.  Events/sec is meaningless here (functional
    warmup fires no events by design), so the scenario reports wall
    seconds per strategy and their ratio, ``speedup_vs_detailed``.

A fifth tracks the sampled-simulation subsystem (``docs/sampling.md``):

``paper_sampling``
    A long-trace two-policy grid timed end-to-end twice - the status-quo
    pipeline (detailed warmup, full detailed measurement) vs the sampled
    pipeline (shared functional warmup, interval sampling fast-forwarded
    by the functional engine).  Reports ``speedup_vs_full`` plus the
    sampled estimates' relative error on mean IPC and write BLP against
    the full runs, both grid-averaged (the paper's headline numbers are
    workload averages) and per-point worst case.  The simulation is
    deterministic, so the error figures are host-independent constants -
    exactly what a fidelity gate wants.

A sixth tracks adaptive grid orchestration (``docs/adaptive.md``):

``adaptive_grid``
    A decisive two-policy grid run twice - exhaustively at full detail,
    and through ``Session.run_adaptive`` deciding on write BLP.  Reports
    wall seconds per leg, the instruction-budget ratio
    (``instruction_savings_x`` = exhaustive detailed instructions over
    what the orchestrator actually spent), and whether both legs crowned
    the same winners.  The planner is deterministic, so the savings
    ratio and winner agreement are host-independent constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.metrics import amean, gmean
from repro.config.presets import small_8core, small_16core
from repro.config.system import SystemConfig
from repro.sampling import SamplingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiment.session import Session

#: Schema identifier stamped into every BENCH_simcore.json.
BENCH_SCHEMA = "repro-bench-simcore/1"

#: Instruction budgets for the tiny golden-stats runs (fast enough for
#: the tier-1 suite while still exercising warmup-boundary behaviour).
GOLDEN_WARMUP_INSTRUCTIONS = 1_000
GOLDEN_SIM_INSTRUCTIONS = 3_000

#: Instruction budgets for timed runs: (warmup, sim) per mode.
_FULL_BUDGET = (8_000, 24_000)
_QUICK_BUDGET = (2_000, 6_000)

#: Budgets for the warmup-dominated scenario: warmup 10x the measured
#: window, the paper-scale proportion (25M warmup / 100M x 4 policies).
_WARM_FULL_BUDGET = (60_000, 6_000)
_WARM_QUICK_BUDGET = (12_000, 2_000)


@dataclass(frozen=True)
class PerfScenario:
    """One named perf scenario: a workload on a preset configuration."""

    name: str
    workload: str
    preset: str  # "small_8core" | "small_16core"
    description: str
    #: When set, enables the MSHR pipeline with this L1D MSHR count
    #: (scaled through the hierarchy by ``SystemConfig.with_mshrs``).
    mshrs: Optional[int] = None

    def config(self, warmup: int, sim: int) -> SystemConfig:
        """The scenario's system config with the given instruction budget."""
        base = small_16core() if self.preset == "small_16core" \
            else small_8core()
        if self.mshrs is not None:
            base = base.with_mshrs(self.mshrs)
        return replace(base, warmup_instructions=warmup,
                       sim_instructions=sim)


SCENARIOS: List[PerfScenario] = [
    PerfScenario(
        name="write_stream",
        workload="copy",
        preset="small_8core",
        description="write-heavy streaming kernel (LLC writeback / "
                    "WRQ drain path)",
    ),
    PerfScenario(
        name="graph_mix",
        workload="bc",
        preset="small_8core",
        description="irregular graph-analytics mix (MSHR / FR-FCFS "
                    "read path)",
    ),
    PerfScenario(
        name="multicore_ddr5",
        workload="mix0",
        preset="small_16core",
        description="16-core two-channel DDR5 mix (event-queue scaling)",
    ),
    PerfScenario(
        name="mshr_pressure",
        workload="bc",
        preset="small_8core",
        description="graph mix under a tight MSHR file (pipeline "
                    "admission / core-stall path)",
        mshrs=2,
    ),
]


@dataclass(frozen=True)
class WarmupScenario:
    """The warmup-layer scenario: a policy grid timed per warmup strategy."""

    name: str
    workload: str
    preset: str
    policies: Tuple[str, ...]
    description: str


WARMUP_SCENARIO = WarmupScenario(
    name="paper_warmup",
    workload="lbm",
    preset="small_8core",
    policies=("baseline", "bard-h"),
    description="warmup-dominated two-policy grid: functional warmup "
                "with shared warm-state checkpoints vs per-run detailed "
                "warmup",
)


def warmup_scenario_config(quick: bool = False) -> SystemConfig:
    """Warmup-dominated system config (mode set per measurement leg)."""
    warmup, sim = _WARM_QUICK_BUDGET if quick else _WARM_FULL_BUDGET
    return replace(small_8core(), warmup_instructions=warmup,
                   sim_instructions=sim)


@dataclass(frozen=True)
class SamplingScenario:
    """The sampling scenario: a long-trace grid, sampled vs full."""

    name: str
    workloads: Tuple[str, ...]
    preset: str
    policies: Tuple[str, ...]
    description: str


SAMPLING_SCENARIO = SamplingScenario(
    name="paper_sampling",
    workloads=("bc", "whiskey"),
    preset="small_8core",
    policies=("baseline", "bard-h"),
    description="long-trace two-policy grid: interval sampling "
                "fast-forwarded by the functional engine vs full "
                "detailed measurement with detailed warmup",
)

#: (warmup, sim) budgets and sampling plan per mode.  The workloads are
#: the two paper kernels whose sampled estimates are most faithful
#: (write-streaming kernels like copy/lbm need denser warming; see
#: docs/sampling.md for the error-vs-speedup table).
_SAMPLING_FULL = (60_000, 150_000, SamplingConfig(
    intervals=12, interval_instructions=1_000,
    warm_instructions=1_000, detailed_warm_instructions=1_000))
_SAMPLING_QUICK = (15_000, 30_000, SamplingConfig(
    intervals=6, interval_instructions=600,
    warm_instructions=1_000, detailed_warm_instructions=1_200))


def sampling_scenario_configs(
        quick: bool = False) -> Tuple[SystemConfig, SystemConfig]:
    """``(full, sampled)`` configs for the sampling scenario.

    The full leg is the out-of-the-box pipeline (detailed warmup, whole
    epoch measured in detail); the sampled leg is the sampled-simulation
    subsystem end to end (functional warmup shared via checkpoints,
    interval sampling fast-forwarded by the functional engine).
    """
    warmup, sim, sampling = _SAMPLING_QUICK if quick else _SAMPLING_FULL
    base = replace(small_8core(), warmup_instructions=warmup,
                   sim_instructions=sim)
    sampled = base.with_warmup_mode("functional").with_sampling(sampling)
    return base, sampled


@dataclass(frozen=True)
class AdaptiveScenario:
    """The adaptive-orchestration scenario: exhaustive vs adaptive grid."""

    name: str
    workloads: Tuple[str, ...]
    preset: str
    policies: Tuple[str, ...]
    metric: str
    description: str


ADAPTIVE_SCENARIO = AdaptiveScenario(
    name="adaptive_grid",
    workloads=("copy", "lbm"),
    preset="small_8core",
    policies=("baseline", "bard-h"),
    metric="write_blp",
    description="two-policy grid decided on write BLP: exhaustive "
                "full-detail runs vs adaptive orchestration (sampled "
                "survey + CI-driven refinement, dominated cells pruned)",
)

#: (warmup, sim, survey sampling plan) per mode.  write BLP separates
#: the policies by 20-44% on these kernels, so the orchestrator should
#: retire cells in a round or two; the epoch dwarfs the intervals,
#: which is the regime where sampling actually saves budget.
_ADAPTIVE_FULL = (20_000, 200_000, SamplingConfig(
    intervals=4, interval_instructions=1_000,
    warm_instructions=1_000, detailed_warm_instructions=1_000,
    max_intervals=64))
_ADAPTIVE_QUICK = (5_000, 50_000, SamplingConfig(
    intervals=4, interval_instructions=500,
    warm_instructions=300, detailed_warm_instructions=200,
    max_intervals=64))


def adaptive_scenario_configs(
        quick: bool = False) -> Tuple[SystemConfig, SystemConfig]:
    """``(exhaustive, surveyed)`` configs for the adaptive scenario."""
    warmup, sim, sampling = _ADAPTIVE_QUICK if quick else _ADAPTIVE_FULL
    base = replace(small_8core(), warmup_instructions=warmup,
                   sim_instructions=sim).with_warmup_mode("functional")
    return base, base.with_sampling(sampling)


def scenario_config(scenario: PerfScenario, quick: bool = False,
                    golden: bool = False) -> SystemConfig:
    """Resolve a scenario to a concrete :class:`SystemConfig`.

    ``golden`` selects the tiny budget the golden-stats test pins;
    ``quick`` the CI smoke budget; otherwise the full perf budget.
    """
    if golden:
        return scenario.config(GOLDEN_WARMUP_INSTRUCTIONS,
                               GOLDEN_SIM_INSTRUCTIONS)
    warmup, sim = _QUICK_BUDGET if quick else _FULL_BUDGET
    return scenario.config(warmup, sim)


def measure_scenario(scenario: PerfScenario, quick: bool = False,
                     repeats: int = 2, seed: int = 7) -> Dict[str, object]:
    """Time one scenario; returns its BENCH_simcore.json entry.

    Each repeat simulates from scratch through a fresh, cache-disabled
    :class:`~repro.experiment.Session` (a cached run would time JSON
    deserialisation, not the simulator).  The best repeat is reported,
    which is standard practice for throughput benchmarks: the minimum
    wall time is the least contaminated by host noise.
    """
    from repro.experiment.session import Session

    config = scenario_config(scenario, quick=quick)
    best_seconds: Optional[float] = None
    events = 0
    for _ in range(max(1, repeats)):
        session = Session(cache=False)
        start = time.perf_counter()
        result = session.run_one(config, scenario.workload, seed=seed)
        seconds = time.perf_counter() - start
        events = result.events
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return {
        "name": scenario.name,
        "workload": scenario.workload,
        "preset": scenario.preset,
        "description": scenario.description,
        "warmup_instructions": config.warmup_instructions,
        "sim_instructions": config.sim_instructions,
        "seed": seed,
        "events": events,
        "best_seconds": round(best_seconds, 4),
        "events_per_sec": round(events / best_seconds, 1),
    }


def measure_warmup_scenario(quick: bool = False, repeats: int = 2,
                            seed: int = 7) -> Dict[str, object]:
    """Time the warmup-dominated grid under both warmup strategies.

    Runs the :data:`WARMUP_SCENARIO` policy grid end-to-end through a
    fresh cache-disabled :class:`~repro.experiment.Session` twice per
    repeat: once with per-run detailed warmup (the historical baseline
    strategy) and once with functional warmup plus warm-state checkpoint
    sharing.  The best wall time per strategy is kept and their ratio
    reported as ``speedup_vs_detailed`` - the end-to-end win of the
    warmup layer on grid-shaped studies.
    """
    from repro.experiment import ExperimentSpec, Session

    scenario = WARMUP_SCENARIO
    config = warmup_scenario_config(quick)

    def grid(mode: str) -> "ExperimentSpec":
        return ExperimentSpec(
            workloads=scenario.workload,
            configs=replace(config, warmup_mode=mode),
            policies=list(scenario.policies),
            seeds=seed,
            name=f"{scenario.name}:{mode}",
        )

    best: Dict[str, float] = {}
    session_stats: Dict[str, object] = {}
    for mode, checkpoints in (("detailed", False), ("functional", True)):
        for _ in range(max(1, repeats)):
            session = Session(cache=False, checkpoints=checkpoints)
            start = time.perf_counter()
            session.run(grid(mode))
            seconds = time.perf_counter() - start
            if mode not in best or seconds < best[mode]:
                best[mode] = seconds
                session_stats[mode] = session.stats
    functional = session_stats["functional"]
    return {
        "name": scenario.name,
        "workload": scenario.workload,
        "preset": scenario.preset,
        "description": scenario.description,
        "policies": list(scenario.policies),
        "warmup_instructions": config.warmup_instructions,
        "sim_instructions": config.sim_instructions,
        "seed": seed,
        "detailed_seconds": round(best["detailed"], 4),
        "functional_seconds": round(best["functional"], 4),
        "speedup_vs_detailed": round(
            best["detailed"] / best["functional"], 3),
        "warmups_executed": functional.warmups_executed,
        "checkpoint_restores": functional.checkpoint_restores,
    }


def measure_sampling_scenario(quick: bool = False, repeats: int = 1,
                              seed: int = 7) -> Dict[str, object]:
    """Time the long-trace grid fully and sampled; report speedup + error.

    Each leg runs through a fresh cache-disabled
    :class:`~repro.experiment.Session` (checkpoint sharing on - it is
    part of the subsystem under test); the best wall time per leg is
    kept.  Relative errors of the sampled estimates against the full
    runs are computed for mean IPC and write BLP, grid-averaged
    (``*_grid_error_pct``, the paper's headline-number view) and
    worst-point (``*_max_error_pct``).  Both are deterministic in
    (config, workload, seed): they do not vary with the host or the
    repeat count.
    """
    from repro.experiment import ExperimentSpec, Session

    scenario = SAMPLING_SCENARIO
    full_cfg, sampled_cfg = sampling_scenario_configs(quick)

    def grid(config: SystemConfig) -> "ExperimentSpec":
        return ExperimentSpec(
            workloads=scenario.workloads,
            configs=config,
            policies=list(scenario.policies),
            seeds=seed,
            name=f"{scenario.name}:"
                 f"{'sampled' if config.sampling else 'full'}",
        )

    best: Dict[str, float] = {}
    results: Dict[str, object] = {}
    for leg, config in (("full", full_cfg), ("sampled", sampled_cfg)):
        for _ in range(max(1, repeats)):
            session = Session(cache=False)
            start = time.perf_counter()
            rs = session.run(grid(config))
            seconds = time.perf_counter() - start
            if leg not in best or seconds < best[leg]:
                best[leg] = seconds
            results[leg] = rs

    errors: Dict[str, float] = {}
    for metric in ("mean_ipc", "write_blp"):
        full_values: List[float] = []
        sampled_values: List[float] = []
        point_errors: List[float] = []
        for obs in results["full"]:
            full = obs.value(metric)
            sampled = results["sampled"].filter(
                workload=obs.coords["workload"],
                policy=obs.coords["policy"]).only().value(metric)
            full_values.append(full)
            sampled_values.append(sampled)
            point_errors.append(100.0 * abs(sampled - full) / full)
        key = "ipc" if metric == "mean_ipc" else metric
        errors[f"{key}_grid_error_pct"] = round(
            100.0 * abs(amean(sampled_values) - amean(full_values))
            / amean(full_values), 3)
        errors[f"{key}_max_error_pct"] = round(max(point_errors), 3)

    sampling = sampled_cfg.sampling
    return {
        "name": scenario.name,
        "workloads": list(scenario.workloads),
        "preset": scenario.preset,
        "policies": list(scenario.policies),
        "description": scenario.description,
        "warmup_instructions": full_cfg.warmup_instructions,
        "sim_instructions": full_cfg.sim_instructions,
        "seed": seed,
        "intervals": sampling.intervals,
        "interval_instructions": sampling.interval_instructions,
        "warm_instructions": sampling.warm_instructions,
        "detailed_warm_instructions": sampling.detailed_warm_instructions,
        "full_seconds": round(best["full"], 4),
        "sampled_seconds": round(best["sampled"], 4),
        "speedup_vs_full": round(best["full"] / best["sampled"], 3),
        **errors,
    }


def measure_adaptive_scenario(quick: bool = False, repeats: int = 1,
                              seed: int = 7) -> Dict[str, object]:
    """Run the decisive grid exhaustively and adaptively; compare.

    Each leg runs through a fresh cache-disabled
    :class:`~repro.experiment.Session`; the best wall time per leg is
    kept.  Beyond the wall-clock ratio (``speedup_vs_exhaustive``,
    host-noisy like every timing), the entry reports the
    host-independent fidelity facts the adaptive-orchestration gate
    cares about: ``instruction_savings_x`` (detailed instructions the
    exhaustive grid simulated over what the orchestrator spent) and
    ``winners_match`` (both legs crowned the same per-workload winner
    on the decision metric).
    """
    from repro.adaptive import AdaptivePolicy
    from repro.experiment import ExperimentSpec, Session

    scenario = ADAPTIVE_SCENARIO
    exhaustive_cfg, surveyed_cfg = adaptive_scenario_configs(quick)
    policy = AdaptivePolicy(metric=scenario.metric,
                            target_relative_error=0.02,
                            start_intervals=surveyed_cfg.sampling.intervals,
                            max_rounds=3)

    def grid(config: SystemConfig, leg: str) -> "ExperimentSpec":
        return ExperimentSpec(
            workloads=scenario.workloads,
            configs=config,
            policies=list(scenario.policies),
            seeds=seed,
            name=f"{scenario.name}:{leg}",
        )

    best: Dict[str, float] = {}
    results: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for leg in ("exhaustive", "adaptive"):
            session = Session(cache=False)
            start = time.perf_counter()
            if leg == "exhaustive":
                rs = session.run(grid(exhaustive_cfg, leg))
            else:
                rs = session.run_adaptive(grid(surveyed_cfg, leg), policy)
            seconds = time.perf_counter() - start
            if leg not in best or seconds < best[leg]:
                best[leg] = seconds
            results[leg] = rs

    report = results["adaptive"].adaptive
    exhaustive_cost = sum(r.instructions
                          for r in results["exhaustive"].results())
    winners_match = True
    for workload, sub in results["exhaustive"].group_by(
            "workload").items():
        exhaustive_best = max(
            sub, key=lambda obs: obs.value(scenario.metric))
        group = f"config=default,seed={seed},workload={workload}"
        if report.winners.get(group) != \
                exhaustive_best.coords[policy.compare_axis]:
            winners_match = False

    return {
        "name": scenario.name,
        "workloads": list(scenario.workloads),
        "preset": scenario.preset,
        "policies": list(scenario.policies),
        "metric": scenario.metric,
        "description": scenario.description,
        "warmup_instructions": exhaustive_cfg.warmup_instructions,
        "sim_instructions": exhaustive_cfg.sim_instructions,
        "seed": seed,
        "target_relative_error": policy.target_relative_error,
        "exhaustive_seconds": round(best["exhaustive"], 4),
        "adaptive_seconds": round(best["adaptive"], 4),
        "speedup_vs_exhaustive": round(
            best["exhaustive"] / best["adaptive"], 3),
        "instructions_exhaustive": exhaustive_cost,
        "instructions_spent": report.instructions_spent,
        "instruction_savings_x": round(
            exhaustive_cost / report.instructions_spent, 3),
        "rounds": report.rounds,
        "escalations": report.escalations,
        "pruned": report.pruned,
        "winners_match": winners_match,
    }


def measure_telemetry_overhead(quick: bool = False, repeats: int = 5,
                               seed: int = 7) -> Dict[str, object]:
    """Time ``write_stream`` with telemetry disabled vs enabled.

    The telemetry layer promises a near-zero disabled hot path (module
    singletons, no allocation) and low single-digit-percent cost when
    spans and per-run metrics are on.  The overhead is a small
    difference between two noisy measurements, so this leg is measured
    differently from the throughput scenarios: per-process **CPU time**
    (``time.process_time``, immune to scheduler interference on shared
    hosts), one untimed priming run, then ``repeats`` back-to-back
    disabled/enabled *pairs* whose per-pair ratios are summarised by
    their **median** - pairing cancels slow host drift and the median
    rejects the odd interrupted run.  Reports ``overhead_pct`` plus the
    enabled leg's ``phase_breakdown``, so BENCH_simcore.json tracks
    where run time goes phase by phase alongside what the measuring
    itself costs.
    """
    from repro import telemetry
    from repro.experiment.session import Session

    scenario = SCENARIOS[0]  # write_stream: the busiest writeback path
    config = scenario_config(scenario, quick=quick)
    was_enabled = telemetry.enabled()
    best: Dict[str, float] = {}
    ratios: List[float] = []
    phases: Dict[str, float] = {}

    def timed_run() -> Tuple[float, object]:
        telemetry.get_tracer().reset()
        session = Session(cache=False)
        start = time.process_time()
        result = session.run_one(config, scenario.workload, seed=seed)
        return time.process_time() - start, result

    try:
        telemetry.disable()
        Session(cache=False).run_one(config, scenario.workload,
                                     seed=seed)  # untimed priming run
        for _ in range(max(1, repeats)):
            telemetry.disable()
            disabled_seconds, _ = timed_run()
            telemetry.enable()
            enabled_seconds, result = timed_run()
            ratios.append(enabled_seconds / disabled_seconds - 1.0)
            for leg, seconds in (("disabled", disabled_seconds),
                                 ("enabled", enabled_seconds)):
                if leg not in best or seconds < best[leg]:
                    best[leg] = seconds
                    if leg == "enabled":
                        phases = dict(result.phase_breakdown or {})
    finally:
        telemetry.get_tracer().reset()
        if was_enabled:
            telemetry.enable()
        else:
            telemetry.disable()
    ratios.sort()
    median = ratios[len(ratios) // 2] if len(ratios) % 2 else \
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2.0
    return {
        "name": "telemetry_overhead",
        "scenario": scenario.name,
        "workload": scenario.workload,
        "preset": scenario.preset,
        "warmup_instructions": config.warmup_instructions,
        "sim_instructions": config.sim_instructions,
        "seed": seed,
        "repeats": max(1, repeats),
        "disabled_seconds": round(best["disabled"], 4),
        "enabled_seconds": round(best["enabled"], 4),
        "overhead_pct": round(100.0 * median, 3),
        "phase_breakdown": {phase: round(seconds, 6)
                            for phase, seconds
                            in sorted(phases.items())},
    }


def bench_report(entries: List[Dict[str, object]], mode: str,
                 repeats: int,
                 baseline: Optional[Dict[str, object]] = None,
                 warmup: Optional[Dict[str, object]] = None,
                 sampling: Optional[Dict[str, object]] = None,
                 telemetry: Optional[Dict[str, object]] = None,
                 adaptive: Optional[Dict[str, object]] = None,
                 ) -> Dict[str, object]:
    """Assemble the BENCH_simcore.json payload.

    ``baseline`` is the parsed ``benchmarks/perf/baseline_seed.json``
    (the pre-overhaul engine measured on the reference host); when given,
    the report carries the geomean speedup against it, and every scenario
    entry with a per-scenario baseline gains its own
    ``speedup_vs_baseline``.  Cross-host comparisons are indicative only -
    the trajectory is meaningful when baseline and measurement ran on the
    same machine.  ``warmup`` is the entry from
    :func:`measure_warmup_scenario`; it is reported under
    ``warmup_scenario`` (its metric is wall seconds, not events/sec, so
    it stays out of the throughput geomean).  ``sampling`` is the entry
    from :func:`measure_sampling_scenario`, reported under
    ``sampling_scenario`` for the same reason.  ``telemetry`` is the
    entry from :func:`measure_telemetry_overhead`, reported under
    ``telemetry_overhead`` (a cost/phase profile, not a throughput).
    ``adaptive`` is the entry from :func:`measure_adaptive_scenario`,
    reported under ``adaptive_scenario`` (its headline figures are
    instruction-budget savings and winner agreement, not events/sec).
    """
    base_scenarios: Dict[str, Dict[str, object]] = \
        dict(baseline.get("scenarios", {})) if baseline else {}
    for entry in entries:
        base_entry = base_scenarios.get(str(entry["name"]))
        if base_entry and base_entry.get("events_per_sec"):
            entry["speedup_vs_baseline"] = round(
                float(entry["events_per_sec"])
                / float(base_entry["events_per_sec"]), 3)
    gm = round(gmean(e["events_per_sec"] for e in entries), 1)
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "created_unix": int(time.time()),
        "mode": mode,
        "repeats": repeats,
        "scenarios": entries,
        "geomean_events_per_sec": gm,
    }
    if baseline is not None:
        base_gm = float(baseline["geomean_events_per_sec"])
        report["baseline"] = {
            "source": baseline.get("source", "benchmarks/perf/"
                                             "baseline_seed.json"),
            "geomean_events_per_sec": base_gm,
            "speedup_vs_baseline": round(gm / base_gm, 3) if base_gm else None,
        }
    if warmup is not None:
        report["warmup_scenario"] = warmup
    if sampling is not None:
        report["sampling_scenario"] = sampling
    if telemetry is not None:
        report["telemetry_overhead"] = telemetry
    if adaptive is not None:
        report["adaptive_scenario"] = adaptive
    return report

"""Prefetcher interface.

A prefetcher observes demand accesses to its cache and returns a (possibly
empty) list of byte addresses to prefetch into the same cache.  The cache
filters already-resident and already-outstanding lines before issuing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List


@dataclass
class PrefetcherStats:
    observed: int = 0
    issued: int = 0


class Prefetcher(abc.ABC):
    """Base class for cache prefetchers.

    Snapshot contract: warm-state checkpoints deep-copy prefetchers, so
    keep all mutable state in deep-copyable attributes and hold no
    references to the engine or the owning cache (the cache calls
    :meth:`on_access` and issues the returned targets itself).
    """

    name = "base"

    def __init__(self) -> None:
        self.stats = PrefetcherStats()

    @abc.abstractmethod
    def predict(self, addr: int, pc: int, hit: bool) -> List[int]:
        """Prefetch candidates for one demand access."""

    def on_access(self, addr: int, pc: int, hit: bool) -> List[int]:
        """Hook invoked by the cache; wraps :meth:`predict` with stats."""
        self.stats.observed += 1
        targets = self.predict(addr, pc, hit)
        self.stats.issued += len(targets)
        return targets


class NullPrefetcher(Prefetcher):
    """No prefetching."""

    name = "none"

    def predict(self, addr: int, pc: int, hit: bool) -> List[int]:
        return []

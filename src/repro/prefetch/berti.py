"""Berti-like local-delta prefetcher for the L1D (paper Table II).

Berti (Navarro-Torres et al., MICRO 2022) learns, per load PC, the *local
delta* between successive accesses of that PC and issues prefetches for the
best-confirmed delta.  This implementation keeps a per-PC table of the last
address, candidate delta, and a confidence counter; a delta confirmed twice
starts prefetching ``degree`` steps ahead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dram.commands import LINE_SIZE
from repro.prefetch.base import Prefetcher

#: PC-indexed table capacity (entries evicted FIFO beyond this).
_TABLE_SIZE = 256

#: Confidence needed before prefetching.
_CONFIDENT = 2


class BertiPrefetcher(Prefetcher):
    """Per-PC local-delta prefetcher."""

    name = "berti"

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        self.degree = degree
        # pc -> (last_addr, delta, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}

    def predict(self, addr: int, pc: int, hit: bool) -> List[int]:
        entry = self._table.get(pc)
        targets: List[int] = []
        if entry is not None:
            last_addr, delta, conf = entry
            new_delta = addr - last_addr
            if new_delta == 0:
                return []
            if new_delta == delta:
                conf = min(conf + 1, 4)
            else:
                delta, conf = new_delta, 1
            self._table[pc] = (addr, delta, conf)
            if conf >= _CONFIDENT and delta != 0:
                for k in range(1, self.degree + 1):
                    target = addr + delta * k
                    if target > 0:
                        targets.append(target)
        else:
            if len(self._table) >= _TABLE_SIZE:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = (addr, 0, 0)
        # Deduplicate same-line targets.
        seen = set()
        unique: List[int] = []
        for t in targets:
            line = t // LINE_SIZE
            if line not in seen:
                seen.add(line)
                unique.append(t)
        return unique

"""SPP-like signature-path prefetcher for the L2 (paper Table II).

SPP (Kim et al., MICRO 2016) compresses the recent delta history within a
page into a signature and looks the signature up in a pattern table that
predicts the next block delta, chaining lookahead predictions while
confidence stays high.  This implementation keeps the signature/pattern
mechanism with a compact table and a two-step lookahead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dram.commands import LINE_SIZE
from repro.prefetch.base import Prefetcher

_PAGE_BITS = 12
_SIG_BITS = 12
_SIG_MASK = (1 << _SIG_BITS) - 1
_TABLE_SIZE = 1024
_LOOKAHEAD = 2
_MIN_CONF = 2


def _update_signature(sig: int, delta: int) -> int:
    return ((sig << 3) ^ (delta & 0x3F)) & _SIG_MASK


class SPPPrefetcher(Prefetcher):
    """Signature-path prefetcher with bounded lookahead."""

    name = "spp"

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        self.degree = degree
        # page -> (signature, last_block)
        self._pages: Dict[int, Tuple[int, int]] = {}
        # signature -> {delta: confidence}
        self._patterns: Dict[int, Dict[int, int]] = {}

    def _best_delta(self, sig: int) -> Tuple[int, int]:
        deltas = self._patterns.get(sig)
        if not deltas:
            return 0, 0
        delta = max(deltas, key=lambda d: deltas[d])
        return delta, deltas[delta]

    def predict(self, addr: int, pc: int, hit: bool) -> List[int]:
        page = addr >> _PAGE_BITS
        block = (addr >> 6) & ((1 << (_PAGE_BITS - 6)) - 1)
        state = self._pages.get(page)
        targets: List[int] = []
        if state is not None:
            sig, last_block = state
            delta = block - last_block
            if delta != 0:
                bucket = self._patterns.setdefault(sig, {})
                bucket[delta] = min(bucket.get(delta, 0) + 1, 7)
                if len(self._patterns) > _TABLE_SIZE:
                    self._patterns.pop(next(iter(self._patterns)))
                sig = _update_signature(sig, delta)
                # Chain lookahead predictions from the updated signature.
                cur_block = block
                cur_sig = sig
                for _ in range(_LOOKAHEAD):
                    pred, conf = self._best_delta(cur_sig)
                    if conf < _MIN_CONF or pred == 0:
                        break
                    cur_block += pred
                    if not 0 <= cur_block < (1 << (_PAGE_BITS - 6)):
                        break
                    targets.append(
                        (page << _PAGE_BITS) | (cur_block << 6)
                    )
                    cur_sig = _update_signature(cur_sig, pred)
            self._pages[page] = (sig, block)
        else:
            if len(self._pages) >= _TABLE_SIZE:
                self._pages.pop(next(iter(self._pages)))
            self._pages[page] = (0, block)
        # Deduplicate same-line targets.
        seen = set()
        unique: List[int] = []
        for t in targets[: self.degree]:
            line = t // LINE_SIZE
            if line not in seen:
                seen.add(line)
                unique.append(t)
        return unique

"""Prefetchers: Berti-like (L1D) and SPP-like (L2), per paper Table II."""

from typing import Optional

from repro.errors import ConfigError
from repro.prefetch.base import NullPrefetcher, Prefetcher, PrefetcherStats
from repro.prefetch.berti import BertiPrefetcher
from repro.prefetch.spp import SPPPrefetcher


def make_prefetcher(name: Optional[str]) -> Optional[Prefetcher]:
    """Construct a prefetcher by name: None/'none', 'berti', 'spp'."""
    if name is None or name.lower() == "none":
        return None
    lname = name.lower()
    if lname == "berti":
        return BertiPrefetcher()
    if lname == "spp":
        return SPPPrefetcher()
    raise ConfigError(f"unknown prefetcher {name!r}")


__all__ = [
    "BertiPrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "PrefetcherStats",
    "SPPPrefetcher",
    "make_prefetcher",
]

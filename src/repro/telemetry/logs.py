"""Structured logging for the ``repro.*`` logger hierarchy.

Every service, worker, and CLI component logs through a child of the
``repro`` logger (``repro.service``, ``repro.workers``, ``repro.cli``).
:func:`configure_logging` is the single switch the CLI flips from
``--log-level``/``--log-json``: it installs one stderr handler on the
``repro`` root so records never double-print, and in JSON mode swaps
the human formatter for :class:`JsonLinesFormatter`, which emits one
JSON object per line - machine-parseable job-transition records for
log shippers.

Structured fields ride on the standard-library ``extra=`` mechanism::

    logger.info("job %s -> %s", key, state,
                extra={"event": "job.transition", "job": key,
                       "from_state": old, "to_state": state})

The JSON formatter folds any non-standard record attribute into the
emitted object, so the ``extra`` keys above surface as top-level JSON
fields without a custom adapter.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

ROOT_LOGGER = "repro"

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_RESERVED = frozenset((
    "name", "msg", "args", "levelname", "levelno", "pathname",
    "filename", "module", "exc_info", "exc_text", "stack_info",
    "lineno", "funcName", "created", "msecs", "relativeCreated",
    "thread", "threadName", "processName", "process", "message",
    "taskName", "asctime",
))


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "iso": time.strftime("%Y-%m-%dT%H:%M:%S",
                                 time.gmtime(record.created))
                   + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            payload["exc"] = repr(record.exc_info[1])
        return json.dumps(payload, sort_keys=True)


class _LiveStderrHandler(logging.StreamHandler):
    """A StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream once at configure time goes stale whenever the
    surrounding process swaps ``sys.stderr`` (pytest capture, daemon
    redirection); emitting to the then-closed object raises inside the
    logging machinery.  Resolving late always writes to the live one.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> Any:
        return sys.stderr

    @stream.setter
    def stream(self, value: Any) -> None:  # StreamHandler pokes this
        pass


def configure_logging(level: str = "info", json_lines: bool = False,
                      stream: Optional[Any] = None) -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previous handler rather
    than stacking a second one, so CLI commands can call it freely.
    Records still propagate upward, so log-capture tooling attached to
    the root logger (e.g. pytest's ``caplog``) keeps seeing them; the
    CLI never configures the root logger, so nothing double-prints.
    Returns the configured root logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(getattr(logging, level.upper(), logging.INFO))
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler: logging.StreamHandler = (
        logging.StreamHandler(stream) if stream is not None
        else _LiveStderrHandler())
    handler._repro_handler = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
    logger.addHandler(handler)
    logger.propagate = True
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` hierarchy (``get_logger("service")``)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")

"""The measurement plane: metrics, phase tracing, structured logs.

Three submodules, one import surface:

* :mod:`~repro.telemetry.registry` - dependency-free counters, gauges,
  and histograms with labels, rendered in the Prometheus text format.
* :mod:`~repro.telemetry.tracing` - nestable phase spans exported as
  Chrome trace-event JSON (Perfetto-loadable).
* :mod:`~repro.telemetry.logs` - the ``repro.*`` logging hierarchy and
  JSON-lines formatter.

The module-level helpers here (:func:`counter`, :func:`gauge`,
:func:`histogram`, :func:`span`) are the *gated* hot-path API: with
telemetry disabled (the default) they return shared no-op singletons -
no allocation, no locking - so golden stats stay bit-identical and the
simulation core pays one boolean check.  Enable with
``REPRO_TELEMETRY=1`` in the environment or :func:`enable` in-process.

Operational service code (queue, workers, HTTP API) bypasses the gate
and talks to :data:`REGISTRY` directly: those metrics are always live
so ``/v1/metrics`` has something to serve on a default ``repro serve``.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, Optional, Sequence

from .logs import JsonLinesFormatter, configure_logging, get_logger
from .registry import (DEFAULT_BUCKETS, DEFAULT_MAX_SERIES, NOOP,
                       REGISTRY, TELEMETRY_ENV, GaugeFamily,
                       HistogramFamily, MetricFamily, MetricsRegistry,
                       disable, enable, enabled)
from .tracing import TRACER, Span, Tracer, phase_key

__all__ = [
    "TELEMETRY_ENV", "enabled", "enable", "disable",
    "REGISTRY", "MetricsRegistry", "MetricFamily", "GaugeFamily",
    "HistogramFamily", "NOOP", "DEFAULT_BUCKETS", "DEFAULT_MAX_SERIES",
    "TRACER", "Tracer", "Span", "phase_key", "span", "get_tracer",
    "counter", "gauge", "histogram", "publish_run_result",
    "registry_value",
    "configure_logging", "get_logger", "JsonLinesFormatter",
]

#: One reusable null context manager shared by every disabled span
#: call site - ``span(...)`` when telemetry is off allocates nothing.
_NULL_SPAN = nullcontext()


def get_tracer() -> Tracer:
    """The process-wide tracer (always available, even when disabled)."""
    return TRACER


def registry_value(name: str, **labels: str) -> float:
    """One series' current value from :data:`REGISTRY`, 0.0 when absent.

    The read-side convenience for always-on operational families
    (``repro_adaptive_*``, queue/worker counters): callers rendering a
    stats payload - or tests reconciling report totals against counter
    deltas - want "the number, or zero if nothing incremented it yet"
    without reimplementing the family-missing check.
    """
    family = REGISTRY.get(name)
    return family.value(**labels) if family is not None else 0.0


def span(name: str, category: str = "run",
         breakdown: Optional[Dict[str, float]] = None,
         **args: Any):
    """A phase-span context manager, or a shared no-op when disabled.

    The disabled return value is one module-level ``nullcontext`` - the
    zero-allocation fast path the hot loop relies on.
    """
    if not enabled():
        return _NULL_SPAN
    return TRACER.span(name, category, breakdown=breakdown, **args)


def counter(name: str, help: str = "",
            labelnames: Sequence[str] = ()):
    """A counter family, or :data:`NOOP` when telemetry is disabled."""
    if not enabled():
        return NOOP
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "",
          labelnames: Sequence[str] = ()):
    """A gauge family, or :data:`NOOP` when telemetry is disabled."""
    if not enabled():
        return NOOP
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "",
              labelnames: Sequence[str] = (),
              buckets: Sequence[float] = DEFAULT_BUCKETS):
    """A histogram family, or :data:`NOOP` when telemetry is disabled."""
    if not enabled():
        return NOOP
    return REGISTRY.histogram(name, help, labelnames, buckets=buckets)


def publish_run_result(result: Any, workload: str = "",
                       policy: str = "") -> None:
    """Fold one finished run's counters into the registry.

    The engine is deliberately *not* instrumented per-event (the
    disabled-overhead gate forbids it); instead the aggregate counts a
    run already collects - events fired, LLC hits/misses, DRAM
    reads/writes - are published once at the phase boundary.  No-op
    when telemetry is disabled.
    """
    if not enabled():
        return
    labels = {"workload": workload or getattr(result, "workload", ""),
              "policy": policy or getattr(result, "policy", "")}
    runs = REGISTRY.counter(
        "repro_runs_total", "Simulation runs completed",
        ("workload", "policy"))
    runs.labels(**labels).inc()
    for metric, attr in (
            ("repro_run_events_total", "events_fired"),
            ("repro_run_instructions_total", "instructions"),
            ("repro_run_ticks_total", "elapsed_ticks")):
        value = getattr(result, attr, None)
        if value:
            family = REGISTRY.counter(
                metric, f"Aggregate {attr} across runs",
                ("workload", "policy"))
            family.labels(**labels).inc(float(value))
    llc = getattr(result, "llc", None)
    if llc is not None:
        for metric, attr in (("repro_llc_hits_total", "hits"),
                             ("repro_llc_misses_total", "misses")):
            value = getattr(llc, attr, 0)
            if value:
                family = REGISTRY.counter(
                    metric, f"Aggregate LLC {attr} across runs",
                    ("workload", "policy"))
                family.labels(**labels).inc(float(value))
    breakdown = getattr(result, "phase_breakdown", None)
    if breakdown:
        phases = REGISTRY.counter(
            "repro_phase_seconds_total",
            "Wall-clock seconds spent per run phase", ("phase",))
        for phase, seconds in breakdown.items():
            phases.labels(phase=phase).inc(seconds)

"""Phase tracing: nestable spans exportable as Chrome trace-event JSON.

A *span* is one timed phase of a run - ``warmup.functional``,
``checkpoint.restore``, ``sampling.interval[3]``, ``measure``,
``cache.put`` - recorded on the process-wide :class:`Tracer`.  Spans
nest through a per-thread stack, so a ``cache.get`` inside ``measure``
renders as a child in Perfetto, and concurrent worker threads never
interleave each other's stacks.

Exports follow the Chrome trace-event format (the ``traceEvents`` array
of ``"ph": "X"`` *complete* events with microsecond ``ts``/``dur``),
which ``chrome://tracing`` and https://ui.perfetto.dev load directly -
see ``docs/observability.md`` for the walkthrough.

Cost model: the module-level :func:`~repro.telemetry.span` helper checks
the telemetry flag before touching the tracer, so the disabled hot path
is a function call returning a shared null context manager.  Enabled
spans take two ``perf_counter`` reads and one appended record; the
record list is bounded (:attr:`Tracer.max_events`) so a long-lived
service cannot leak memory into its tracer.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """One finished phase: name, wall-clock bounds, nesting depth."""

    __slots__ = ("name", "category", "start", "duration", "depth",
                 "thread_id", "args")

    def __init__(self, name: str, category: str, start: float,
                 duration: float, depth: int, thread_id: int,
                 args: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.category = category
        self.start = start  # seconds since the tracer's epoch
        self.duration = duration  # seconds
        self.depth = depth
        self.thread_id = thread_id
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, depth={self.depth}, "
                f"dur={self.duration * 1e3:.3f}ms)")


def phase_key(name: str) -> str:
    """Aggregation key for a span name: indexed phases collapse.

    ``sampling.interval[7]`` -> ``sampling.interval`` so a 100-interval
    run's breakdown has one ``sampling.interval`` entry, not 100.
    """
    bracket = name.find("[")
    return name[:bracket] if bracket != -1 else name


class _SpanContext:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_breakdown", "_args",
                 "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 breakdown: Optional[Dict[str, float]],
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._breakdown = breakdown
        self._args = args

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        duration = end - self._start
        self._tracer._record(
            Span(self._name, self._category,
                 self._start - self._tracer.epoch, duration,
                 self._depth, threading.get_ident(), self._args))
        if self._breakdown is not None:
            key = phase_key(self._name)
            self._breakdown[key] = \
                self._breakdown.get(key, 0.0) + duration


class Tracer:
    """Thread-safe collector of spans with Chrome trace export."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = max_events
        self.epoch = time.perf_counter()
        #: Spans dropped after :attr:`max_events` filled up.
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_events:
                self.dropped += 1
                return
            self._spans.append(span)

    def span(self, name: str, category: str = "run",
             breakdown: Optional[Dict[str, float]] = None,
             **args: Any) -> _SpanContext:
        """Context manager timing one phase.

        ``breakdown`` is an optional dict the span's duration is also
        accumulated into under :func:`phase_key` - how ``System`` builds
        the per-run ``phase_breakdown`` without a second pass over the
        tracer.
        """
        return _SpanContext(self, name, category,
                            breakdown, args or None)

    # -- introspection -------------------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def reset(self) -> None:
        """Drop recorded spans and restart the epoch (per-run exports)."""
        with self._lock:
            self._spans = []
            self.dropped = 0
            self.epoch = time.perf_counter()

    def phase_totals(self, depth: Optional[int] = None
                     ) -> Dict[str, float]:
        """Summed seconds per :func:`phase_key`, optionally one depth.

        ``depth=0`` gives the top-level breakdown whose total tracks the
        run's wall-clock (children re-count their parents' time).
        """
        totals: Dict[str, float] = {}
        for span in self.spans():
            if depth is not None and span.depth != depth:
                continue
            key = phase_key(span.name)
            totals[key] = totals.get(key, 0.0) + span.duration
        return totals

    def export_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        ``traceEvents`` holds one complete (``"ph": "X"``) event per
        span with microsecond timestamps relative to the tracer epoch;
        Perfetto reconstructs nesting from ``ts``/``dur`` per thread.
        """
        pid = os.getpid()
        events = []
        for span in sorted(self.spans(),
                           key=lambda s: (s.start, -s.duration)):
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": span.thread_id % 1_000_000,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.telemetry",
                          "dropped_spans": self.dropped},
        }


#: The process-wide tracer hot-path spans record into.
TRACER = Tracer()

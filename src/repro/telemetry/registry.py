"""Dependency-free metrics registry: counters, gauges, histograms.

The measurement plane's data model is deliberately small: a *metric
family* has a name, a help string, and a fixed tuple of label names;
``family.labels(tenant="alice")`` resolves one *series* (a child) that
carries the actual value.  Everything is guarded by one lock per family,
so concurrent increments from worker shards, HTTP handler threads, and
the dispatcher never lose updates.

Two cost regimes coexist:

* **Hot-path instrumentation** (the engine tick loop, Session execution,
  span recording) goes through the module-level helpers in
  :mod:`repro.telemetry` which check :func:`enabled` first and return
  the shared :data:`NOOP` singleton when telemetry is off - no
  allocation, no locking, one dict lookup and one attribute call.
* **Operational metrics** (queue transitions, HTTP requests, store
  hits) talk to :data:`REGISTRY` directly and are always on: they are
  amortised over network calls or job lifetimes where a lock acquire is
  noise, and they are what ``/v1/metrics`` serves.

Label cardinality is bounded per family (``max_series``): past the
bound, new label combinations collapse into a single ``overflow="true"``
series instead of growing without limit - a runaway label (say, a run
key used as a label value) degrades gracefully and observably rather
than eating the process.

Rendering follows the Prometheus text exposition format, version
0.0.4 - the subset every scraper parses: ``# HELP``/``# TYPE`` headers,
``name{label="value"} 1.23`` samples, histogram ``_bucket``/``_sum``/
``_count`` series with a ``+Inf`` bucket.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Environment switch: set to a non-empty value (other than "0") to
#: enable hot-path telemetry at import time.  Inherited by forked
#: worker processes, which is how service shards pick the flag up.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Series cap per metric family; excess label sets collapse into one
#: overflow series (see module docstring).
DEFAULT_MAX_SERIES = 256

#: Default histogram bucket upper bounds (seconds-flavoured: spans and
#: queue ages are the histograms this codebase records).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)

_enabled = os.environ.get(TELEMETRY_ENV, "") not in ("", "0")


def enabled() -> bool:
    """Whether hot-path telemetry is on (module-level flag check)."""
    return _enabled


def enable() -> None:
    """Turn hot-path telemetry on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn hot-path telemetry off (operational metrics stay live)."""
    global _enabled
    _enabled = False


class _Noop:
    """Shared do-nothing instrument: the disabled-mode fast path.

    Every method accepts the enabled-mode signature and returns
    immediately; ``labels`` returns the same singleton so chained call
    sites (``counter(...).labels(...).inc()``) stay allocation-free.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def labels(self, **labels: str) -> "_Noop":
        return self


#: The one no-op instrument every disabled call site shares.
NOOP = _Noop()


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Series:
    """One labelled child of a counter or gauge family."""

    __slots__ = ("_family", "value")

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)


class _HistogramSeries:
    """One labelled child of a histogram family."""

    __slots__ = ("_family", "counts", "sum", "count")

    def __init__(self, family: "HistogramFamily") -> None:
        self._family = family
        self.counts = [0] * (len(family.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._family.buckets, value)
        with self._family._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class MetricFamily:
    """A named metric with a fixed label schema and many series."""

    kind = "counter"
    _series_cls: type = _Series

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_series = max(1, int(max_series))
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        #: Label sets that collapsed into the overflow series.
        self.dropped_series = 0

    # -- series resolution --------------------------------------------

    def labels(self, **labels: str) -> Any:
        """The series for one label combination (created on first use).

        Unknown or missing label names raise ``ValueError`` - a schema
        typo should fail loudly in tests, not silently mint a series.
        """
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        return self._child(key)

    def _child(self, key: Tuple[str, ...]) -> Any:
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self.max_series and \
                        key != self._overflow_key():
                    self.dropped_series += 1
                    key = self._overflow_key()
                    child = self._children.get(key)
                    if child is not None:
                        return child
                child = self._series_cls(self)
                self._children[key] = child
            return child

    def _overflow_key(self) -> Tuple[str, ...]:
        return tuple("overflow" for _ in self.labelnames) or ()

    def _default(self) -> Any:
        """The unlabelled series (families declared without labels)."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels "
                f"{list(self.labelnames)}; use .labels(...)")
        return self._child(())

    # -- unlabelled conveniences --------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    # -- introspection -------------------------------------------------

    def series(self) -> Dict[Tuple[str, ...], Any]:
        with self._lock:
            return dict(self._children)

    def value(self, **labels: str) -> float:
        """Current value of one series (0 if it never existed)."""
        key = tuple(str(labels.get(name, "")) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
        return child.value if child is not None else 0.0

    def _render_series(self, key: Tuple[str, ...], child: Any,
                       out: List[str]) -> None:
        out.append(f"{self.name}{self._labelset(key)} "
                   f"{_format_value(child.value)}")

    def _labelset(self, key: Tuple[str, ...],
                  extra: str = "") -> str:
        pairs = [f'{name}="{_escape_label(value)}"'
                 for name, value in zip(self.labelnames, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> List[str]:
        """Text-exposition lines for this family (HELP/TYPE + samples)."""
        out = [f"# HELP {self.name} {self.help or self.name}",
               f"# TYPE {self.name} {self.kind}"]
        for key, child in sorted(self.series().items()):
            self._render_series(key, child, out)
        return out


class GaugeFamily(MetricFamily):
    kind = "gauge"


class HistogramFamily(MetricFamily):
    kind = "histogram"
    _series_cls = _HistogramSeries

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 max_series: int = DEFAULT_MAX_SERIES) -> None:
        super().__init__(name, help, labelnames, max_series)
        self.buckets = tuple(sorted(buckets))

    def _render_series(self, key: Tuple[str, ...],
                       child: _HistogramSeries, out: List[str]) -> None:
        with self._lock:
            counts = list(child.counts)
            total = child.count
            cumulative_sum = child.sum
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            le = 'le="' + _format_value(float(bound)) + '"'
            out.append(f"{self.name}_bucket{self._labelset(key, le)} "
                       f"{cumulative}")
        inf = 'le="+Inf"'
        out.append(f"{self.name}_bucket{self._labelset(key, inf)} "
                   f"{total}")
        out.append(f"{self.name}_sum{self._labelset(key)} "
                   f"{_format_value(cumulative_sum)}")
        out.append(f"{self.name}_count{self._labelset(key)} {total}")


class MetricsRegistry:
    """Named collection of metric families with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str],
                       **kwargs: Any) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help=help, labelnames=labelnames,
                             **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls) or \
                family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{family.kind} with labels {list(family.labelnames)}")
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = (),
                max_series: int = DEFAULT_MAX_SERIES) -> MetricFamily:
        return self._get_or_create(MetricFamily, name, help, labelnames,
                                   max_series=max_series)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = (),
              max_series: int = DEFAULT_MAX_SERIES) -> GaugeFamily:
        return self._get_or_create(GaugeFamily, name, help, labelnames,
                                   max_series=max_series)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  max_series: int = DEFAULT_MAX_SERIES
                  ) -> HistogramFamily:
        return self._get_or_create(HistogramFamily, name, help,
                                   labelnames, buckets=buckets,
                                   max_series=max_series)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(),
                          key=lambda f: f.name)

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self.families())

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat ``{name: {labelset: value}}`` view (tests, ``repro top``).

        Histogram series appear as ``name_count``/``name_sum`` entries.
        """
        out: Dict[str, Dict[str, float]] = {}
        for family in self.families():
            if isinstance(family, HistogramFamily):
                counts: Dict[str, float] = {}
                sums: Dict[str, float] = {}
                for key, child in family.series().items():
                    label = ",".join(key)
                    counts[label] = child.count
                    sums[label] = child.sum
                out[f"{family.name}_count"] = counts
                out[f"{family.name}_sum"] = sums
            else:
                out[family.name] = {
                    ",".join(key): child.value
                    for key, child in family.series().items()}
        return out

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry ``/v1/metrics`` renders.
REGISTRY = MetricsRegistry()

"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``            one workload under one configuration, print metrics
``compare``        one workload under several writeback policies
``characterize``   Table IV-style characterization of several workloads
``sweep-wq``       write-queue size sweep (paper Fig. 17)
``list``           available workloads, policies, and presets

Examples::

    python -m repro run lbm --policy bard-h
    python -m repro compare lbm --policies baseline bard-e bard-c bard-h
    python -m repro characterize lbm copy cf whiskey
    python -m repro sweep-wq --workloads lbm copy --sizes 32 48 64
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import characterization_report, comparison_report
from repro.analysis.tables import format_table
from repro.config.presets import paper_8core, paper_16core, small_8core, \
    small_16core
from repro.config.system import SystemConfig
from repro.sim.runner import compare_policies, run_workload
from repro.workloads.suites import ALL_WORKLOADS

_PRESETS = {
    "small-8core": small_8core,
    "small-16core": small_16core,
    "paper-8core": paper_8core,
    "paper-16core": paper_16core,
}

_POLICY_CHOICES = ["baseline", "bard-e", "bard-c", "bard-h", "eager", "vwq"]


def _policy_arg(name: str) -> Optional[str]:
    return None if name == "baseline" else name


def _build_config(args) -> SystemConfig:
    cfg = _PRESETS[args.preset]()
    if getattr(args, "replacement", None):
        cfg = cfg.with_replacement(args.replacement)
    if getattr(args, "device", None):
        cfg = cfg.with_device(args.device)
    if getattr(args, "ideal_writes", False):
        cfg = cfg.with_ideal_writes()
    if getattr(args, "refresh", False):
        cfg = cfg.with_refresh()
    return cfg


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=sorted(_PRESETS),
                        default="small-8core",
                        help="system preset (default: small-8core)")
    parser.add_argument("--replacement",
                        choices=["lru", "srrip", "ship", "drrip"],
                        help="LLC replacement policy")
    parser.add_argument("--device", choices=["x4", "x8"],
                        help="DDR5 device width")
    parser.add_argument("--seed", type=int, default=7)


def _cmd_run(args) -> int:
    cfg = _build_config(args)
    cfg = cfg.with_writeback(_policy_arg(args.policy))
    result = run_workload(cfg, args.workload, seed=args.seed)
    print(characterization_report([(args.workload, result)],
                                  title=f"run: {args.workload} "
                                        f"({args.policy})"))
    return 0


def _cmd_compare(args) -> int:
    cfg = _build_config(args)
    policies = [_policy_arg(p) for p in args.policies]
    if policies[0] is not None:
        policies.insert(0, None)
    comp = compare_policies(cfg, args.workload, policies, seed=args.seed)
    base = comp.results["baseline"]
    for name, result in comp.results.items():
        if name == "baseline":
            continue
        print(comparison_report(base, result, workload=args.workload))
        print()
    return 0


def _cmd_characterize(args) -> int:
    cfg = _build_config(args)
    results = [
        (wl, run_workload(cfg, wl, seed=args.seed))
        for wl in args.workloads
    ]
    print(characterization_report(results))
    return 0


def _cmd_sweep_wq(args) -> int:
    cfg = _build_config(args)
    reference = {
        wl: run_workload(cfg, wl, seed=args.seed)
        for wl in args.workloads
    }
    rows = []
    for size in args.sizes:
        sized = cfg.with_wq(size)
        for label, final_cfg in (
            ("baseline", sized),
            ("bard-h", sized.with_writeback("bard-h")),
        ):
            speedups = [
                run_workload(final_cfg, wl, seed=args.seed)
                .speedup_pct(reference[wl])
                for wl in args.workloads
            ]
            rows.append((size, label,
                         sum(speedups) / len(speedups)))
    print(format_table(["WQ size", "policy", "mean speedup %"], rows,
                       title="write-queue sweep vs 48-entry baseline "
                             "(cf. paper Fig. 17)"))
    return 0


def _cmd_list(args) -> int:
    print("workloads:", " ".join(ALL_WORKLOADS))
    print("policies: ", " ".join(_POLICY_CHOICES))
    print("presets:  ", " ".join(sorted(_PRESETS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BARD (HPCA 2026) reproduction: DDR5 write-latency "
                    "simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload")
    p_run.add_argument("workload", choices=ALL_WORKLOADS)
    p_run.add_argument("--policy", choices=_POLICY_CHOICES,
                       default="baseline")
    p_run.add_argument("--ideal-writes", action="store_true",
                       dest="ideal_writes")
    p_run.add_argument("--refresh", action="store_true")
    _add_common(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare writeback policies")
    p_cmp.add_argument("workload", choices=ALL_WORKLOADS)
    p_cmp.add_argument("--policies", nargs="+", choices=_POLICY_CHOICES,
                       default=["baseline", "bard-h"])
    _add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_chr = sub.add_parser("characterize",
                           help="Table IV-style characterization")
    p_chr.add_argument("workloads", nargs="+", choices=ALL_WORKLOADS)
    _add_common(p_chr)
    p_chr.set_defaults(fn=_cmd_characterize)

    p_wq = sub.add_parser("sweep-wq", help="write-queue size sweep")
    p_wq.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS,
                      default=["lbm", "copy"])
    p_wq.add_argument("--sizes", nargs="+", type=int,
                      default=[32, 48, 64, 96, 128])
    _add_common(p_wq)
    p_wq.set_defaults(fn=_cmd_sweep_wq)

    p_ls = sub.add_parser("list", help="list workloads/policies/presets")
    p_ls.set_defaults(fn=_cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------

``run``            one workload under one configuration, print metrics
``compare``        one workload under several writeback policies
``characterize``   Table IV-style characterization of several workloads
``sweep``          grid sweep over arbitrary axes (workloads x policies
                   x seeds x any registered config axis); ``--adaptive``
                   orchestrates the grid budget-aware (docs/adaptive.md)
``sweep-wq``       write-queue size sweep (paper Fig. 17)
``list``           available workloads, policies, presets, and axes
``serve``          run the long-running experiment service (HTTP API)
``submit``         submit a grid to a running service and fetch results
``jobs``           inspect a service's job table (``--quarantined`` for
                   the dead-letter queue; ``--requeue`` to drain it;
                   ``--watch`` to poll it live)
``trace``          run one workload with telemetry enabled and write a
                   Chrome trace-event JSON (load in Perfetto)
``top``            live service dashboard polling ``/v1/stats``

Every simulating command runs through the declarative experiment layer
(:mod:`repro.experiment`): duplicate grid points simulate once, finished
runs are cached on disk (``--cache-dir``/``--no-cache``), fresh runs can
fan out over processes (``--parallel N``, ``0`` = all cores), and
``--json`` emits ``{"records": [...], "stats": {...}}`` - the records
plus the session's accounting (cache hits, warmups executed, checkpoint
restores) - instead of tables.  ``serve``/``submit`` move the same grids
onto a shared multi-tenant service (see ``docs/service.md``); the local
commands and the service exchange artifacts through the same
content-addressed cache.

Examples::

    python -m repro run lbm --policy bard-h
    python -m repro compare lbm --policies baseline bard-e bard-c bard-h
    python -m repro characterize lbm copy cf whiskey --parallel 4
    python -m repro sweep --workloads lbm copy --axis wq=32,48,64 \\
        --axis policy=baseline,bard-h --speedup-vs policy
    python -m repro sweep --workloads lbm copy --sample 4 \\
        --axis policy=baseline,bard-h --adaptive --adaptive-error 2
    python -m repro sweep-wq --workloads lbm copy --sizes 32 48 64
    python -m repro serve --port 8023 --workers 4
    python -m repro submit --workloads lbm --axis policy=baseline,bard-h \\
        --server http://127.0.0.1:8023 --tenant alice
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro import telemetry
from repro.analysis.report import characterization_report, \
    comparison_report, sampling_note
from repro.analysis.tables import format_table
from repro.config.presets import PRESETS as _PRESETS
from repro.config.system import SystemConfig
from repro.errors import ConfigError
from repro.experiment import AXIS_MODIFIERS, Axis, ExperimentSpec, \
    ResultSet, RunSpec, Session, SessionInterrupted, make_axis
from repro.experiment.cache import default_cache_dir
from repro.experiment.resultset import RELATIVE_METRICS, valid_metric
from repro.experiment.spec import BASELINE, INHERIT, policy_arg
from repro.sampling import SamplingConfig
from repro.telemetry import configure_logging, get_logger
from repro.workloads.suites import ALL_WORKLOADS

_POLICY_CHOICES = ["baseline", "bard-e", "bard-c", "bard-h", "eager", "vwq"]

_log = get_logger("cli")


def _policy_arg(name: str) -> Optional[str]:
    return policy_arg(name)


def _build_config(args) -> SystemConfig:
    cfg = _PRESETS[args.preset]()
    if getattr(args, "replacement", None):
        cfg = cfg.with_replacement(args.replacement)
    if getattr(args, "device", None):
        cfg = cfg.with_device(args.device)
    if getattr(args, "ideal_writes", False):
        cfg = cfg.with_ideal_writes()
    if getattr(args, "refresh", False):
        cfg = cfg.with_refresh()
    if getattr(args, "instructions", None) is not None:
        if args.instructions <= 0:
            raise ConfigError("--instructions must be positive")
        cfg = replace(cfg, sim_instructions=args.instructions)
    if getattr(args, "warmup", None) is not None:
        if args.warmup < 0:
            raise ConfigError("--warmup must be >= 0")
        cfg = replace(cfg, warmup_instructions=args.warmup)
    if getattr(args, "warmup_mode", None):
        cfg = cfg.with_warmup_mode(args.warmup_mode)
    return _apply_sampling(args, cfg)


def _apply_sampling(args, cfg: SystemConfig) -> SystemConfig:
    """Attach a sampling plan built from the ``--sample*`` flags, if any.

    ``--sample``/``--sample-error`` switch the run to interval sampling;
    that requires functional warmup, so the mode is upgraded
    automatically unless the user pinned ``--warmup-mode detailed`` - an
    invalid combination that surfaces as a :class:`ConfigError`.
    """
    enabled = getattr(args, "sample", None) is not None \
        or getattr(args, "sample_error", None) is not None
    if not enabled:
        return cfg
    if cfg.warmup_mode != "functional" \
            and getattr(args, "warmup_mode", None) is None:
        cfg = cfg.with_warmup_mode("functional")
    kwargs = {}
    if args.sample is not None:
        kwargs["intervals"] = args.sample
        # max_intervals is an adaptive-mode knob with no CLI flag; keep
        # it out of the user's way for large fixed-count plans.
        kwargs["max_intervals"] = max(SamplingConfig().max_intervals,
                                      args.sample)
    if getattr(args, "sample_interval", None) is not None:
        kwargs["interval_instructions"] = args.sample_interval
    if getattr(args, "sample_period", None) is not None:
        kwargs["period_instructions"] = args.sample_period
    if getattr(args, "sample_warm", None) is not None:
        kwargs["warm_instructions"] = args.sample_warm
    if getattr(args, "sample_scheme", None) is not None:
        kwargs["scheme"] = args.sample_scheme
    if getattr(args, "sample_seed", None) is not None:
        kwargs["scheme_seed"] = args.sample_seed
    if getattr(args, "sample_error", None) is not None:
        kwargs["target_relative_error"] = args.sample_error / 100.0
    return cfg.with_sampling(SamplingConfig(**kwargs))


def _resolve_parallel(value: Optional[int]) -> int:
    """Validate ``--parallel``: N>=1 workers, 0 = all cores, else error."""
    if value is None:
        return 1
    if value < 0:
        raise ConfigError(
            f"--parallel must be >= 0 (got {value}; 0 means one worker "
            f"per CPU core)")
    if value == 0:
        return os.cpu_count() or 1
    return value


def _session(args) -> Session:
    return Session(cache_dir=getattr(args, "cache_dir", None),
                   parallel=_resolve_parallel(
                       getattr(args, "parallel", 1)),
                   cache=not getattr(args, "no_cache", False))


def _progress(done: int, total: int, spec: RunSpec) -> None:
    _log.info("[%d/%d] %s", done, total, spec.label,
              extra={"event": "run.progress", "completed": done,
                     "total": total, "label": spec.label})


def _progress_fn(args):
    if sys.stderr.isatty():
        return _progress
    return None


def _emit_json(rs: ResultSet, session: Session, metrics=(),
               adaptive=None) -> None:
    """Records plus the session's accounting, one JSON object.

    The ``stats`` block mirrors what the experiment service reports for
    a grid, so scripted consumers see the same accounting whether a run
    executed locally or through ``repro submit``.  Adaptive sweeps add
    an ``adaptive`` block (the AdaptiveReport), matching the service
    result envelope's ``report``.
    """
    envelope = {
        "name": rs.name,
        "records": rs.to_records(metrics),
        "stats": dataclasses.asdict(session.stats),
    }
    if adaptive is not None:
        envelope["adaptive"] = adaptive.to_dict()
    print(json.dumps(envelope, indent=2))


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Machine-configuration flags shared by local and service commands."""
    parser.add_argument("--preset", choices=sorted(_PRESETS),
                        default="small-8core",
                        help="system preset (default: small-8core)")
    parser.add_argument("--replacement",
                        choices=["lru", "srrip", "ship", "drrip"],
                        help="LLC replacement policy")
    parser.add_argument("--device", choices=["x4", "x8"],
                        help="DDR5 device width")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--instructions", type=int, metavar="N",
                        help="override per-core simulated instructions")
    parser.add_argument("--warmup", type=int, metavar="N",
                        help="override per-core warmup instructions")
    parser.add_argument("--warmup-mode", dest="warmup_mode",
                        choices=["detailed", "functional"],
                        help="warmup execution mode: 'detailed' (default; "
                             "full timing model) or 'functional' (state "
                             "machines only - several times faster, and "
                             "policy grids share one warmup via warm-state "
                             "checkpoints)")
    parser.add_argument("--sample", type=int, metavar="N",
                        help="sample the measurement epoch with N detailed "
                             "intervals instead of simulating it "
                             "monolithically (implies functional warmup; "
                             "see docs/sampling.md)")
    parser.add_argument("--sample-interval", dest="sample_interval",
                        type=int, metavar="N",
                        help="instructions measured per interval, per core "
                             "(default 1000)")
    parser.add_argument("--sample-period", dest="sample_period",
                        type=int, metavar="N",
                        help="instructions between interval starts "
                             "(default: epoch/intervals)")
    parser.add_argument("--sample-warm", dest="sample_warm",
                        type=int, metavar="N",
                        help="functional-warming instructions before each "
                             "interval (default 2000)")
    parser.add_argument("--sample-scheme", dest="sample_scheme",
                        choices=["periodic", "random"],
                        help="interval placement within each period "
                             "(default periodic)")
    parser.add_argument("--sample-seed", dest="sample_seed", type=int,
                        metavar="N",
                        help="placement seed for --sample-scheme random")
    parser.add_argument("--sample-error", dest="sample_error", type=float,
                        metavar="PCT",
                        help="adaptive sampling: keep adding intervals "
                             "until the mean-IPC CI half-width is within "
                             "PCT%% of the mean")


def _add_adaptive_args(parser: argparse.ArgumentParser) -> None:
    """Grid-level adaptive-orchestration flags (see docs/adaptive.md)."""
    parser.add_argument("--adaptive", action="store_true",
                        help="orchestrate the grid adaptively: survey "
                             "every cell with cheap sampling, then spend "
                             "refinement rounds only on cells whose CIs "
                             "still straddle the decision boundary "
                             "(see docs/adaptive.md)")
    parser.add_argument("--adaptive-error", dest="adaptive_error",
                        type=float, default=5.0, metavar="PCT",
                        help="per-cell target relative CI half-width "
                             "(default 5%%)")
    parser.add_argument("--adaptive-budget", dest="adaptive_budget",
                        type=int, metavar="N",
                        help="hard cap on detailed instructions spent "
                             "across the grid (default: unbounded)")
    parser.add_argument("--adaptive-metric", dest="adaptive_metric",
                        default="mean_ipc",
                        help="decision metric, one of the sampled "
                             "metrics (default mean_ipc)")
    parser.add_argument("--adaptive-axis", dest="adaptive_axis",
                        default="policy",
                        help="axis the comparison is decided along; "
                             "dominated values are pruned early "
                             "(default policy)")
    parser.add_argument("--adaptive-rounds", dest="adaptive_rounds",
                        type=int, default=4, metavar="N",
                        help="max refinement rounds per cell (default 4)")
    parser.add_argument("--adaptive-start", dest="adaptive_start",
                        type=int, default=4, metavar="N",
                        help="interval count of the survey pass "
                             "(default 4)")


def _adaptive_policy(args):
    """The AdaptivePolicy from ``--adaptive*`` flags, or None."""
    if not getattr(args, "adaptive", False):
        return None
    from repro.adaptive import AdaptivePolicy

    if args.adaptive_error <= 0:
        raise ConfigError("--adaptive-error must be positive")
    return AdaptivePolicy(
        metric=args.adaptive_metric,
        target_relative_error=args.adaptive_error / 100.0,
        budget_instructions=args.adaptive_budget,
        max_rounds=args.adaptive_rounds,
        start_intervals=args.adaptive_start,
        compare_axis=args.adaptive_axis)


def _render_adaptive(report) -> None:
    """Human-readable decision summary under the sweep/submit table."""
    rows = []
    for cell in report.cells:
        fidelity = "full" if cell.intervals is None \
            else f"{cell.intervals} ivs"
        estimate = f"{cell.mean:.3f} " \
                   f"[{cell.ci_lo:.3f}, {cell.ci_hi:.3f}]"
        rows.append((cell.label, cell.value, cell.rounds, fidelity,
                     f"{cell.instructions:,}", cell.stop, estimate))
    print(format_table(
        ["cell", report.policy.get("compare_axis", "policy"), "rounds",
         "fidelity", "instructions", "stop", report.policy["metric"]],
        rows, title="adaptive decisions"))
    print(f"adaptive: {report.rounds} cell-rounds, "
          f"{report.escalations} escalated, {report.pruned} pruned; "
          f"spent {report.instructions_spent:,} of "
          f"{report.instructions_full:,} full-detail instructions "
          f"({report.savings_pct:.1f}% saved)")
    for group, value in sorted(report.winners.items()):
        print(f"  winner [{group}]: {value}")


def _add_logging_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-level", dest="log_level",
                        choices=["debug", "info", "warning", "error"],
                        default="info",
                        help="verbosity of the repro.* loggers "
                             "(default: info)")
    parser.add_argument("--log-json", dest="log_json",
                        action="store_true",
                        help="emit JSON-lines log records instead of "
                             "human-readable lines")


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_config_args(parser)
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="simulate fresh runs across N processes "
                             "(0 = one per CPU core)")
    parser.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                        help="result cache directory "
                             "(default: ~/.cache/repro)")
    parser.add_argument("--no-cache", dest="no_cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--json", action="store_true",
                        help="emit result records as JSON instead of tables")


def _cmd_run(args) -> int:
    cfg = _build_config(args)
    cfg = cfg.with_writeback(_policy_arg(args.policy))
    spec = ExperimentSpec(workloads=args.workload, configs=cfg,
                          seeds=args.seed, name=f"run:{args.workload}")
    session = _session(args)
    rs = session.run(spec, progress=_progress_fn(args))
    if args.json:
        _emit_json(rs, session)
        return 0
    result = rs.only().result
    print(characterization_report([(args.workload, result)],
                                  title=f"run: {args.workload} "
                                        f"({args.policy})"))
    note = sampling_note(result)
    if note:
        print(note)
    return 0


def _cmd_compare(args) -> int:
    cfg = _build_config(args)
    policies = [_policy_arg(p) for p in args.policies]
    if policies[0] is not None:
        policies.insert(0, None)
    # ExperimentSpec dedupes repeated policies (e.g. `--policies bard-h
    # baseline`), so the baseline simulates exactly once.
    spec = ExperimentSpec(workloads=args.workload, configs=cfg,
                          policies=policies, seeds=args.seed,
                          name=f"compare:{args.workload}")
    session = _session(args)
    rs = session.run(spec, progress=_progress_fn(args))
    if args.json:
        _emit_json(rs, session)
        return 0
    base = rs.filter(policy=BASELINE).only().result
    for obs in rs:
        if obs.coords["policy"] == BASELINE:
            continue
        named = replace(obs.result, label=str(obs.coords["policy"]))
        print(comparison_report(replace(base, label=BASELINE), named,
                                workload=args.workload))
        print()
    return 0


def _cmd_characterize(args) -> int:
    cfg = _build_config(args)
    spec = ExperimentSpec(workloads=args.workloads, configs=cfg,
                          seeds=args.seed, name="characterize")
    session = _session(args)
    rs = session.run(spec, progress=_progress_fn(args))
    if args.json:
        _emit_json(rs, session)
        return 0
    results = [(str(obs.coords["workload"]), obs.result) for obs in rs]
    print(characterization_report(results))
    return 0


def _parse_axis(text: str):
    name, eq, values = text.partition("=")
    if not eq or not values:
        raise ConfigError(f"--axis wants NAME=V1,V2,... (got {text!r})")
    return name, [v for v in values.split(",") if v]


def _grid_spec(args, name: str) -> ExperimentSpec:
    """Build the sweep/submit grid from ``--workloads/--axis/--seeds``."""
    cfg = _build_config(args)
    policies: object = INHERIT
    axes: List[Axis] = []
    seen_axes = set()
    for text in args.axis or []:
        axis_name, values = _parse_axis(text)
        if axis_name in seen_axes:
            raise ConfigError(f"duplicate --axis {axis_name!r}")
        seen_axes.add(axis_name)
        if axis_name == "policy":
            policies = [_policy_arg(v) for v in values]
        elif axis_name in AXIS_MODIFIERS:
            axes.append(make_axis(axis_name, values))
        else:
            raise ConfigError(
                f"unknown axis {axis_name!r}; choose from "
                f"{sorted(AXIS_MODIFIERS)}")
    seeds = args.seeds if args.seeds else [args.seed]
    return ExperimentSpec(workloads=args.workloads, configs=cfg,
                          policies=policies, seeds=seeds,
                          axes=axes, name=name)


def _cmd_sweep(args) -> int:
    spec = _grid_spec(args, "sweep")
    plan = spec.expand()

    # Validate metrics and the speedup baseline BEFORE burning simulation
    # time: a typo must fail in milliseconds, not after the grid ran.
    metrics = list(args.metrics)
    for name in metrics:
        if not valid_metric(name):
            raise ConfigError(f"unknown metric {name!r}")
        if name in RELATIVE_METRICS and not args.speedup_vs:
            raise ConfigError(
                f"metric {name!r} needs --speedup-vs to define a baseline")
    speedup = None
    if args.speedup_vs:
        axis, eq, label = args.speedup_vs.partition("=")
        baseline: object = label if eq else BASELINE
        if axis == "seed" and eq:
            baseline = int(label)  # seed coordinates are ints
        values = list(dict.fromkeys(
            p.coords.get(axis) for p in plan.points))
        if baseline not in values or len(values) < 2:
            raise ConfigError(
                f"--speedup-vs {args.speedup_vs}: axis {axis!r} must "
                f"cover the baseline plus at least one other value "
                f"(have {values})")
        speedup = (axis, baseline)

    session = _session(args)
    policy = _adaptive_policy(args)
    if policy is not None:
        rs = session.run_adaptive(plan, policy,
                                  progress=_progress_fn(args))
    else:
        rs = session.run(plan, progress=_progress_fn(args))
    report = rs.adaptive
    if speedup is not None:
        rs = rs.speedup_vs(*speedup)
        if "speedup_pct" not in metrics:
            metrics.append("speedup_pct")
    if args.json:
        _emit_json(rs, session, metrics, adaptive=report)
        return 0
    axis_names = list(rs[0].coords) if len(rs) else []
    rows = [
        tuple(record[name] for name in axis_names)
        + tuple(f"{record[m]:.3f}" for m in metrics)
        for record in rs.to_records(metrics)
    ]
    print(format_table(axis_names + metrics, rows,
                       title=f"sweep ({len(rs)} points)"))
    if report is not None:
        _render_adaptive(report)
    return 0


def _cmd_sweep_wq(args) -> int:
    cfg = _build_config(args)
    session = _session(args)
    ref = session.run(
        ExperimentSpec(workloads=args.workloads, configs=cfg,
                       seeds=args.seed, name="sweep-wq:reference"),
        progress=_progress_fn(args))
    reference = {obs.coords["workload"]: obs.result for obs in ref}
    spec = ExperimentSpec(workloads=args.workloads, configs=cfg,
                          policies=["baseline", "bard-h"], seeds=args.seed,
                          axes=[make_axis("wq", args.sizes)],
                          name="sweep-wq")
    rs = session.run(spec, progress=_progress_fn(args))
    if args.json:
        _emit_json(rs, session)
        return 0
    rows = []
    for size in args.sizes:
        for label in ("baseline", "bard-h"):
            sub = rs.filter(wq=str(size), policy=label)
            speedups = [
                obs.result.speedup_pct(reference[obs.coords["workload"]])
                for obs in sub
            ]
            rows.append((size, label, sum(speedups) / len(speedups)))
    print(format_table(["WQ size", "policy", "mean speedup %"], rows,
                       title="write-queue sweep vs 48-entry baseline "
                             "(cf. paper Fig. 17)"))
    return 0


def _cmd_serve(args) -> int:
    """Run the long-running experiment service (Ctrl-C to stop)."""
    from repro.service import ExperimentService, ServiceConfig, \
        make_server

    state_dir = Path(args.state_dir) if args.state_dir \
        else default_cache_dir() / "service"
    from repro.resilience import RetryPolicy

    if args.max_attempts <= 0:
        raise ConfigError("--max-attempts must be positive")
    config = ServiceConfig(
        state_dir=state_dir,
        store_dir=Path(args.cache_dir) if args.cache_dir else None,
        shards=_resolve_parallel(args.workers),
        max_group=args.max_group,
        max_pending_per_tenant=args.max_pending_per_tenant,
        max_pending_total=args.max_pending_total,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
    )
    if args.max_group <= 0:
        raise ConfigError("--max-group must be positive")
    if getattr(args, "telemetry", False):
        telemetry.enable()
    service = ExperimentService(config)
    server = make_server(service, host=args.host, port=args.port,
                         quiet=not args.verbose)
    host, port = server.server_address[:2]
    # The listen banner is a machine-readable contract (tests and
    # tooling parse the URL from stdout, e.g. with --port 0); it must
    # stay a flushed stdout print, not a log record on stderr.
    print(f"repro service listening on http://{host}:{port} "
          f"({config.shards} worker shards, state in {state_dir}, "
          f"store in {service.store.directory})", flush=True)
    _log.debug("service listening",
               extra={"event": "serve.listening", "host": str(host),
                      "port": int(port), "shards": config.shards})
    service.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _log.info("shutting down (queue state is durable; restart "
                  "resumes unfinished grids)",
                  extra={"event": "serve.shutdown"})
    finally:
        server.server_close()
        service.stop()
    return 0


def _cmd_submit(args) -> int:
    """Submit a grid to a running service; optionally wait for results."""
    from repro.service import Backpressure, ResultNotReady, \
        ServiceClient, ServiceError

    spec = _grid_spec(args, "submit")
    metrics = list(args.metrics)
    for name in metrics:
        if not valid_metric(name):
            raise ConfigError(f"unknown metric {name!r}")
        if name in RELATIVE_METRICS:
            raise ConfigError(
                f"metric {name!r} is baseline-relative; fetch records "
                f"and compute speedups client-side")
    policy = _adaptive_policy(args)
    client = ServiceClient(args.server, timeout=args.timeout)

    def _wait_progress(status):
        progress = status["progress"]
        _log.info("grid %s: %d/%d done, %d quarantined",
                  status.get("grid_id", "?"), progress["completed"],
                  progress["total"], progress["quarantined"],
                  extra=dict(progress, event="grid.progress",
                             grid_id=status.get("grid_id", "")))

    try:
        ticket = client.submit(
            spec, tenant=args.tenant, priority=args.priority,
            adaptive=policy.to_dict() if policy is not None else None)
        if args.no_wait:
            print(json.dumps(ticket, indent=2))
            return 0
        client.wait(ticket["grid_id"], timeout=args.timeout,
                    poll=args.poll, on_progress=_wait_progress)
        result = client.result(ticket["grid_id"], metrics=metrics)
    except ResultNotReady:
        # A stored result failed its integrity check mid-fetch; the
        # service already re-admitted the run.  Wait it out once more.
        try:
            client.wait(ticket["grid_id"], timeout=args.timeout,
                        poll=args.poll, on_progress=_wait_progress)
            result = client.result(ticket["grid_id"], metrics=metrics)
        except ServiceError as retry_exc:
            print(f"error: {retry_exc}", file=sys.stderr)
            return 4
    except Backpressure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    records = result["records"]
    axis_names = [k for k in records[0] if k not in metrics
                  and k != "run_key"] if records else []
    rows = [tuple(r[name] for name in axis_names)
            + tuple(f"{r[m]:.3f}" for m in metrics)
            for r in records]
    print(format_table(axis_names + metrics, rows,
                       title=f"grid {result['grid_id']} "
                             f"({len(records)} points via "
                             f"{args.server})"))
    stats = result["stats"]
    print(f"admission: {stats['new_jobs']} new, "
          f"{stats['store_hits']} store hits, "
          f"{stats['inflight_dedup']} shared in-flight "
          f"of {stats['unique_runs']} unique runs")
    if result.get("report"):
        from repro.adaptive import AdaptiveReport
        _render_adaptive(AdaptiveReport.from_dict(result["report"]))
    if result.get("quarantined"):
        print(f"warning: grid degraded - {result['quarantined']} "
              f"run(s) quarantined after repeated failures; inspect "
              f"with 'repro jobs --server {args.server} --quarantined'",
              file=sys.stderr)
    return 0


def _format_age(job) -> str:
    """Queue age for the listing: meaningful while pending/running."""
    if job.get("state") not in ("pending", "running"):
        return "-"
    age = float(job.get("age", 0.0))
    if age >= 120.0:
        return f"{age / 60.0:.1f}m"
    return f"{age:.1f}s"


def _render_jobs(listing, state, args) -> None:
    jobs = listing["jobs"]
    scope = f" in state {state!r}" if state else ""
    if not jobs:
        print(f"no jobs{scope}")
        return
    rows = []
    for job in jobs:
        error = job["error"]
        rows.append((job["key"][:16], job["tenant"], job["state"],
                     job["attempts"], _format_age(job),
                     error[:40] + ("..." if len(error) > 40 else "")))
    print(format_table(
        ["key", "tenant", "state", "attempts", "age", "last error"],
        rows,
        title=f"{len(jobs)} job(s){scope} via {args.server}"))
    chains = [j for j in jobs
              if j["state"] == "quarantined" and j["error_chain"]]
    if chains:
        print("\nerror chains (oldest attempt first):")
        for job in chains:
            print(f"  {job['key'][:16]}:")
            for entry in job["error_chain"]:
                print(f"    {entry}")
        print("requeue with: repro jobs --server "
              f"{args.server} --requeue [KEY ...]")


def _cmd_jobs(args) -> int:
    """Inspect (and requeue) a running service's job table."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.server, timeout=args.timeout)
    try:
        if args.requeue is not None:
            # nargs="*": bare --requeue drains the whole dead-letter
            # queue; named keys limit the scope.
            out = client.requeue_quarantined(args.requeue or None)
            print(f"requeued {out['requeued']} quarantined job(s)")
            return 0
        state = "quarantined" if args.quarantined else args.state
        polls = 0
        while True:
            listing = client.jobs(state)
            if args.json:
                print(json.dumps(listing, indent=2))
            else:
                _render_jobs(listing, state, args)
            polls += 1
            if not args.watch or \
                    (args.iterations and polls >= args.iterations):
                return 0
            time.sleep(args.interval)
            if not args.json:
                print()
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4


def _cmd_trace(args) -> int:
    """Run one workload with telemetry on; write a Chrome trace JSON."""
    cfg = _build_config(args)
    cfg = cfg.with_writeback(_policy_arg(args.policy))
    spec = ExperimentSpec(workloads=args.workload, configs=cfg,
                          seeds=args.seed,
                          name=f"trace:{args.workload}")
    was_enabled = telemetry.enabled()
    telemetry.enable()
    tracer = telemetry.get_tracer()
    tracer.reset()
    # Always simulate, in-process: a cache hit or a subprocess worker
    # would leave the tracer (a per-process object) with nothing to say.
    session = Session(cache=False, parallel=1)
    try:
        wall_start = time.perf_counter()
        with tracer.span("run", workload=args.workload,
                         policy=args.policy):
            rs = session.run(spec, progress=_progress_fn(args))
        wall = time.perf_counter() - wall_start
        trace = tracer.export_chrome()
    finally:
        if not was_enabled:
            telemetry.disable()
    out = Path(args.out)
    out.write_text(json.dumps(trace) + "\n")
    root = max((s for s in tracer.spans() if s.name == "run"),
               key=lambda s: s.duration, default=None)
    coverage = 100.0 * root.duration / wall if root and wall else 0.0
    breakdown = rs.phase_breakdown()
    summary = {
        "out": str(out),
        "wall_seconds": round(wall, 6),
        "spans": len(tracer.spans()),
        "dropped_spans": trace["otherData"]["dropped_spans"],
        "coverage_pct": round(coverage, 3),
        "phase_breakdown": {k: round(v, 6)
                            for k, v in breakdown.items()},
    }
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    rows = [(phase, f"{seconds:.4f}",
             f"{100.0 * seconds / wall:.1f}" if wall else "0.0")
            for phase, seconds in sorted(
                breakdown.items(), key=lambda kv: -kv[1])]
    print(format_table(["phase", "seconds", "% of wall"], rows,
                       title=f"trace: {args.workload} ({args.policy}), "
                             f"wall {wall:.3f}s"))
    print(f"{len(tracer.spans())} span(s) -> {out} "
          f"(load in Perfetto / chrome://tracing); "
          f"root span covers {coverage:.1f}% of wall-clock")
    return 0


def _render_top(stats, args) -> None:
    if sys.stdout.isatty() and not args.no_clear:
        print("\x1b[2J\x1b[H", end="")
    jobs = stats["jobs"]
    workers = stats["workers"]
    store = stats["store"]
    rates = stats["rates"]
    grids = stats.get("grids", {})
    print(f"repro top - {args.server}  "
          f"uptime {stats['uptime_seconds']:.0f}s  "
          f"grids " + (" ".join(f"{state}={count}" for state, count
                                in sorted(grids.items())) or "none"))
    print("jobs:    " + (" ".join(
        f"{state}={count}"
        for state, count in sorted(jobs.items())) or "none"))
    print(f"workers: {workers['shards']}x {workers['mode']}  "
          f"utilisation {100.0 * workers['utilisation']:.1f}%  "
          f"busy {workers['busy_seconds']:.1f}s  "
          f"inflight {workers['inflight_groups']}  "
          f"groups {workers['groups']}  jobs {workers['jobs']}  "
          f"failures {workers['failures']}  "
          f"retried {workers['retried']}  "
          f"quarantined {workers['quarantined']}  "
          f"timeouts {workers['timeouts']}")
    print(f"store:   hits {store['hits']}  misses {store['misses']}  "
          f"puts {store['puts']}  "
          f"integrity_failures {store['integrity_failures']}")
    print(f"rates:   retry {100.0 * rates['retry']:.2f}%  "
          f"quarantine {100.0 * rates['quarantine']:.2f}%  "
          f"integrity {100.0 * rates['integrity']:.2f}%")
    ages = stats.get("queue_ages", {})
    if ages:
        rows = [(tenant, entry["waiting"], f"{entry['p50']:.1f}",
                 f"{entry['p90']:.1f}", f"{entry['max']:.1f}")
                for tenant, entry in sorted(ages.items())]
        print(format_table(
            ["tenant", "waiting", "p50 (s)", "p90 (s)", "max (s)"],
            rows, title="queue age by tenant"))


def _cmd_top(args) -> int:
    """Live service dashboard: poll ``/v1/stats`` and render it."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.server, timeout=args.timeout)
    polls = 0
    try:
        while True:
            stats = client.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
            else:
                _render_top(stats, args)
            polls += 1
            if args.iterations and polls >= args.iterations:
                return 0
            time.sleep(args.interval)
            if not args.json and not sys.stdout.isatty():
                print()
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4


def _cmd_list(args) -> int:
    if getattr(args, "json", False):
        print(json.dumps({
            "workloads": list(ALL_WORKLOADS),
            "policies": _POLICY_CHOICES,
            "presets": sorted(_PRESETS),
            "axes": sorted(AXIS_MODIFIERS),
        }, indent=2))
        return 0
    print("workloads:", " ".join(ALL_WORKLOADS))
    print("policies: ", " ".join(_POLICY_CHOICES))
    print("presets:  ", " ".join(sorted(_PRESETS)))
    print("axes:     ", " ".join(sorted(AXIS_MODIFIERS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BARD (HPCA 2026) reproduction: DDR5 write-latency "
                    "simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload")
    p_run.add_argument("workload", choices=ALL_WORKLOADS)
    p_run.add_argument("--policy", choices=_POLICY_CHOICES,
                       default="baseline")
    p_run.add_argument("--ideal-writes", action="store_true",
                       dest="ideal_writes")
    p_run.add_argument("--refresh", action="store_true")
    _add_common(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare writeback policies")
    p_cmp.add_argument("workload", choices=ALL_WORKLOADS)
    p_cmp.add_argument("--policies", nargs="+", choices=_POLICY_CHOICES,
                       default=["baseline", "bard-h"])
    _add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_chr = sub.add_parser("characterize",
                           help="Table IV-style characterization")
    p_chr.add_argument("workloads", nargs="+", choices=ALL_WORKLOADS)
    _add_common(p_chr)
    p_chr.set_defaults(fn=_cmd_characterize)

    p_sw = sub.add_parser("sweep",
                          help="grid sweep over arbitrary axes")
    p_sw.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS,
                      default=["lbm"])
    p_sw.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                      help="sweep axis, repeatable (policy, wq, device, "
                           "replacement, drain, refresh, pbpl)")
    p_sw.add_argument("--seeds", nargs="+", type=int, default=None,
                      help="seed list (default: the --seed value)")
    p_sw.add_argument("--metrics", nargs="+",
                      default=["mean_ipc", "write_blp",
                               "time_writing_pct"],
                      help="RunResult metrics to report")
    p_sw.add_argument("--speedup-vs", dest="speedup_vs",
                      metavar="AXIS[=LABEL]",
                      help="also report speedup vs a baseline along AXIS "
                           "(default label: baseline)")
    _add_adaptive_args(p_sw)
    _add_common(p_sw)
    p_sw.set_defaults(fn=_cmd_sweep)

    p_wq = sub.add_parser("sweep-wq", help="write-queue size sweep")
    p_wq.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS,
                      default=["lbm", "copy"])
    p_wq.add_argument("--sizes", nargs="+", type=int,
                      default=[32, 48, 64, 96, 128])
    _add_common(p_wq)
    p_wq.set_defaults(fn=_cmd_sweep_wq)

    p_ls = sub.add_parser("list", help="list workloads/policies/presets")
    p_ls.add_argument("--json", action="store_true")
    p_ls.set_defaults(fn=_cmd_list)

    p_srv = sub.add_parser(
        "serve", help="run the multi-tenant experiment service")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8023,
                       help="listen port (0 = ephemeral; default 8023)")
    p_srv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker shard processes (0 = all cores)")
    p_srv.add_argument("--max-group", dest="max_group", type=int,
                       default=8, metavar="N",
                       help="max jobs leased per warm group")
    p_srv.add_argument("--state-dir", dest="state_dir", metavar="DIR",
                       help="durable queue/grid state "
                            "(default: <cache>/service)")
    p_srv.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                       help="content-addressed result store "
                            "(default: the shared result cache)")
    p_srv.add_argument("--max-pending-per-tenant", type=int, default=64,
                       dest="max_pending_per_tenant", metavar="N",
                       help="pending-job bound per tenant (429 beyond)")
    p_srv.add_argument("--max-pending-total", type=int, default=256,
                       dest="max_pending_total", metavar="N",
                       help="global pending-job bound (429 beyond)")
    p_srv.add_argument("--job-timeout", dest="job_timeout", type=float,
                       default=900.0, metavar="SECONDS",
                       help="reap groups making no progress for this "
                            "long and respawn their shard "
                            "(0 disables; default 900)")
    p_srv.add_argument("--max-attempts", dest="max_attempts", type=int,
                       default=3, metavar="N",
                       help="execution budget per job before it is "
                            "quarantined (default 3)")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    p_srv.add_argument("--telemetry", action="store_true",
                       help="enable hot-path telemetry (spans and "
                            "per-run metrics) in this process; "
                            "operational /v1/metrics series are always "
                            "on")
    _add_logging_args(p_srv)
    p_srv.set_defaults(fn=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit a grid to a running service")
    p_sub.add_argument("--server", default="http://127.0.0.1:8023",
                       help="service base URL")
    p_sub.add_argument("--tenant", default="default",
                       help="tenant id for fair-share accounting")
    p_sub.add_argument("--priority", type=int, default=0,
                       help="within-tenant priority (higher first)")
    p_sub.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS,
                       default=["lbm"])
    p_sub.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                       help="sweep axis, repeatable (same as sweep)")
    p_sub.add_argument("--seeds", nargs="+", type=int, default=None,
                       help="seed list (default: the --seed value)")
    p_sub.add_argument("--metrics", nargs="+",
                       default=["mean_ipc", "write_blp",
                                "time_writing_pct"],
                       help="metric columns to fetch")
    p_sub.add_argument("--no-wait", dest="no_wait", action="store_true",
                       help="print the submission ticket and exit "
                            "instead of polling for results")
    p_sub.add_argument("--timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="max time to wait for completion")
    p_sub.add_argument("--poll", type=float, default=0.5,
                       metavar="SECONDS", help="status poll interval")
    p_sub.add_argument("--json", action="store_true",
                       help="emit the result envelope as JSON")
    _add_adaptive_args(p_sub)
    _add_config_args(p_sub)
    _add_logging_args(p_sub)
    p_sub.set_defaults(fn=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="inspect a running service's job table")
    p_jobs.add_argument("--server", default="http://127.0.0.1:8023",
                        help="service base URL")
    p_jobs.add_argument("--state", default=None,
                        help="filter by job state "
                             "(pending/running/done/failed/cancelled/"
                             "quarantined)")
    p_jobs.add_argument("--quarantined", action="store_true",
                        help="shorthand for --state quarantined "
                             "(the dead-letter queue)")
    p_jobs.add_argument("--requeue", nargs="*", metavar="KEY",
                        default=None,
                        help="requeue quarantined jobs (no keys = all) "
                             "with a fresh attempt budget")
    p_jobs.add_argument("--watch", action="store_true",
                        help="poll the job table until Ctrl-C "
                             "(or --iterations)")
    p_jobs.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="--watch refresh period (default 2)")
    p_jobs.add_argument("--iterations", type=int, default=0,
                        metavar="N",
                        help="stop --watch after N refreshes "
                             "(0 = until Ctrl-C)")
    p_jobs.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS", help="HTTP timeout")
    p_jobs.add_argument("--json", action="store_true",
                        help="emit the job listing as JSON")
    p_jobs.set_defaults(fn=_cmd_jobs)

    p_tr = sub.add_parser(
        "trace", help="run one workload with telemetry enabled and "
                      "write a Chrome trace-event JSON")
    p_tr.add_argument("workload", choices=ALL_WORKLOADS)
    p_tr.add_argument("--policy", choices=_POLICY_CHOICES,
                      default="baseline")
    p_tr.add_argument("--out", default="trace.json", metavar="FILE",
                      help="trace output path (default: trace.json; "
                           "load in Perfetto or chrome://tracing)")
    p_tr.add_argument("--json", action="store_true",
                      help="print the trace summary as JSON")
    _add_config_args(p_tr)
    p_tr.set_defaults(fn=_cmd_trace)

    p_top = sub.add_parser(
        "top", help="live dashboard for a running service")
    p_top.add_argument("--server", default="http://127.0.0.1:8023",
                       help="service base URL")
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh period (default 2)")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N refreshes (0 = until Ctrl-C)")
    p_top.add_argument("--no-clear", dest="no_clear",
                       action="store_true",
                       help="do not clear the screen between refreshes")
    p_top.add_argument("--timeout", type=float, default=30.0,
                       metavar="SECONDS", help="HTTP timeout")
    p_top.add_argument("--json", action="store_true",
                       help="emit the raw /v1/stats body per poll")
    p_top.set_defaults(fn=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=getattr(args, "log_level", "info"),
                      json_lines=getattr(args, "log_json", False))
    try:
        return args.fn(args)
    except SessionInterrupted as exc:
        # Finished runs are already cached; rerunning resumes in place.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except (ConfigError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

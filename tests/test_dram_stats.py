"""DRAM statistics containers and merging."""

import pytest

from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.dram.timing import DRAM_CYCLE_NS


class TestW2W:
    def test_record_and_mean(self):
        s = SubChannelStats()
        s.record_w2w(8)
        s.record_w2w(48)
        assert s.w2w_delay_count == 2
        assert s.mean_w2w_ns == pytest.approx(28 * DRAM_CYCLE_NS)
        assert s.max_w2w_ns == pytest.approx(48 * DRAM_CYCLE_NS)

    def test_empty_mean_zero(self):
        assert SubChannelStats().mean_w2w_ns == 0.0


class TestEpisodes:
    def test_mean_blp(self):
        s = SubChannelStats()
        s.episodes = [DrainEpisode(32, 20, 0, 300),
                      DrainEpisode(32, 24, 400, 700)]
        assert s.mean_blp == pytest.approx(22.0)

    def test_duration(self):
        assert DrainEpisode(32, 20, 100, 450).duration == 350

    def test_empty_blp_zero(self):
        assert SubChannelStats().mean_blp == 0.0


class TestMerge:
    def test_merge_accumulates(self):
        a = SubChannelStats()
        b = SubChannelStats()
        a.reads_issued, b.reads_issued = 3, 4
        a.writes_issued, b.writes_issued = 1, 2
        a.write_mode_cycles, b.write_mode_cycles = 100, 50
        a.record_w2w(8)
        b.record_w2w(48)
        b.episodes.append(DrainEpisode(32, 20, 0, 100))
        a.merge_from(b)
        assert a.reads_issued == 7
        assert a.writes_issued == 3
        assert a.write_mode_cycles == 150
        assert a.w2w_delay_count == 2
        assert a.w2w_delay_max == 48
        assert len(a.episodes) == 1

    def test_merge_keeps_max(self):
        a, b = SubChannelStats(), SubChannelStats()
        a.record_w2w(100)
        b.record_w2w(10)
        a.merge_from(b)
        assert a.w2w_delay_max == 100

"""BARD edge cases beyond the main decision paths."""

from repro.cache.cache import Cache
from repro.cache.replacement import SRRIPPolicy, make_replacement
from repro.core.bard import make_bard
from repro.dram.mapping import ZenMapping
from repro.sim.engine import Engine

MAPPING = ZenMapping(pbpl=True)


class FakeLower:
    def __init__(self, engine):
        self.engine = engine
        self.writebacks = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.engine.schedule(now + 10, lambda: on_done(now + 10))

    def writeback(self, line_addr, now):
        self.writebacks.append(line_addr)


def row_addr(row):
    return row << 19


def make_env(variant="bard-h", repl="lru", ways=4):
    engine = Engine()
    lower = FakeLower(engine)
    policy = make_bard(variant, MAPPING)
    cache = Cache("llc", 4 * ways * 64, ways, 1, 8,
                  make_replacement(repl, 4, ways), engine, lower,
                  writeback_policy=policy)
    return engine, lower, cache, policy


class TestNoDirtyCandidates:
    def test_all_clean_set_no_cleanses(self):
        engine, lower, cache, policy = make_env()
        for row in range(5):
            cache.access(row_addr(row), False, 1, engine.now, None)
            engine.run()
        assert policy.stats.cleanses == 0
        assert lower.writebacks == []

    def test_single_way_cache(self):
        """Degenerate geometry: no alternative victims exist."""
        engine = Engine()
        lower = FakeLower(engine)
        policy = make_bard("bard-h", MAPPING)
        cache = Cache("llc", 4 * 64, 1, 1, 8, make_replacement("lru", 4, 1),
                      engine, lower, writeback_policy=policy)
        for row in range(4):
            cache.writeback(row_addr(row), 0)
            policy.tracker.mark_writeback(
                0, MAPPING.map(row_addr(row)).bank_id)
        assert policy.stats.overrides == 0  # nothing else to pick


class TestBardUnderRRIP:
    def test_scan_order_follows_rrpv(self):
        """Paper section VII-E: BARD scans greatest-to-least RRPV."""
        engine, lower, cache, policy = make_env(repl="srrip")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        # Promote row 1 so its RRPV drops to 0.
        cache.access(row_addr(1), False, 1, engine.now, None)
        engine.run()
        repl = cache.repl
        assert isinstance(repl, SRRIPPolicy)
        order = repl.eviction_order(0, cache.sets[0].lines)
        way_of_row1 = cache.find_line(row_addr(1))[1]
        assert order[-1] == way_of_row1  # least evictable last

    def test_bard_h_works_with_srrip(self):
        engine, lower, cache, policy = make_env(repl="srrip")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        victim_row = None
        # Mark the default victim's bank pending.
        default = cache.repl.victim(0, cache.sets[0].lines)
        victim_addr = cache.sets[0].lines[default].line_addr
        policy.tracker.mark_writeback(0, MAPPING.map(victim_addr).bank_id)
        cache.writeback(row_addr(9), 0)
        assert policy.stats.overrides == 1


class TestCrossSetIndependence:
    def test_decisions_local_to_set(self):
        engine, lower, cache, policy = make_env()
        # Dirty lines in set 0 must not be cleansed by misses in set 1.
        cache.writeback(row_addr(0), 0)
        other_set_addr = (1 << 6) | row_addr(1)
        if cache.set_index(other_set_addr) == cache.set_index(row_addr(0)):
            other_set_addr = (2 << 6) | row_addr(1)
        cache.access(other_set_addr, False, 1, 0, None)
        engine.run()
        s, w = cache.find_line(row_addr(0))
        assert cache.sets[s].lines[w].dirty  # untouched


class TestEvictionStillMarksTracker:
    def test_default_dirty_eviction_marks(self):
        engine, lower, cache, policy = make_env()
        for row in range(5):
            cache.writeback(row_addr(row), 0)
        # Row 0 was evicted dirty; its bank bit must be set.
        assert lower.writebacks
        bank = MAPPING.map(lower.writebacks[0]).bank_id
        assert policy.tracker.is_pending(0, bank)

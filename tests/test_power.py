"""DRAM power/energy model (Table IX support)."""

import pytest

from repro.dram.power import EnergyParams, estimate_power
from repro.dram.stats import SubChannelStats


def _stats(reads=0, writes=0, acts=0, hits=0, conflicts=0):
    s = SubChannelStats()
    s.reads_issued = reads
    s.writes_issued = writes
    s.activates = acts
    s.write_row_hits = hits
    s.write_row_conflicts = conflicts
    return s


class TestEnergy:
    def test_background_only(self):
        rep = estimate_power(_stats(), runtime_ns=1000.0)
        assert rep.energy_nj == pytest.approx(
            EnergyParams().background_w * 1000.0)

    def test_writes_add_energy(self):
        base = estimate_power(_stats(), 1000.0).energy_nj
        with_writes = estimate_power(_stats(writes=100), 1000.0).energy_nj
        assert with_writes == pytest.approx(
            base + 100 * EnergyParams().write_nj)

    def test_same_bank_writes_pay_rmw(self):
        plain = estimate_power(_stats(writes=10), 1000.0).energy_nj
        rmw = estimate_power(_stats(writes=10, hits=10), 1000.0).energy_nj
        assert rmw > plain

    def test_activates_add_energy(self):
        a = estimate_power(_stats(acts=5), 1000.0).energy_nj
        b = estimate_power(_stats(), 1000.0).energy_nj
        assert a - b == pytest.approx(5 * EnergyParams().act_pre_nj)


class TestPowerAndEDP:
    def test_power_is_energy_over_time(self):
        rep = estimate_power(_stats(reads=50), 2000.0)
        assert rep.power_w == pytest.approx(rep.energy_nj / 2000.0)

    def test_edp(self):
        rep = estimate_power(_stats(reads=50), 2000.0)
        assert rep.edp == pytest.approx(rep.energy_nj * 2000.0)

    def test_zero_runtime_power(self):
        rep = estimate_power(_stats(), 0.0)
        assert rep.power_w == 0.0

    def test_faster_run_lower_edp_same_commands(self):
        """BARD's Table IX story: same work done sooner -> lower EDP."""
        slow = estimate_power(_stats(reads=100, writes=50), 3000.0)
        fast = estimate_power(_stats(reads=100, writes=50), 2500.0)
        assert fast.edp < slow.edp

"""CLI: remaining commands and option plumbing."""

import pytest

from repro.cli import build_parser, main


class TestOptionPlumbing:
    @pytest.fixture(autouse=True)
    def _tiny_preset(self, monkeypatch):
        from tests.conftest import tiny_config

        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)

    def test_replacement_option(self, capsys):
        assert main(["run", "copy", "--replacement", "srrip"]) == 0

    def test_device_option(self, capsys):
        assert main(["run", "copy", "--device", "x8"]) == 0

    def test_ideal_writes_flag(self, capsys):
        assert main(["run", "copy", "--ideal-writes"]) == 0

    def test_seed_option(self, capsys):
        assert main(["run", "copy", "--seed", "3"]) == 0

    def test_compare_adds_baseline_when_missing(self, capsys):
        assert main(["compare", "copy", "--policies", "bard-h"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_compare_eager_and_vwq(self, capsys):
        assert main(["compare", "copy", "--policies", "baseline",
                     "eager", "vwq"]) == 0
        out = capsys.readouterr().out
        assert out.count("weighted speedup") == 2


class TestParserValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm", "--policy", "magic"])

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm", "--preset", "huge"])

    def test_bad_replacement_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "lbm", "--replacement", "belady"])

    def test_characterize_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])

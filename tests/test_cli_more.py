"""CLI: remaining commands and option plumbing."""

import pytest

from repro.cli import build_parser, main


class TestOptionPlumbing:
    @pytest.fixture(autouse=True)
    def _tiny_preset(self, monkeypatch):
        from tests.conftest import tiny_config

        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)

    def test_replacement_option(self, capsys):
        assert main(["run", "copy", "--replacement", "srrip"]) == 0

    def test_device_option(self, capsys):
        assert main(["run", "copy", "--device", "x8"]) == 0

    def test_ideal_writes_flag(self, capsys):
        assert main(["run", "copy", "--ideal-writes"]) == 0

    def test_seed_option(self, capsys):
        assert main(["run", "copy", "--seed", "3"]) == 0

    def test_compare_adds_baseline_when_missing(self, capsys):
        assert main(["compare", "copy", "--policies", "bard-h"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_compare_eager_and_vwq(self, capsys):
        assert main(["compare", "copy", "--policies", "baseline",
                     "eager", "vwq"]) == 0
        out = capsys.readouterr().out
        assert out.count("weighted speedup") == 2


class TestSamplingFlags:
    @pytest.fixture(autouse=True)
    def _tiny_preset(self, monkeypatch):
        from tests.conftest import tiny_config

        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)

    def test_run_with_sampling(self, capsys):
        assert main(["run", "copy", "--sample", "2",
                     "--sample-interval", "400"]) == 0
        out = capsys.readouterr().out
        assert "sampled" in out
        assert "2 x 400" in out

    def test_compare_with_sampling(self, capsys):
        assert main(["compare", "copy", "--policies", "bard-h",
                     "--sample", "2", "--sample-interval", "300"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out
        assert "±" in out

    def test_sweep_with_sampling(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "policy=baseline,bard-h",
                     "--sample", "2", "--sample-interval", "300",
                     "--no-cache", "--json"]) == 0

    def test_random_scheme_flags(self, capsys):
        assert main(["run", "copy", "--sample", "2",
                     "--sample-interval", "300",
                     "--sample-scheme", "random",
                     "--sample-seed", "3"]) == 0

    def test_sample_with_detailed_warmup_is_config_error(self, capsys):
        rc = main(["run", "copy", "--sample", "2",
                   "--warmup-mode", "detailed"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "functional" in err

    def test_nonpositive_interval_is_config_error(self, capsys):
        rc = main(["run", "copy", "--sample", "2",
                   "--sample-interval", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_zero_intervals_is_config_error(self, capsys):
        rc = main(["run", "copy", "--sample", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_oversized_plan_is_config_error(self, capsys):
        # tiny preset simulates 4000 instructions; 8 x 2000 cannot fit.
        rc = main(["run", "copy", "--sample", "8",
                   "--sample-interval", "2000"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "does not fit" in err

    def test_negative_sample_error_is_config_error(self, capsys):
        rc = main(["run", "copy", "--sample", "2",
                   "--sample-error", "-1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_large_fixed_interval_count_allowed(self, capsys):
        # more intervals than the adaptive default cap (64); the cap is
        # an adaptive-only knob and must not reject fixed-count plans
        assert main(["run", "copy", "--sample", "100",
                     "--sample-interval", "20"]) == 0

    def test_sample_error_alone_enables_sampling(self, capsys):
        # a huge target stops at the default minimum interval count
        assert main(["run", "copy", "--sample-error", "1000000",
                     "--sample-interval", "300"]) == 0
        assert "sampled" in capsys.readouterr().out


class TestParserValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm", "--policy", "magic"])

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lbm", "--preset", "huge"])

    def test_bad_replacement_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "lbm", "--replacement", "belady"])

    def test_characterize_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])

"""BLP-Tracker: bit tracking and sub-channel self-reset (paper IV-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blp_tracker import (
    BANKS_PER_CHANNEL,
    BANKS_PER_SUBCHANNEL,
    BLPTracker,
)
from repro.errors import ConfigError


class TestBasics:
    def test_starts_clear(self):
        t = BLPTracker()
        assert all(not t.is_pending(0, b) for b in range(BANKS_PER_CHANNEL))

    def test_mark_sets_bit(self):
        t = BLPTracker()
        t.mark_writeback(0, 5)
        assert t.is_pending(0, 5)
        assert not t.is_pending(0, 6)

    def test_storage_is_8_bytes(self):
        """Paper headline: 8 B of SRAM per channel per LLC slice."""
        assert BLPTracker().storage_bytes_per_channel == 8

    def test_channels_independent(self):
        t = BLPTracker(channels=2)
        t.mark_writeback(1, 3)
        assert t.is_pending(1, 3)
        assert not t.is_pending(0, 3)

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            BLPTracker(channels=0)

    def test_reset(self):
        t = BLPTracker()
        t.mark_writeback(0, 1)
        t.reset()
        assert not t.is_pending(0, 1)


class TestSelfReset:
    def test_full_subchannel_resets(self):
        """Once all 32 bits of a sub-channel are set, they clear."""
        t = BLPTracker()
        for b in range(BANKS_PER_SUBCHANNEL):
            t.mark_writeback(0, b)
        assert t.popcount(0) == 0
        assert t.stats.self_resets == 1

    def test_31_bits_do_not_reset(self):
        t = BLPTracker()
        for b in range(BANKS_PER_SUBCHANNEL - 1):
            t.mark_writeback(0, b)
        assert t.popcount(0) == BANKS_PER_SUBCHANNEL - 1

    def test_subchannels_reset_independently(self):
        t = BLPTracker()
        t.mark_writeback(0, 32)  # one bit on sub-channel 1
        for b in range(BANKS_PER_SUBCHANNEL):
            t.mark_writeback(0, b)  # fill sub-channel 0
        assert t.popcount(0) == 1
        assert t.is_pending(0, 32)

    def test_repeat_marks_idempotent(self):
        t = BLPTracker()
        t.mark_writeback(0, 0)
        t.mark_writeback(0, 0)
        assert t.popcount(0) == 1
        assert t.stats.broadcasts == 2
        assert t.stats.bits_set == 1


class TestInvariants:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0,
                                max_value=BANKS_PER_CHANNEL - 1),
                    max_size=300))
    def test_popcount_never_full_subchannel(self, marks):
        """Self-reset guarantees a sub-channel never *stays* saturated, so
        BARD always has at least one low-cost bank available."""
        t = BLPTracker()
        for bank in marks:
            t.mark_writeback(0, bank)
            for sub in range(2):
                lo = sub * BANKS_PER_SUBCHANNEL
                sub_bits = sum(
                    t.is_pending(0, b)
                    for b in range(lo, lo + BANKS_PER_SUBCHANNEL)
                )
                assert sub_bits < BANKS_PER_SUBCHANNEL

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0,
                                max_value=BANKS_PER_CHANNEL - 1),
                    max_size=200))
    def test_bits_set_matches_popcount_plus_resets(self, marks):
        t = BLPTracker()
        for bank in marks:
            t.mark_writeback(0, bank)
        total_cleared = t.stats.self_resets * BANKS_PER_SUBCHANNEL
        assert t.stats.bits_set == t.popcount(0) + total_cleared

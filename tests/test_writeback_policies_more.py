"""Additional writeback-policy behaviours: VWQ cap, EW under RRIP."""

from repro.cache.cache import Cache
from repro.cache.replacement import make_replacement
from repro.cache.writeback.eager import EagerWriteback
from repro.cache.writeback.vwq import VirtualWriteQueue, \
    _MAX_CLEANS_PER_EVICTION
from repro.dram.commands import DramCoord
from repro.dram.mapping import ZenMapping
from repro.sim.engine import Engine

MAPPING = ZenMapping(pbpl=True)


class FakeLower:
    def __init__(self, engine):
        self.engine = engine
        self.writebacks = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.engine.schedule(now + 10, lambda: on_done(now + 10))

    def writeback(self, line_addr, now):
        self.writebacks.append(line_addr)


def make_env(policy, repl="lru", sets=16, ways=8):
    engine = Engine()
    lower = FakeLower(engine)
    cache = Cache("llc", sets * ways * 64, ways, 1, 8,
                  make_replacement(repl, sets, ways), engine, lower,
                  writeback_policy=policy)
    return engine, lower, cache


class TestVWQCleanCap:
    def test_cleans_at_most_cap_per_eviction(self):
        policy = VirtualWriteQueue(MAPPING)
        engine, lower, cache = make_env(policy)
        # Build many dirty lines in ONE DRAM row, spread over cache sets:
        # same (bg, bank, row), different columns.
        base_coord = MAPPING.map(0x40000)
        same_row = []
        for col in range(0, 8):
            coord = DramCoord(base_coord.channel, base_coord.subchannel,
                              base_coord.bankgroup, base_coord.bank,
                              base_coord.row, col)
            same_row.append(MAPPING.compose(coord))
        for addr in same_row:
            cache.writeback(addr, 0)
        # Evict the first one by filling its set with clean lines.
        victim = same_row[0]
        set_idx = cache.set_index(victim)
        tag = 500
        while cache.find_line(victim) is not None:
            cache.access((tag * cache.num_sets + set_idx) * 64, False, 1,
                         engine.now, None)
            engine.run()
            tag += 1
        proactive = [a for a in lower.writebacks if a in same_row[1:]]
        assert len(proactive) <= _MAX_CLEANS_PER_EVICTION

    def test_stats_track_cleanses(self):
        policy = VirtualWriteQueue(MAPPING)
        make_env(policy)
        assert policy.stats.cleanses == 0


class TestEagerUnderRRIP:
    def test_eager_cleans_under_srrip(self):
        policy = EagerWriteback()
        engine, lower, cache = make_env(policy, repl="srrip", sets=4,
                                        ways=4)
        cache.writeback(0 << 19, 0)  # dirty line, max-RRPV region
        cache.access(1 << 19, False, 1, 0, None)
        engine.run()
        cache.access(1 << 19, False, 1, engine.now, None)  # hit
        engine.run()
        assert (0 << 19) in lower.writebacks or lower.writebacks == [], (
            "EW must either clean the most-evictable dirty line or have "
            "nothing dirty to clean")
        # Under SRRIP the dirty line sits at higher RRPV than the hit line,
        # so it must in fact have been cleaned.
        assert lower.writebacks

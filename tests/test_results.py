"""RunResult derived metrics."""

import pytest

from repro.cache.cache import CacheStats
from repro.clock import TICKS_PER_DRAM_CYCLE
from repro.dram.stats import DrainEpisode, SubChannelStats
from repro.sim.results import RunResult


def _result(ipc, elapsed=120_000, write_mode=0, instructions=10_000,
            misses=0, prefetch_misses=0, writebacks=0, episodes=()):
    llc = CacheStats()
    llc.accesses = misses
    llc.misses = misses
    llc.prefetch_misses = prefetch_misses
    llc.writebacks = writebacks
    dram = SubChannelStats()
    dram.write_mode_cycles = write_mode
    dram.episodes = list(episodes)
    return RunResult(
        label="t", cores=len(ipc), instructions=instructions,
        elapsed_ticks=elapsed, ipc=list(ipc), llc=llc, dram=dram,
        subchannel_count=2,
    )


class TestDerived:
    def test_mpki_excludes_prefetch(self):
        r = _result([1.0], misses=100, prefetch_misses=40,
                    instructions=10_000)
        assert r.mpki == pytest.approx(6.0)

    def test_wpki(self):
        r = _result([1.0], writebacks=50, instructions=10_000)
        assert r.wpki == pytest.approx(5.0)

    def test_time_writing_pct(self):
        elapsed_cycles = 120_000 / TICKS_PER_DRAM_CYCLE
        r = _result([1.0], write_mode=int(elapsed_cycles))  # one sc fully
        assert r.time_writing_pct == pytest.approx(50.0)

    def test_write_blp_mean(self):
        eps = [DrainEpisode(32, 20, 0, 100), DrainEpisode(32, 30, 200, 300)]
        r = _result([1.0], episodes=eps)
        assert r.write_blp == pytest.approx(25.0)

    def test_runtime_ns(self):
        r = _result([1.0], elapsed=12_000)
        assert r.runtime_ns == pytest.approx(1000.0)


class TestSpeedup:
    def test_weighted_speedup(self):
        base = _result([1.0, 2.0])
        fast = _result([1.1, 2.2])
        assert fast.weighted_speedup(base) == pytest.approx(1.1)
        assert fast.speedup_pct(base) == pytest.approx(10.0)

    def test_asymmetric_cores(self):
        base = _result([1.0, 1.0])
        mixed = _result([2.0, 0.5])
        assert mixed.weighted_speedup(base) == pytest.approx(1.25)

    def test_zero_baseline_core_ignored(self):
        base = _result([0.0, 1.0])
        new = _result([1.0, 1.0])
        assert new.weighted_speedup(base) == pytest.approx(1.0)


class TestPowerReport:
    def test_report_fields(self):
        r = _result([1.0])
        rep = r.power_report()
        assert rep.energy_nj > 0
        assert rep.runtime_ns == r.runtime_ns

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lbm"])
        args_dict = vars(args)
        assert args_dict["workload"] == "lbm"
        assert args_dict["policy"] == "baseline"
        assert args_dict["preset"] == "small-8core"

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom3"])

    def test_compare_policies(self):
        args = build_parser().parse_args(
            ["compare", "copy", "--policies", "baseline", "bard-h"])
        assert args.policies == ["baseline", "bard-h"]

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep-wq", "--sizes", "32", "48"])
        assert args.sizes == [32, 48]


class TestCommands:
    """Exercise each command end-to-end on the tiniest real workloads.

    The small-8core preset is too slow for unit tests, so these monkeypatch
    the preset table to the tiny config.
    """

    @pytest.fixture(autouse=True)
    def _tiny_preset(self, monkeypatch):
        from tests.conftest import tiny_config

        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bard-h" in out and "lbm" in out

    def test_run(self, capsys):
        assert main(["run", "copy", "--policy", "bard-h"]) == 0
        out = capsys.readouterr().out
        assert "copy" in out and "WBLP" in out

    def test_compare(self, capsys):
        assert main(["compare", "copy", "--policies", "baseline",
                     "bard-h"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "copy", "whiskey"]) == 0
        out = capsys.readouterr().out
        assert "whiskey" in out

    def test_sweep_wq(self, capsys):
        assert main(["sweep-wq", "--workloads", "copy",
                     "--sizes", "32", "48"]) == 0
        out = capsys.readouterr().out
        assert "WQ size" in out

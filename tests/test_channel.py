"""Channel front-end: routing, forwarding, staging, probes."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import DramCoord, MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.timing import ddr5_4800_x4
from repro.sim.engine import Engine

_M = ZenMapping(pbpl=False)


@pytest.fixture
def setup():
    eng = Engine()
    ch = Channel(ddr5_4800_x4())
    ch.attach(eng)
    return eng, ch


def _read(addr, cb=None):
    return MemRequest(addr=addr, op=Op.READ, coord=_M.map(addr),
                      on_complete=cb)


def _write(addr):
    return MemRequest(addr=addr, op=Op.WRITE, coord=_M.map(addr))


class TestRouting:
    def test_routes_by_subchannel_bit(self, setup):
        eng, ch = setup
        ch.submit(_read(0))        # sc 0
        ch.submit(_read(1 << 6))   # sc 1
        assert len(ch.subchannels[0].rq) == 1
        assert len(ch.subchannels[1].rq) == 1

    def test_read_completes_with_callback(self, setup):
        eng, ch = setup
        done = []
        ch.submit(_read(0, cb=lambda t: done.append(t)))
        eng.run()
        assert len(done) == 1
        assert done[0] > 0


class TestForwarding:
    def test_read_hits_buffered_write(self, setup):
        """A read to an address with a queued write is forwarded
        (never reaches DRAM)."""
        eng, ch = setup
        ch.submit(_write(0x2000 & ~63))
        done = []
        ch.submit(_read(0x2000 & ~63, cb=lambda t: done.append(t)))
        eng.run()
        ch.finalize()
        assert ch.stats.forwarded_reads == 1
        assert len(done) == 1
        assert ch.aggregate_stats().reads_issued == 0

    def test_unrelated_read_not_forwarded(self, setup):
        eng, ch = setup
        ch.submit(_write(0))
        ch.submit(_read(1 << 13))
        eng.run()
        assert ch.stats.forwarded_reads == 0


class TestStaging:
    def test_overflow_writes_staged_and_replayed(self, setup):
        eng, ch = setup
        # 60 distinct writes to subchannel 0 overflow the 48-entry WQ.
        n = 0
        addr = 0
        while n < 60:
            if _M.map(addr).subchannel == 0:
                ch.submit(_write(addr))
                n += 1
            addr += 64
        assert ch.stats.staged_writes > 0
        eng.run()
        ch.finalize()
        agg = ch.aggregate_stats()
        # Everything above the final low-watermark leftovers was issued.
        assert agg.writes_issued + len(ch.subchannels[0].wq) == 60

    def test_read_latency_tracked(self, setup):
        eng, ch = setup
        ch.submit(_read(0, cb=lambda t: None))
        eng.run()
        assert ch.stats.reads_completed == 1
        assert ch.stats.mean_read_latency_ticks > 0


class TestPendingWritesProbe:
    def test_probe_counts_queued_writes(self, setup):
        eng, ch = setup
        req = _write(0)
        ch.submit(req)
        assert ch.pending_writes_for_bank(req.coord.bank_id) == 1
        other = (req.coord.bank_id + 1) % 64
        assert ch.pending_writes_for_bank(other) == 0

    def test_probe_sees_subchannel_1(self, setup):
        eng, ch = setup
        req = _write(1 << 6)
        ch.submit(req)
        assert req.coord.bank_id >= 32
        assert ch.pending_writes_for_bank(req.coord.bank_id) == 1


class TestAggregateStats:
    def test_merges_both_subchannels(self, setup):
        eng, ch = setup
        ch.submit(_read(0))
        ch.submit(_read(1 << 6))
        eng.run()
        assert ch.aggregate_stats().reads_issued == 2

"""Replacement policies: LRU, SRRIP, SHiP."""

from repro.cache.line import CacheLine
from repro.cache.replacement import (
    LRUPolicy,
    SHiPPolicy,
    SRRIPPolicy,
    make_replacement,
)
from repro.cache.replacement.srrip import RRPV_INSERT, RRPV_MAX
from repro.cache.replacement.ship import pc_signature

import pytest

from repro.errors import ConfigError


def _lines(n):
    out = []
    for i in range(n):
        line = CacheLine(valid=True, line_addr=i * 64)
        out.append(line)
    return out


class TestLRU:
    def test_victim_is_least_recent_fill(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way, pc=0)
        assert p.victim(0, _lines(4)) == 0

    def test_hit_promotes(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way, pc=0)
        p.on_hit(0, 0, pc=0)
        assert p.victim(0, _lines(4)) == 1

    def test_eviction_order_lru_to_mru(self):
        p = LRUPolicy(1, 4)
        for way in (2, 0, 3, 1):
            p.on_fill(0, way, pc=0)
        assert p.eviction_order(0, _lines(4)) == [2, 0, 3, 1]

    def test_sets_independent(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0, 0)
        p.on_fill(1, 1, 0)
        p.on_fill(0, 1, 0)
        p.on_fill(1, 0, 0)
        assert p.victim(0, _lines(2)) == 0
        assert p.victim(1, _lines(2)) == 1


class TestSRRIP:
    def test_insert_rrpv(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0, 0)
        assert p.rrpv[0][0] == RRPV_INSERT

    def test_hit_resets_rrpv(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0, 0)
        p.on_hit(0, 0, 0)
        assert p.rrpv[0][0] == 0

    def test_victim_is_max_rrpv(self):
        p = SRRIPPolicy(1, 4)
        for w in range(4):
            p.on_fill(0, w, 0)
        p.on_hit(0, 0, 0)
        p.rrpv[0][3] = RRPV_MAX
        assert p.victim(0, _lines(4)) == 3

    def test_aging_when_no_victim(self):
        p = SRRIPPolicy(1, 2)
        p.on_fill(0, 0, 0)
        p.on_fill(0, 1, 0)
        v = p.victim(0, _lines(2))
        assert v == 0  # tie broken by lowest way after aging
        assert p.rrpv[0][1] == RRPV_MAX

    def test_eviction_order_descending_rrpv(self):
        p = SRRIPPolicy(1, 4)
        p.rrpv[0] = [1, 3, 0, 3]
        assert p.eviction_order(0, _lines(4)) == [1, 3, 0, 2]


class TestSHiP:
    def test_learns_dead_signature(self):
        p = SHiPPolicy(1, 4)
        pc = 0x400812
        sig = pc_signature(pc)
        # Repeated evictions without reuse drive the counter to zero.
        line = CacheLine(valid=True, signature=sig, reused=False)
        for _ in range(10):
            p.on_eviction(0, 0, line)
        assert p.shct[sig] == 0
        p.on_fill(0, 1, pc)
        assert p.rrpv[0][1] == RRPV_MAX

    def test_reused_lines_keep_long_insert(self):
        p = SHiPPolicy(1, 4)
        pc = 0x400812
        p.on_fill(0, 0, pc)
        assert p.rrpv[0][0] == RRPV_INSERT

    def test_hit_trains_up(self):
        p = SHiPPolicy(1, 4)
        pc = 0x99
        sig = pc_signature(pc)
        before = p.shct[sig]
        p.on_hit(0, 0, pc)
        assert p.shct[sig] == before + 1

    def test_eviction_of_reused_line_no_decrement(self):
        p = SHiPPolicy(1, 4)
        sig = 123
        before = p.shct[sig]
        line = CacheLine(valid=True, signature=sig, reused=True)
        p.on_eviction(0, 0, line)
        assert p.shct[sig] == before

    def test_prefetch_fill_not_predicted_dead(self):
        p = SHiPPolicy(1, 4)
        pc = 0x77
        sig = pc_signature(pc)
        p.shct[sig] = 0
        p.on_fill(0, 0, pc, is_prefetch=True)
        assert p.rrpv[0][0] == RRPV_INSERT


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("srrip", SRRIPPolicy), ("ship", SHiPPolicy),
        ("LRU", LRUPolicy),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_replacement(name, 4, 4), cls)

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            make_replacement("belady", 4, 4)

"""MSHR pipeline: admission, coalescing, invariants, drain semantics.

The pipeline regime (``pipeline=True``) bounds true MSHR occupancy and
queues inadmissible accesses; these tests pin its invariants:

* occupancy never exceeds the MSHR count (seeded-random streams),
* every waiter fires exactly once, at the fill tick,
* queued misses drain FIFO,
* hit-under-miss / mshr_targets ablations behave as documented,
* a huge-MSHR pipeline cache is latency-identical to the legacy
  regime (differential oracle),
* drain() completes outstanding misses functionally and swallows the
  stale fills, so mid-miss warm-state snapshots are safe.
"""

import random

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import LRUPolicy
from repro.sim.engine import Engine

from .test_cache import FakeLower, addr_for_set


def make_pipeline_cache(engine, lower, sets=4, ways=2, mshrs=2,
                        latency=2, mshr_targets=0, hit_under_miss=True):
    size = sets * ways * 64
    return Cache("pipe", size, ways, latency, mshrs,
                 LRUPolicy(sets, ways), engine, lower,
                 mshr_targets=mshr_targets,
                 hit_under_miss=hit_under_miss,
                 pipeline=True)


@pytest.fixture
def env():
    engine = Engine()
    lower = FakeLower(engine)
    cache = make_pipeline_cache(engine, lower)
    return engine, lower, cache


class TestOccupancyInvariant:
    """len(mshr) <= mshr_count at all times, under random streams."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("mshrs", [1, 2, 4])
    def test_occupancy_bounded(self, seed, mshrs):
        engine = Engine()
        lower = FakeLower(engine, delay=97)
        cache = make_pipeline_cache(engine, lower, sets=4, ways=2,
                                    mshrs=mshrs)
        rng = random.Random(seed)
        max_occ = 0
        fired = []

        def issue_some(t, budget=[40]):
            nonlocal max_occ
            if budget[0] <= 0:
                return
            budget[0] -= 1
            addr = rng.randrange(0, 32) * 64 + rng.randrange(0, 8) * 8
            cache.access(addr, rng.random() < 0.3, 1, t,
                         lambda tt: fired.append(tt))
            max_occ = max(max_occ, len(cache.mshr))
            engine.schedule(t + rng.randrange(1, 50), issue_some,
                            engine.now + 1)

        engine.schedule(0, issue_some, 0)
        engine.run()
        assert max_occ <= mshrs
        # The occupancy histogram is the same invariant, observed at
        # every allocation: its highest bucket is the MSHR count.
        assert len(cache.stats.mshr_occupancy_hist) <= mshrs + 1
        # Everything eventually completed: no waiter lost to queueing.
        assert len(fired) == 40
        assert not cache.mshr and not cache._pending
        assert not cache.stalled

    @pytest.mark.parametrize("seed", [11, 12])
    def test_waiters_fire_exactly_once(self, seed):
        engine = Engine()
        lower = FakeLower(engine, delay=61)
        cache = make_pipeline_cache(engine, lower, mshrs=2)
        rng = random.Random(seed)
        counts = {}
        for i in range(30):
            addr = rng.randrange(0, 16) * 64
            counts[i] = 0

            def done(t, i=i):
                counts[i] += 1

            engine.schedule(rng.randrange(0, 400), cache.access, addr,
                            False, 1, 0, done)
        engine.run()
        assert all(c == 1 for c in counts.values())


class TestFillTiming:
    def test_waiters_fire_at_fill_tick(self, env):
        engine, lower, cache = env
        done = []
        cache.access(0, False, 1, 0, lambda t: done.append(t))
        cache.access(8, False, 1, 0, lambda t: done.append(t))  # merges
        engine.run()
        # Fill arrives delay ticks after the post-tag-latency send; both
        # waiters see the same fill tick.
        fill_tick = cache.hit_latency_ticks + lower.delay
        assert done == [fill_tick, fill_tick]

    def test_queued_miss_completes_after_blocking_fill(self, env):
        engine, lower, cache = env
        cache2 = make_pipeline_cache(engine, FakeLower(engine), mshrs=1)
        done = []
        cache2.access(0, False, 1, 0, lambda t: done.append(("a", t)))
        cache2.access(64 * 4, False, 1, 0,
                      lambda t: done.append(("b", t)))
        assert cache2.stalled
        engine.run()
        assert [tag for tag, _ in done] == ["a", "b"]
        assert done[1][1] > done[0][1]
        assert cache2.stats.mshr_stalls == 1
        assert cache2.stats.mshr_stall_cycles > 0
        assert not cache2.stalled


class TestFifoDrain:
    def test_queued_misses_drain_fifo(self):
        engine = Engine()
        lower = FakeLower(engine, delay=100)
        cache = make_pipeline_cache(engine, lower, mshrs=1)
        order = []
        addrs = [addr_for_set(cache, 0, tag) for tag in range(4)]
        for i, a in enumerate(addrs):
            cache.access(a, False, 1, 0,
                         lambda t, i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3]
        # The lower level saw the misses in queue order too.
        assert lower.reads == addrs


class TestHitUnderMiss:
    def test_hit_proceeds_under_miss(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()  # line 0 resident
        start = engine.now
        done = []
        cache.access(64 * 4, False, 1, start, None)        # miss
        cache.access(0, False, 1, start, lambda t: done.append(t))
        assert done == []  # hit latency still applies
        engine.run()
        assert done[0] == start + cache.hit_latency_ticks

    def test_blocking_cache_queues_hits(self):
        engine = Engine()
        lower = FakeLower(engine, delay=200)
        cache = make_pipeline_cache(engine, lower, mshrs=2,
                                    hit_under_miss=False)
        cache.access(0, False, 1, 0, None)
        engine.run()  # line 0 resident
        start = engine.now
        done = []
        cache.access(64 * 4, False, 1, start, None)        # miss
        cache.access(0, False, 1, start, lambda t: done.append(t))
        assert cache.stalled          # the hit queued behind the miss
        assert cache.stats.mshr_stalls == 1
        engine.run()
        # The queued hit completed only after the blocking miss filled.
        assert done[0] >= start + lower.delay
        assert not cache.stalled


class TestTargetBound:
    def test_secondary_miss_stall_at_target_bound(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_pipeline_cache(engine, lower, mshrs=4,
                                    mshr_targets=2)
        done = []
        for i in range(3):
            cache.access(8 * i, False, 1, 0,
                         lambda t, i=i: done.append(i))
        engine.run()
        # Two targets admitted (allocation + one merge); the third
        # queued as a secondary-miss stall.
        assert cache.mshr[0].targets == 2
        assert cache.stats.mshr_stalls == 1
        assert cache.stalled
        lower.respond_all()
        engine.run()
        lower.respond_all()   # the re-missed third access fills next
        engine.run()
        assert sorted(done) == [0, 1, 2]
        assert not cache.stalled


class TestPrefetchAdmission:
    def test_local_prefetch_dropped_when_full(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_pipeline_cache(engine, lower, mshrs=1)
        cache.access(0, False, 1, 0, None)
        cache.access(64 * 4, False, 1, 0, None, is_prefetch=True)
        assert cache.stats.prefetch_drops == 1
        assert not cache.stalled  # drops never queue or stall
        assert len(cache._pending) == 0

    def test_upstream_prefetch_queues_instead_of_dropping(self):
        """A prefetch carrying on_done is an upper level's fill in
        flight - dropping it would wedge that MSHR entry forever (the
        mshrs=1 deadlock this regression test pins)."""
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_pipeline_cache(engine, lower, mshrs=1)
        done = []
        cache.access(0, False, 1, 0, None)
        cache.access(64 * 4, False, 1, 0, lambda t: done.append(t),
                     is_prefetch=True)
        assert cache.stats.prefetch_drops == 0
        assert len(cache._pending) == 1
        engine.run()          # the demand miss reaches the lower level
        lower.respond_all()   # its fill admits the queued prefetch
        engine.run()
        lower.respond_all()   # the prefetch's own fill
        engine.run()
        assert len(done) == 1  # the upstream fill completed


class TestDifferentialOracle:
    def test_huge_pipeline_matches_legacy_latencies(self):
        """Contention-free accesses: pipeline == legacy, access by
        access.  With headroom the admission machinery must be
        timing-invisible."""
        results = []
        for pipeline in (False, True):
            engine = Engine()
            lower = FakeLower(engine, delay=150)
            cache = Cache("d", 4 * 2 * 64, 2, 2, 1 << 20,
                          LRUPolicy(4, 2), engine, lower,
                          pipeline=pipeline)
            rng = random.Random(99)
            latencies = []
            for _ in range(25):
                addr = rng.randrange(0, 12) * 64
                start = engine.now
                cache.access(addr, rng.random() < 0.5, 1, start,
                             lambda t, s=start: latencies.append(t - s))
                engine.run()   # one access at a time: no contention
            results.append((latencies, cache.stats.hits,
                            cache.stats.misses))
        assert results[0] == results[1]


class TestDrain:
    def test_snapshot_mid_miss_does_not_raise(self, env):
        engine, lower, cache = env
        done = []
        cache.access(0, True, 1, 0, lambda t: done.append(t))
        # Miss outstanding (send not yet delivered): snapshot drains.
        state = cache.snapshot_warm_state()
        assert done  # waiter fired functionally at drain time
        assert cache.find_line(0) is not None
        assert not cache.mshr and not cache._pending
        assert state.lines  # snapshot captured the post-drain state

    def test_drain_swallows_stale_fill(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_pipeline_cache(engine, lower, mshrs=2)
        cache.access(0, False, 1, 0, None)
        engine.run()            # request now FILLING at the lower level
        cache.drain(engine.now)
        assert cache.find_line(0) is not None
        assert cache._cancelled_fills == {0: 1}
        # A new miss to the same line allocated after the drain must
        # not be completed by the stale fill.
        done = []
        cache.access(64 * 4, False, 1, engine.now, None)  # evict helper
        lower.respond_all()     # delivers the STALE fill for line 0
        engine.run()
        assert cache._cancelled_fills == {}
        assert cache.stats.fills <= 2

    def test_drain_replays_queued_accesses(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_pipeline_cache(engine, lower, mshrs=1)
        done = []
        cache.access(0, False, 1, 0, lambda t: done.append("a"))
        cache.access(64 * 4, True, 1, 0, lambda t: done.append("b"))
        assert cache.stalled
        cache.drain(engine.now)
        assert sorted(done) == ["a", "b"]
        assert cache.find_line(0) is not None
        found = cache.find_line(64 * 4)
        assert found is not None
        s, w = found
        assert cache.sets[s].lines[w].dirty  # queued store landed dirty
        assert not cache.stalled

    def test_drain_idempotent_when_idle(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        before = cache.stats.snapshot()
        cache.drain(engine.now)
        assert cache.stats.fills == before.fills
        assert cache.find_line(0) is not None

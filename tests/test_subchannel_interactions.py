"""Sub-channel interactions: read/write mixing, turnaround, refresh."""

from repro.dram.commands import DramCoord, MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.subchannel import SubChannel
from repro.dram.timing import ddr5_4800_x4

_M = ZenMapping(pbpl=False)


def _addr(bg, bank=0, row=0, col=0):
    return _M.compose(DramCoord(0, 0, bg, bank, row, col))


def _req(addr, op, cb=None):
    return MemRequest(addr=addr, op=op, coord=_M.map(addr), on_complete=cb)


def run_sc(sc, limit=200_000):
    now = 0
    for _ in range(100_000):
        nxt = sc.tick(now)
        if nxt is None:
            return now
        now = max(nxt, now + 1)
        assert now < limit
    raise AssertionError("sub-channel never idled")


class TestReadWriteInterleaving:
    def test_reads_resume_after_drain(self):
        sc = SubChannel(ddr5_4800_x4())
        read_done = []
        for i in range(40):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        sc.enqueue_read(_req(_addr(7, 3, row=9), Op.READ,
                             cb=lambda t: read_done.append(t)))
        run_sc(sc)
        assert read_done, "read must complete after the write drain"
        assert sc.stats.writes_issued == 32

    def test_read_blocked_by_drain_pays_latency(self):
        """A read arriving mid-drain waits for the drain plus turnaround -
        the paper's core slowdown mechanism."""
        t = ddr5_4800_x4()
        # Isolated read latency first.
        sc0 = SubChannel(t)
        alone = []
        sc0.enqueue_read(_req(_addr(0), Op.READ, cb=alone.append))
        run_sc(sc0)
        # Read arriving exactly when a drain must start.
        sc1 = SubChannel(t)
        for i in range(40):
            sc1.enqueue_write(_req(i * 128, Op.WRITE))
        blocked = []
        sc1.enqueue_read(_req(_addr(0), Op.READ, cb=blocked.append))
        run_sc(sc1)
        assert blocked[0] > alone[0] + t.turnaround

    def test_writes_below_watermark_never_block_reads(self):
        sc = SubChannel(ddr5_4800_x4())
        for i in range(20):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        done = []
        sc.enqueue_read(_req(_addr(5), Op.READ, cb=done.append))
        run_sc(sc)
        assert sc.stats.writes_issued == 0
        assert done


class TestTurnaroundAccounting:
    def test_two_switches_per_episode(self):
        t = ddr5_4800_x4()
        sc = SubChannel(t)
        done = []
        sc.enqueue_read(_req(_addr(0), Op.READ, cb=done.append))
        run_sc(sc)
        for i in range(40):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        run_sc(sc)
        sc.enqueue_read(_req(_addr(1), Op.READ, cb=done.append))
        run_sc(sc)
        # read -> write and write -> read: two turnarounds.
        assert sc.stats.turnaround_cycles == 2 * t.turnaround


class TestWritesArrivingMidDrain:
    def test_late_writes_join_current_episode(self):
        sc = SubChannel(ddr5_4800_x4())
        for i in range(40):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        # Tick once to enter drain, then add more writes.
        now = sc.tick(0) or 0
        for i in range(40, 44):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        run_sc(sc)
        sc.finalize(1_000_000)
        assert len(sc.stats.episodes) == 1
        assert sc.stats.episodes[0].writes == 36  # 44 total, 8 left at low


class TestRefreshDuringTraffic:
    def test_refresh_and_drain_coexist(self):
        sc = SubChannel(ddr5_4800_x4(), refresh=True)
        for i in range(40):
            sc.enqueue_write(_req(i * 128, Op.WRITE))
        now = sc.trefi + 10  # force at least one refresh first
        for _ in range(10_000):
            nxt = sc.tick(now)
            if nxt is None:
                break
            now = max(nxt, now + 1)
        assert sc.refreshes_performed >= 1
        assert sc.stats.writes_issued == 32

"""HTTP round-trip tests: real sockets on an ephemeral localhost port."""

from __future__ import annotations

import contextlib
import threading

import pytest

from repro.experiment import ExperimentSpec
from repro.service import Backpressure, ExperimentService, \
    ResultNotReady, ServiceClient, ServiceConfig, ServiceError, \
    make_server

from .conftest import tiny_config


def _grid(workloads=("copy", "whiskey"), name="api-grid"):
    return ExperimentSpec(workloads=list(workloads),
                          configs=tiny_config(), name=name)


@contextlib.contextmanager
def _serve(tmp_path, start_workers=True, **overrides):
    """A live service + HTTP server on an ephemeral port; yields a client."""
    defaults = dict(
        state_dir=tmp_path / "state",
        store_dir=tmp_path / "store",
        shards=2,
        use_processes=False,
        poll_interval=0.01,
    )
    defaults.update(overrides)
    service = ExperimentService(ServiceConfig(**defaults))
    if start_workers:
        service.start()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield ServiceClient(f"http://{host}:{port}", timeout=10)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.stop()


class TestRoundTrip:
    def test_health(self, tmp_path):
        with _serve(tmp_path) as client:
            body = client.health()
        assert body == {"status": "ok", "version": "1"}

    def test_submit_wait_result(self, tmp_path):
        with _serve(tmp_path) as client:
            ticket = client.submit(_grid(), tenant="alice")
            assert ticket["state"] in ("queued", "running", "done")
            assert ticket["unique_runs"] == 2
            final = client.wait(ticket["grid_id"], timeout=60)
            assert final["done"] == 2
            result = client.result(ticket["grid_id"],
                                   metrics=["mean_ipc"])
        assert result["grid_id"] == ticket["grid_id"]
        assert result["name"] == "api-grid"
        assert result["tenant"] == "alice"
        assert {r["workload"] for r in result["records"]} == \
            {"copy", "whiskey"}
        assert all(isinstance(r["mean_ipc"], float)
                   for r in result["records"])
        assert result["stats"]["new_jobs"] == 2

    def test_second_identical_submission_serves_from_store(
            self, tmp_path):
        with _serve(tmp_path) as client:
            first = client.submit(_grid(), tenant="alice")
            client.wait(first["grid_id"], timeout=60)
            second = client.submit(_grid(), tenant="bob")
            # Everything came from the store: done at submission time.
            assert second["state"] == "done"
            assert second["admission"]["store_hits"] == 2
            assert second["admission"]["new_jobs"] == 0
            records = client.result(second["grid_id"])["records"]
        assert len(records) == 2

    def test_stats_endpoint(self, tmp_path):
        with _serve(tmp_path) as client:
            ticket = client.submit(_grid())
            client.wait(ticket["grid_id"], timeout=60)
            stats = client.stats()
        assert stats["grids"] == {"done": 1}
        assert stats["jobs"]["done"] == 2
        assert "limits" in stats and "workers" in stats

    def test_cancel_endpoint(self, tmp_path):
        with _serve(tmp_path, start_workers=False) as client:
            ticket = client.submit(_grid())
            status = client.cancel(ticket["grid_id"])
        assert status["state"] == "cancelled"


class TestErrorMapping:
    def test_unknown_grid_is_404(self, tmp_path):
        with _serve(tmp_path) as client:
            with pytest.raises(ServiceError) as info:
                client.status("g0123456789abcdef")
        assert info.value.status == 404
        assert "unknown grid" in str(info.value)

    def test_result_before_done_is_409(self, tmp_path):
        with _serve(tmp_path, start_workers=False) as client:
            ticket = client.submit(_grid())
            with pytest.raises(ResultNotReady) as info:
                client.result(ticket["grid_id"])
        # The 409 body carries the status so clients keep polling.
        assert info.value.payload["state"] == "queued"
        assert info.value.payload["done"] == 0

    def test_backpressure_is_429(self, tmp_path):
        with _serve(tmp_path, start_workers=False,
                    max_pending_per_tenant=1) as client:
            with pytest.raises(Backpressure) as info:
                client.submit(_grid(), tenant="alice")
        assert info.value.status == 429
        assert info.value.payload["tenant"] == "alice"
        assert info.value.payload["scope"] == "per-tenant"
        assert info.value.payload["limit"] == 1

    def test_malformed_submission_is_400(self, tmp_path):
        with _serve(tmp_path) as client:
            with pytest.raises(ServiceError) as info:
                client._request("POST", "/v1/grids", {"nope": True})
        assert info.value.status == 400
        assert "experiment" in str(info.value)

    def test_unknown_endpoint_is_404(self, tmp_path):
        with _serve(tmp_path) as client:
            with pytest.raises(ServiceError) as info:
                client._request("GET", "/v1/nope")
        assert info.value.status == 404

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError) as info:
            client.health()
        assert info.value.status == 0
        assert "cannot reach" in str(info.value)


class TestWireFormat:
    def test_dict_submission_matches_spec_submission(self, tmp_path):
        """A hand-built wire dict hashes to the same grid as the spec."""
        from repro.experiment import experiment_to_dict

        spec = _grid()
        with _serve(tmp_path, start_workers=False) as client:
            via_spec = client.submit(spec, tenant="alice")
            via_dict = client.submit(experiment_to_dict(spec),
                                     tenant="alice")
        assert via_dict["grid_id"] == via_spec["grid_id"]

"""Property-based tests on the write queue (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.commands import MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.queues import WriteQueue

_M = ZenMapping()


def _req(slot: int) -> MemRequest:
    addr = slot * 64
    return MemRequest(addr=addr, op=Op.WRITE, coord=_M.map(addr))


class TestWriteQueueInvariants:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                    max_size=150))
    def test_index_and_list_stay_consistent(self, ops):
        """The address index always mirrors the entry list, under any
        interleaving of pushes and removals."""
        q = WriteQueue(16, 12, 2)
        for is_push, slot in ops:
            if is_push:
                q.push(_req(slot))
            else:
                match = next((r for r in q.entries
                              if r.addr == slot * 64), None)
                if match is not None:
                    q.remove(match)
            # Invariants after every operation:
            assert len(q.entries) == len(q._by_addr)
            assert len(q.entries) <= q.capacity
            addrs = [r.addr for r in q.entries]
            assert len(addrs) == len(set(addrs)), "duplicate addresses"
            for r in q.entries:
                assert q.contains_addr(r.addr)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 60), min_size=1, max_size=100))
    def test_occupancy_never_exceeds_capacity(self, slots):
        q = WriteQueue(8, 6, 1)
        accepted = 0
        coalesced_before = 0
        for slot in slots:
            if q.push(_req(slot)):
                accepted += 1
        assert len(q) <= q.capacity
        # Everything accepted is either resident or was a coalesce.
        assert accepted == len(q) + q.coalesced

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_pending_for_bank_totals(self, slots):
        q = WriteQueue(64, 50, 2)
        for slot in slots:
            q.push(_req(slot))
        per_bank = sum(q.pending_for_bank(b) for b in range(32))
        # Every resident entry is counted exactly once across banks of its
        # sub-channel; entries on sub-channel 1 are outside 0..31 ids only
        # if coord.subchannel == 1, but pending_for_bank matches on the
        # sub-channel-local id, so all entries are counted.
        assert per_bank == len(q)


class TestMappingChannels:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, (1 << 32) - 1), st.sampled_from([1, 2, 4]))
    def test_channel_in_range(self, addr, channels):
        m = ZenMapping(channels=channels)
        coord = m.map(addr & ~63)
        assert 0 <= coord.channel < channels
        assert 0 <= coord.bank_id < 64

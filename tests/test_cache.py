"""Set-associative cache: hits, misses, MSHRs, writebacks, cleansing."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import LRUPolicy
from repro.sim.engine import Engine


class FakeLower:
    """Scriptable lower level: records traffic, responds after a delay."""

    def __init__(self, engine, delay=300, auto=True):
        self.engine = engine
        self.delay = delay
        self.auto = auto
        self.reads = []
        self.writebacks = []
        self.pending = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.reads.append(line_addr)
        if self.auto:
            self.engine.schedule(now + self.delay,
                                 lambda: on_done(now + self.delay))
        else:
            self.pending.append((line_addr, on_done))

    def writeback(self, line_addr, now):
        self.writebacks.append(line_addr)

    def respond_all(self):
        for la, cb in self.pending:
            cb(self.engine.now)
        self.pending.clear()


def make_cache(engine, lower, sets=4, ways=2, mshrs=4, latency=2,
               wb_policy=None):
    size = sets * ways * 64
    return Cache("test", size, ways, latency, mshrs,
                 LRUPolicy(sets, ways), engine, lower,
                 writeback_policy=wb_policy)


@pytest.fixture
def env():
    engine = Engine()
    lower = FakeLower(engine)
    cache = make_cache(engine, lower)
    return engine, lower, cache


def addr_for_set(cache, set_idx, tag):
    """Address mapping to a given set with a distinguishing tag."""
    return (tag * cache.num_sets + set_idx) * 64


class TestHitMiss:
    def test_miss_goes_to_lower(self, env):
        engine, lower, cache = env
        done = []
        cache.access(0, False, 1, 0, lambda t: done.append(t))
        engine.run()
        assert lower.reads == [0]
        assert len(done) == 1

    def test_hit_after_fill(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        done = []
        cache.access(0, False, 1, engine.now, lambda t: done.append(t))
        engine.run()
        assert cache.stats.hits == 1
        assert lower.reads == [0]
        assert done[0] == pytest.approx(
            engine.now, abs=cache.hit_latency_ticks + 1)

    def test_sub_line_addresses_share_line(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        cache.access(63, False, 1, engine.now, None)
        engine.run()
        assert cache.stats.hits == 1

    def test_hit_latency_applied(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        start = engine.now
        done = []
        cache.access(0, False, 1, start, lambda t: done.append(t))
        engine.run()
        assert done[0] == start + cache.hit_latency_ticks


class TestMSHR:
    def test_same_line_merges(self, env):
        engine, lower, cache = env
        done = []
        for i in range(3):
            cache.access(0, False, 1, 0, lambda t: done.append(t))
        engine.run()
        assert lower.reads == [0]
        assert cache.stats.mshr_merges == 2
        assert len(done) == 3

    def test_outstanding_bounded_by_mshrs(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_cache(engine, lower, mshrs=2)
        for i in range(4):
            cache.access(i * 64 * cache.num_sets, False, 1, 0, None)
        engine.run()
        assert len(lower.pending) == 2  # 2 issued, 2 queued behind MSHRs
        lower.respond_all()
        engine.run()
        assert len(lower.pending) == 2  # next two released
        lower.respond_all()
        engine.run()
        assert cache.stats.fills == 4

    def test_write_merge_marks_dirty(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)   # read miss outstanding
        cache.access(0, True, 1, 0, None)    # store merges
        engine.run()
        found = cache.find_line(0)
        assert found is not None
        s, w = found
        assert cache.sets[s].lines[w].dirty


class TestWriteAllocate:
    def test_store_miss_fetches_then_dirties(self, env):
        engine, lower, cache = env
        cache.access(0, True, 1, 0, None)
        engine.run()
        assert lower.reads == [0]
        s, w = cache.find_line(0)
        assert cache.sets[s].lines[w].dirty

    def test_store_hit_dirties(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        cache.access(0, True, 1, engine.now, None)
        engine.run()
        s, w = cache.find_line(0)
        assert cache.sets[s].lines[w].dirty


class TestEviction:
    def test_clean_eviction_silent(self, env):
        engine, lower, cache = env
        # Fill 3 lines into set 0 of a 2-way cache: one eviction.
        for tag in range(3):
            cache.access(addr_for_set(cache, 0, tag), False, 1,
                         engine.now, None)
            engine.run()
        assert cache.stats.evictions == 1
        assert lower.writebacks == []

    def test_dirty_eviction_writes_back(self, env):
        engine, lower, cache = env
        victim_addr = addr_for_set(cache, 0, 0)
        cache.access(victim_addr, True, 1, 0, None)
        engine.run()
        for tag in range(1, 3):
            cache.access(addr_for_set(cache, 0, tag), False, 1,
                         engine.now, None)
            engine.run()
        assert lower.writebacks == [victim_addr]
        assert cache.stats.dirty_evictions == 1

    def test_lru_order_respected(self, env):
        engine, lower, cache = env
        a0, a1 = (addr_for_set(cache, 0, t) for t in (0, 1))
        for a in (a0, a1):
            cache.access(a, False, 1, engine.now, None)
            engine.run()
        cache.access(a0, False, 1, engine.now, None)  # promote a0
        engine.run()
        cache.access(addr_for_set(cache, 0, 2), False, 1, engine.now, None)
        engine.run()
        assert cache.find_line(a0) is not None
        assert cache.find_line(a1) is None


class TestWritebackInstall:
    def test_miss_installs_dirty_without_fetch(self, env):
        engine, lower, cache = env
        cache.writeback(0, 0)
        assert lower.reads == []
        s, w = cache.find_line(0)
        assert cache.sets[s].lines[w].dirty

    def test_hit_just_dirties(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        cache.writeback(0, engine.now)
        s, w = cache.find_line(0)
        assert cache.sets[s].lines[w].dirty
        assert cache.stats.writeback_installs == 1

    def test_races_with_outstanding_fill(self):
        engine = Engine()
        lower = FakeLower(engine, auto=False)
        cache = make_cache(engine, lower)
        cache.access(0, False, 1, 0, None)   # miss outstanding
        engine.run()                         # request reaches lower level
        cache.writeback(0, 0)                # writeback arrives meanwhile
        lower.respond_all()
        engine.run()
        found = cache.find_line(0)
        assert found is not None
        s, w = found
        assert cache.sets[s].lines[w].dirty
        # Only one copy of the line exists.
        copies = sum(
            1 for cset in cache.sets for line in cset.lines
            if line.valid and line.line_addr == 0
        )
        assert copies == 1


class TestCleanse:
    def test_cleanse_writes_back_keeps_line(self, env):
        engine, lower, cache = env
        cache.access(0, True, 1, 0, None)
        engine.run()
        s, w = cache.find_line(0)
        cache.cleanse(s, w, engine.now)
        assert lower.writebacks == [0]
        line = cache.sets[s].lines[w]
        assert line.valid and not line.dirty
        assert cache.stats.cleanses == 1

    def test_cleanse_clean_line_noop(self, env):
        engine, lower, cache = env
        cache.access(0, False, 1, 0, None)
        engine.run()
        s, w = cache.find_line(0)
        cache.cleanse(s, w, engine.now)
        assert lower.writebacks == []

"""Error taxonomy and public-API surface."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    MappingError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, MappingError, SchedulingError, SimulationError,
        TraceError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigError("bad")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_headline_entry_points(self):
        assert callable(repro.run_workload)
        assert callable(repro.compare_policies)
        assert callable(repro.small_8core)
        assert callable(repro.make_bard)

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.cache
        import repro.core
        import repro.cpu
        import repro.dram
        import repro.prefetch
        import repro.sim
        import repro.workloads

        for module in (repro.analysis, repro.cache, repro.core, repro.cpu,
                       repro.dram, repro.prefetch, repro.sim,
                       repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__} missing {name}")

    def test_docstrings_on_public_surface(self):
        """Every public item reachable from the top level is documented."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

"""Memory controller routing and probes."""

import pytest

from repro.dram.channel import Channel
from repro.dram.mapping import ZenMapping
from repro.dram.timing import ddr5_4800_x4
from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController


def make_mc(channels=1):
    engine = Engine()
    mapping = ZenMapping(channels=channels)
    chans = []
    for _ in range(channels):
        ch = Channel(ddr5_4800_x4())
        ch.attach(engine)
        chans.append(ch)
    return engine, MemoryController(mapping, chans)


class TestRouting:
    def test_read_reaches_dram(self):
        engine, mc = make_mc()
        done = []
        mc.read(0, 0, lambda t: done.append(t), core_id=0,
                is_prefetch=False)
        engine.run()
        assert len(done) == 1
        assert mc.stats.reads == 1

    def test_writeback_counted(self):
        engine, mc = make_mc()
        mc.writeback(0, 0)
        assert mc.stats.writes == 1

    def test_two_channel_routing(self):
        engine, mc = make_mc(channels=2)
        mc.read(0, 0, lambda t: None, 0, False)       # channel 0
        mc.read(1 << 6, 0, lambda t: None, 0, False)  # channel 1
        assert mc.channels[0].stats.reads_received == 1
        assert mc.channels[1].stats.reads_received == 1

    def test_channel_count_mismatch_rejected(self):
        engine = Engine()
        ch = Channel(ddr5_4800_x4())
        ch.attach(engine)
        with pytest.raises(ValueError):
            MemoryController(ZenMapping(channels=2), [ch])


class TestProbe:
    def test_pending_writes_for_line(self):
        engine, mc = make_mc()
        mc.writeback(0x4000, 0)
        assert mc.pending_writes_for_line(0x4000) == 1
        # A line in a different bank reports zero.
        other = 0x4000 + (1 << 8)  # different bankgroup bits
        assert mc.pending_writes_for_line(other) == 0

    def test_finalize_propagates(self):
        engine, mc = make_mc()
        mc.writeback(0, 0)
        engine.run()
        mc.finalize()  # must not raise, and closes episodes

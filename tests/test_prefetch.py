"""Prefetchers: Berti-like stride detection and SPP-like signature paths."""

import pytest

from repro.errors import ConfigError
from repro.prefetch import (
    BertiPrefetcher,
    NullPrefetcher,
    SPPPrefetcher,
    make_prefetcher,
)


class TestBerti:
    def test_learns_constant_stride(self):
        p = BertiPrefetcher(degree=2)
        pc = 0x400
        targets = []
        for i in range(6):
            targets = p.on_access(i * 64, pc, hit=False)
        assert targets  # confident by now
        assert targets[0] == 6 * 64  # next stride ahead

    def test_per_pc_tables(self):
        p = BertiPrefetcher(degree=1)
        for i in range(6):
            p.on_access(i * 64, 0x400, hit=False)
            p.on_access(1 << 20, 0x500, hit=True)  # no stride for pc 0x500
        assert p.on_access(6 * 64, 0x400, hit=False)
        assert not p.on_access(1 << 20, 0x500, hit=True)

    def test_stride_change_resets_confidence(self):
        p = BertiPrefetcher(degree=1)
        pc = 0x400
        for i in range(4):
            p.on_access(i * 64, pc, hit=False)
        assert not p.on_access(10_000_000, pc, hit=False)

    def test_no_duplicate_line_targets(self):
        p = BertiPrefetcher(degree=4)
        pc = 0x400
        targets = []
        for i in range(8):
            targets = p.on_access(i * 8, pc, hit=True)  # sub-line stride
        lines = [t // 64 for t in targets]
        assert len(lines) == len(set(lines))

    def test_stats(self):
        p = BertiPrefetcher()
        p.on_access(0, 1, hit=True)
        assert p.stats.observed == 1


class TestSPP:
    def test_learns_page_delta_pattern(self):
        p = SPPPrefetcher(degree=2)
        page = 7 << 12
        targets = []
        for block in range(0, 20, 1):
            targets = p.on_access(page + block * 64, 0, hit=False)
        assert targets
        assert all(t >> 12 == 7 for t in targets)  # stays in page

    def test_no_prediction_cold(self):
        p = SPPPrefetcher()
        assert not p.on_access(0x5000, 0, hit=False)

    def test_lookahead_multiple_blocks(self):
        p = SPPPrefetcher(degree=2)
        page = 3 << 12
        for block in range(30):
            targets = p.on_access(page + block * 64, 0, hit=False)
        assert len(targets) >= 1


class TestNullAndFactory:
    def test_null(self):
        assert NullPrefetcher().on_access(0, 0, True) == []

    def test_factory_none(self):
        assert make_prefetcher(None) is None
        assert make_prefetcher("none") is None

    def test_factory_named(self):
        assert isinstance(make_prefetcher("berti"), BertiPrefetcher)
        assert isinstance(make_prefetcher("spp"), SPPPrefetcher)

    def test_factory_unknown(self):
        with pytest.raises(ConfigError):
            make_prefetcher("nextline-9000")

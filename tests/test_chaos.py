"""Chaos tests: kill the real service mid-grid and prove the invariants.

The headline test boots ``python -m repro serve`` as a real subprocess
(its own process group, process-pool workers and all) with a fault plan
injected through the ``REPRO_FAULTS`` environment file, SIGKILLs the
whole group mid-grid, restarts the service over the same durable state,
and asserts the crash-resume contract:

* every job reaches a terminal state exactly once,
* runs whose results were already stored are **not** simulated again
  (they complete from the store - the exactly-once invariant),
* nothing leaks into quarantine from the crash itself.

The HTTP-level tests exercise the client's transport retries against a
live in-process server under injected connection faults.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiment import ExperimentSpec
from repro.experiment.cache import ResultCache
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, injected
from repro.service import Backpressure, ExperimentService, \
    ServiceClient, ServiceConfig, ServiceError, make_server
from repro.service.queue import DONE, FAILED, QUARANTINED

from .conftest import tiny_config

REPO_ROOT = Path(__file__).resolve().parents[1]


def _grid(workloads=("copy", "whiskey", "cf", "lbm"), name="chaos"):
    return ExperimentSpec(workloads=list(workloads),
                          configs=tiny_config(),
                          name=name)


def _inline_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        state_dir=tmp_path / "state",
        store_dir=tmp_path / "store",
        shards=2,
        use_processes=False,
        poll_interval=0.01,
        retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                          max_delay=0.01),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestCrashResume:
    def test_sigkill_mid_grid_terminal_exactly_once(self, tmp_path):
        state = tmp_path / "state"
        store = tmp_path / "store"
        plan_path = tmp_path / "faults.json"
        # Slow every simulation down so the kill reliably lands
        # mid-grid with some results stored and some not.
        FaultPlan(rules=[FaultRule(site="simulate", action="delay",
                                   seconds=0.3, times=0)]
                  ).dump(plan_path)
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
            REPRO_FAULTS=str(plan_path),
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--state-dir", str(state),
             "--cache-dir", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env, cwd=str(REPO_ROOT),
            start_new_session=True)
        grid = _grid()
        total = len(grid.expand().runs)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            client = ServiceClient(
                f"http://{match.group(1)}:{match.group(2)}")
            ticket = client.submit(grid, tenant="alice")
            grid_id = ticket["grid_id"]
            deadline = time.time() + 60
            while time.time() < deadline:
                if client.status(grid_id)["done"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("service never finished a first run")
        finally:
            # Kill the whole process group: the serve process AND its
            # pool workers die instantly, mid-whatever-they-were-doing.
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        cache = ResultCache(store)
        keys = list(grid.expand().runs)
        stored_at_kill = sum(1 for k in keys if cache.verify(k))
        assert 1 <= stored_at_kill < total  # genuinely mid-grid

        # Restart over the same durable state - no faults this time.
        with ExperimentService(_inline_config(
                tmp_path, store_dir=store)) as revived:
            assert revived.drain(timeout=60.0)
            counts = revived.queue.counts()
            stats = revived.workers.stats_dict()
            status = revived.status(grid_id)

        # Every job terminal, exactly once, no quarantine leaks.
        assert status["state"] == "done"
        assert counts[DONE] == total
        assert counts[QUARANTINED] == 0
        assert counts[FAILED] == 0
        # Exactly-once for cached runs: the revived service simulated
        # only the runs the dead one had NOT stored; everything stored
        # at kill time completed via the store, not a re-simulation.
        assert stats["jobs"] == total - stored_at_kill

    def test_resumed_jobs_with_stored_results_skip_simulation(
            self, tmp_path):
        """In-process rehearsal of the same invariant (no subprocess)."""
        grid = _grid(workloads=("copy", "whiskey"))
        with ExperimentService(_inline_config(tmp_path)) as service:
            service.submit(grid, tenant="alice")
            assert service.drain(timeout=30.0)
        # Simulate the crash window: results stored, but the queue
        # thinks the jobs were still running when the process died.
        from repro.service.queue import JobQueue, RUNNING
        queue_dir = tmp_path / "state" / "queue"
        for path in queue_dir.glob("*.json"):
            body = json.loads(path.read_text())
            body["state"] = RUNNING
            path.write_text(json.dumps(body))
        with ExperimentService(_inline_config(tmp_path)) as revived:
            assert revived.queue.resumed == 2
            assert revived.drain(timeout=30.0)
            stats = revived.workers.stats_dict()
            assert revived.queue.counts()[DONE] == 2
        assert stats["jobs"] == 0  # nothing re-simulated
        assert stats["store_skips"] == 2


def _serve_inline(tmp_path, **overrides):
    service = ExperimentService(_inline_config(tmp_path, **overrides))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    host, port = server.server_address[:2]
    return service, server, ServiceClient(f"http://{host}:{port}",
                                          retries=2)


class TestClientChaos:
    def test_dropped_response_retried_transparently(self, tmp_path):
        service, server, client = _serve_inline(tmp_path)
        plan = FaultPlan(rules=[FaultRule(site="client.request",
                                          action="drop", times=1)])
        try:
            with injected(plan):
                health = client.health()
            assert health["status"] == "ok"
            assert plan.fired() == 1  # first attempt really dropped
        finally:
            service.stop()
            server.server_close()

    def test_drop_storm_exhausts_retries(self, tmp_path):
        service, server, client = _serve_inline(tmp_path)
        plan = FaultPlan(rules=[FaultRule(site="client.request",
                                          action="drop", times=0)])
        try:
            with injected(plan):
                with pytest.raises(ServiceError) as info:
                    client.health()
            assert info.value.status == 0
            assert not isinstance(info.value, Backpressure)
            assert plan.fired() == 3  # 1 attempt + 2 retries
        finally:
            service.stop()
            server.server_close()

    def test_backpressure_retry_honors_retry_after(self, tmp_path):
        service, server, client = _serve_inline(
            tmp_path, max_pending_total=1)
        slow = FaultPlan(rules=[FaultRule(site="simulate",
                                          action="delay",
                                          seconds=0.4, times=0)])
        patient = ServiceClient(client.base_url, retries=8,
                                retry_backpressure=True,
                                retry_policy=RetryPolicy(
                                    max_attempts=9, base_delay=0.05,
                                    max_delay=0.2))
        try:
            with injected(slow):
                first = client.submit(_grid(workloads=("copy",)),
                                      tenant="alice")
                # The queue bound is 1: this submission 429s until the
                # first run finishes, then gets through.
                second = patient.submit(_grid(workloads=("whiskey",)),
                                        tenant="bob")
            assert second["grid_id"] != first["grid_id"]
            assert service.drain(timeout=30.0)
        finally:
            service.stop()
            server.server_close()

    def test_degraded_grid_over_http(self, tmp_path):
        grid = _grid(workloads=("copy", "whiskey"))
        poison = next(k for k, s in grid.expand().runs.items()
                      if s.workload == "whiskey")
        plan = FaultPlan(rules=[FaultRule(site="simulate",
                                          action="raise",
                                          match=poison, times=0)])
        service, server, client = _serve_inline(tmp_path)
        try:
            with injected(plan):
                ticket = client.submit(grid, tenant="alice")
                seen = []
                status = client.wait(ticket["grid_id"], timeout=30,
                                     poll=0.02,
                                     on_progress=seen.append)
            # wait() returns (not raises) for degraded grids.
            assert status["state"] == "degraded"
            assert status["progress"] == {
                "completed": 1, "quarantined": 1, "total": 2}
            assert seen and seen[-1]["progress"]["completed"] == 1
            assert seen[-1]["progress"]["quarantined"] == 1
            result = client.result(ticket["grid_id"],
                                   metrics=["mean_ipc"])
            assert len(result["records"]) == 1  # partial, not poisoned
            assert result["quarantined"] == 1
            listing = client.jobs("quarantined")
            assert listing["count"] == 1
            assert listing["jobs"][0]["key"] == poison
            # Operator runbook: drain the dead-letter queue (the fault
            # budget here is unlimited, so requeue, then cancel).
            assert client.requeue_quarantined([poison])["requeued"] == 1
        finally:
            service.stop()
            server.server_close()

"""Core issue-width and ROB-occupancy limits."""

from repro.cpu.core import Core
from repro.cpu.trace import LOAD, NONMEM
from repro.sim.engine import Engine


class NeverRespondingMemory:
    """Memory that accepts loads but never completes them."""

    def __init__(self):
        self.outstanding = []

    def access(self, addr, is_write, pc, now, on_done, core_id=0,
               is_prefetch=False):
        if on_done is not None:
            self.outstanding.append((addr, on_done))


class InstantMemory:
    def __init__(self, engine):
        self.engine = engine
        self.per_cycle = {}

    def access(self, addr, is_write, pc, now, on_done, core_id=0,
               is_prefetch=False):
        if addr >= 64:  # ignore instruction-fetch traffic (pc stream)
            self.per_cycle.setdefault(now, 0)
            self.per_cycle[now] += 1
        if on_done is not None:
            self.engine.schedule(now + 3, lambda: on_done(now + 3))


class ZeroTLB:
    def translate(self, addr):
        return 0


def _loads_forever():
    i = 0
    while True:
        yield (LOAD, 64 * (i + 1), 4)
        i += 1


def _nonmem_forever():
    while True:
        yield (NONMEM, 0, 4)


class TestROBBoundsMLP:
    def test_outstanding_loads_capped_by_rob(self):
        engine = Engine()
        mem = NeverRespondingMemory()
        core = Core(0, _loads_forever(), engine, mem, mem, ZeroTLB(),
                    ZeroTLB(), rob_size=16, budget=1000)
        core.start()
        engine.run(max_events=100_000)
        # The core must go dormant with exactly ROB-size loads in flight.
        assert len(mem.outstanding) == 16
        assert core._sleeping

    def test_wakes_when_head_completes(self):
        engine = Engine()
        mem = NeverRespondingMemory()
        core = Core(0, _loads_forever(), engine, mem, mem, ZeroTLB(),
                    ZeroTLB(), rob_size=8, budget=1000)
        core.start()
        engine.run(max_events=100_000)
        assert core._sleeping
        # Complete the head load: the core must wake and issue more.
        before = len(mem.outstanding)
        addr, cb = mem.outstanding[0]
        cb(engine.now)
        engine.run(max_events=100_000)
        assert len(mem.outstanding) > before


class TestIssueWidth:
    def test_at_most_width_issues_per_cycle(self):
        engine = Engine()
        mem = InstantMemory(engine)
        core = Core(0, _loads_forever(), engine, mem, mem, ZeroTLB(),
                    ZeroTLB(), rob_size=64, issue_width=4, budget=100)
        core.start()
        engine.run()
        assert max(mem.per_cycle.values()) <= 4

    def test_nonmem_ipc_bounded_by_width(self):
        engine = Engine()
        mem = InstantMemory(engine)
        core = Core(0, _nonmem_forever(), engine, mem, mem, ZeroTLB(),
                    ZeroTLB(), rob_size=64, issue_width=4,
                    retire_width=4, budget=800)
        core.start()
        engine.run()
        assert core.stats.ipc <= 4.0 + 1e-9

"""Telemetry layer: registry, tracing, gating, logs, and the wiring.

Covers the contracts the rest of the repository leans on:

* the registry is thread-safe and exact under concurrent increments,
* label cardinality is bounded (overflow collapse, ``dropped_series``),
* the disabled mode is a zero-allocation identity fast path (shared
  NOOP / null-span singletons) and leaves simulation results
  bit-identical,
* spans nest, order, and export as valid Chrome trace-event JSON,
* ``ServiceClient.wait`` only reports *actual* progress,
* ``/v1/metrics`` serves parseable Prometheus text over real HTTP.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import re
import threading
from io import StringIO

import pytest

from repro import telemetry
from repro.experiment import Session
from repro.service.client import ServiceClient
from repro.telemetry import (JsonLinesFormatter, MetricsRegistry, Tracer,
                             configure_logging, get_logger, phase_key)
from repro.telemetry.registry import NOOP

from .conftest import tiny_config
from .test_service_api import _grid, _serve


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts and ends disabled with empty registry/tracer."""
    telemetry.disable()
    telemetry.REGISTRY.reset()
    telemetry.get_tracer().reset()
    yield
    telemetry.disable()
    telemetry.REGISTRY.reset()
    telemetry.get_tracer().reset()


# A Prometheus text sample line: name{optional labels} value
_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$")


class TestRegistry:
    def test_counter_inc_and_render(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total", "A test counter",
                                  ("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="a").inc(2)
        family.labels(kind="b").inc()
        assert family.value(kind="a") == 3
        assert family.value(kind="b") == 1
        text = registry.render()
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{kind="a"} 3' in text
        assert text.endswith("\n")
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert _SAMPLE.match(line), line

    def test_thread_safety_exact_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_threads_total", "", ("t",))
        histogram = registry.histogram("repro_threads_seconds", "",
                                       buckets=(0.5, 1.0))

        def worker():
            for _ in range(1000):
                counter.labels(t="x").inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(t="x") == 8 * 1000
        snap = registry.snapshot()
        assert snap["repro_threads_seconds_count"][""] == 8 * 1000
        assert snap["repro_threads_seconds_sum"][""] == \
            pytest.approx(8 * 1000 * 0.25)

    def test_label_cardinality_overflow(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_cardinality_total", "",
                                  ("key",), max_series=4)
        for i in range(10):
            family.labels(key=f"k{i}").inc()
        # Only max_series children exist; the excess collapsed into the
        # all-"overflow" series and was counted as dropped.
        assert len(family._children) <= 4 + 1
        assert family.dropped_series >= 6
        assert family.value(key="overflow") >= 6
        text = registry.render()
        assert 'key="overflow"' in text

    def test_label_schema_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_schema_total", "", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels(a="only")
        with pytest.raises(ValueError):
            family.labels(a="x", c="wrong")
        with pytest.raises(ValueError):
            registry.gauge("repro_schema_total")  # kind conflict

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("repro_lat_seconds", "latency",
                                    buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            family.observe(value)
        text = registry.render()
        assert 'repro_lat_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="1"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text
        assert "repro_lat_seconds_sum 5.555" in text

    def test_gauge_set_and_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", "", ("state",))
        gauge.labels(state="pending").set(7)
        gauge.labels(state="pending").dec(2)
        assert gauge.value(state="pending") == 5


class TestGating:
    def test_disabled_returns_shared_singletons(self):
        assert not telemetry.enabled()
        # Identity, not equality: the disabled path allocates nothing.
        assert telemetry.counter("repro_x_total") is NOOP
        assert telemetry.gauge("repro_x") is NOOP
        assert telemetry.histogram("repro_x_seconds") is NOOP
        assert telemetry.span("measure") is telemetry.span("warmup")
        assert NOOP.labels(anything="goes") is NOOP
        assert NOOP.inc() is None and NOOP.observe(1.0) is None
        # Nothing registered a family behind the scenes.
        assert len(telemetry.REGISTRY) == 0

    def test_enable_disable_toggle(self):
        telemetry.enable()
        try:
            assert telemetry.enabled()
            family = telemetry.counter("repro_toggle_total")
            assert family is not NOOP
            family.inc()
            assert family.value() == 1
        finally:
            telemetry.disable()
        assert telemetry.counter("repro_toggle_total") is NOOP

    def test_disabled_run_result_is_bit_identical(self):
        """Enabling telemetry must not perturb simulation statistics."""
        config = tiny_config()
        baseline = Session(cache=False).run_one(config, "copy", seed=7)
        telemetry.enable()
        try:
            instrumented = Session(cache=False).run_one(
                config, "copy", seed=7)
        finally:
            telemetry.disable()
        assert baseline.phase_breakdown is None
        assert instrumented.phase_breakdown  # measured, not empty
        base = dataclasses.asdict(baseline)
        inst = dataclasses.asdict(instrumented)
        base.pop("phase_breakdown"), inst.pop("phase_breakdown")
        assert base == inst


class TestTracer:
    def test_phase_key_collapses_indexed_phases(self):
        assert phase_key("sampling.interval[7]") == "sampling.interval"
        assert phase_key("measure") == "measure"

    def test_span_nesting_and_chrome_export(self):
        tracer = Tracer()
        with tracer.span("outer", category="run", workload="copy"):
            with tracer.span("inner.one"):
                pass
            with tracer.span("inner.two"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == \
            ["inner.one", "inner.two", "outer"]
        assert [s.depth for s in spans] == [1, 1, 0]
        trace = tracer.export_chrome()
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == \
            ["outer", "inner.one", "inner.two"]  # sorted by start
        outer, one, two = events
        assert all(e["ph"] == "X" for e in events)
        assert outer["args"]["workload"] == "copy"
        # Children sit inside the parent on the timeline (Perfetto
        # infers nesting from ts/dur per tid).
        assert outer["ts"] <= one["ts"]
        assert one["ts"] + one["dur"] <= two["ts"] + 1
        assert two["ts"] + two["dur"] <= outer["ts"] + outer["dur"] + 1
        assert trace["otherData"]["dropped_spans"] == 0
        json.dumps(trace)  # serialisable as-is

    def test_breakdown_accumulates_by_phase_key(self):
        tracer = Tracer()
        breakdown = {}
        for index in range(3):
            with tracer.span(f"sampling.interval[{index}]",
                             breakdown=breakdown):
                pass
        assert list(breakdown) == ["sampling.interval"]
        assert breakdown["sampling.interval"] >= 0.0

    def test_max_events_bound(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.export_chrome()["otherData"]["dropped_spans"] == 3


class TestPhaseBreakdown:
    def test_run_and_resultset_aggregation(self):
        from repro.experiment import ExperimentSpec

        telemetry.enable()
        try:
            session = Session(cache=False)
            rs = session.run(ExperimentSpec(
                workloads="copy", configs=tiny_config(), seeds=7,
                name="telemetry-breakdown"))
        finally:
            telemetry.disable()
        result = rs.only().result
        assert set(result.phase_breakdown) >= {"measure"}
        assert all(v >= 0.0 for v in result.phase_breakdown.values())
        totals = rs.phase_breakdown()
        assert totals  # aggregated across observations
        assert totals["measure"] >= result.phase_breakdown["measure"]

    def test_publish_run_result_populates_registry(self):
        telemetry.enable()
        try:
            result = Session(cache=False).run_one(
                tiny_config(), "copy", seed=7)
            telemetry.REGISTRY.reset()
            telemetry.publish_run_result(result, workload="copy",
                                         policy="baseline")
            snap = telemetry.REGISTRY.snapshot()
        finally:
            telemetry.disable()
        assert snap["repro_runs_total"]["copy,baseline"] == 1
        assert "repro_phase_seconds_total" in snap

    def test_phase_breakdown_survives_serialisation(self):
        from repro.experiment.serialize import result_from_dict, \
            result_to_dict

        telemetry.enable()
        try:
            result = Session(cache=False).run_one(
                tiny_config(), "copy", seed=7)
        finally:
            telemetry.disable()
        clone = result_from_dict(result_to_dict(result))
        assert clone.phase_breakdown == result.phase_breakdown


class _ScriptedClient(ServiceClient):
    """A client whose status() replays a fixed sequence of bodies."""

    def __init__(self, statuses):
        super().__init__("http://scripted.invalid", retries=0)
        self._statuses = list(statuses)

    def status(self, grid_id):
        if len(self._statuses) > 1:
            return dict(self._statuses.pop(0))
        return dict(self._statuses[0])


class TestWaitProgress:
    def test_on_progress_fires_only_on_change(self):
        client = _ScriptedClient([
            {"state": "queued", "done": 0, "unique_runs": 3},
            {"state": "running", "done": 0, "unique_runs": 3},
            {"state": "running", "done": 0, "unique_runs": 3},
            {"state": "running", "done": 1, "unique_runs": 3},
            {"state": "running", "done": 1, "unique_runs": 3},
            {"state": "running", "done": 1, "unique_runs": 3,
             "quarantined": 1},
            {"state": "done", "done": 3, "unique_runs": 3},
        ])
        seen = []
        status = client.wait("g1", timeout=10, poll=0.0,
                             on_progress=lambda s: seen.append(
                                 dict(s["progress"],
                                      state=s["state"])))
        assert status["state"] == "done"
        # 7 polls, but only 5 observed changes: first poll, queued ->
        # running, done 0 -> 1, quarantined 0 -> 1, running -> done.
        assert [(s["state"], s["completed"], s["quarantined"])
                for s in seen] == [
            ("queued", 0, 0), ("running", 0, 0), ("running", 1, 0),
            ("running", 1, 1), ("done", 3, 0)]
        assert all(s["total"] == 3 for s in seen)


class TestServiceIntrospection:
    def test_metrics_endpoint_prometheus_text(self, tmp_path):
        with _serve(tmp_path) as client:
            ticket = client.submit(_grid(), tenant="alice")
            client.wait(ticket["grid_id"], timeout=120, poll=0.02)
            text = client.metrics()
        samples = {}
        for line in text.splitlines():
            assert line.startswith("#") or _SAMPLE.match(line), line
            if not line.startswith("#"):
                key, value = line.rsplit(" ", 1)
                samples[key] = float(value)
        done = sum(v for k, v in samples.items()
                   if k.startswith("repro_jobs_transitions_total")
                   and 'to_state="done"' in k)
        assert done == 2
        for family in ("repro_queue_depth", "repro_worker_utilisation",
                       "repro_http_requests_total",
                       "repro_job_queue_wait_seconds_count",
                       "repro_store_events",
                       "repro_service_uptime_seconds"):
            assert any(k.startswith(family) for k in samples), family

    def test_stats_rates_and_queue_ages(self, tmp_path):
        with _serve(tmp_path) as client:
            ticket = client.submit(_grid(), tenant="alice")
            client.wait(ticket["grid_id"], timeout=120, poll=0.02)
            stats = client.stats()
        assert set(stats["rates"]) == \
            {"retry", "quarantine", "integrity"}
        assert stats["rates"]["quarantine"] == 0.0
        assert stats["workers"]["utilisation"] >= 0.0
        assert stats["workers"]["busy_seconds"] > 0.0
        assert "queue_ages" in stats

    def test_pending_jobs_carry_queue_age(self, tmp_path):
        # Workers never started: jobs stay PENDING and age visibly.
        with _serve(tmp_path, start_workers=False) as client:
            client.submit(_grid(), tenant="alice")
            listing = client.jobs("pending")
            stats = client.stats()
        jobs = listing["jobs"]
        assert len(jobs) == 2
        for job in jobs:
            assert job["enqueued_at"] > 0
            assert job["age"] >= 0.0
        ages = stats["queue_ages"]["alice"]
        assert ages["waiting"] == 2
        assert 0.0 <= ages["p50"] <= ages["p90"] <= ages["max"]


class TestLogs:
    def test_json_lines_formatter_carries_extras(self):
        formatter = JsonLinesFormatter()
        logger = logging.getLogger("repro.test.json")
        record = logger.makeRecord(
            "repro.test.json", logging.INFO, __file__, 1,
            "job %s moved", ("abc",), None,
            extra={"event": "job.transition", "tenant": "alice"})
        body = json.loads(formatter.format(record))
        assert body["message"] == "job abc moved"
        assert body["level"] == "INFO"
        assert body["event"] == "job.transition"
        assert body["tenant"] == "alice"

    def test_configure_logging_idempotent(self):
        root = logging.getLogger("repro")
        stream = StringIO()
        configure_logging(level="debug", stream=stream)
        configure_logging(level="debug", stream=stream)
        handlers = [h for h in root.handlers
                    if getattr(h, "_repro_handler", False)]
        assert len(handlers) == 1
        get_logger("unit").warning("hello %s", "there")
        assert "hello there" in stream.getvalue()

    def test_get_logger_prefix(self):
        assert get_logger("queue").name == "repro.queue"
        assert get_logger("repro.queue").name == "repro.queue"


class TestTraceCLI:
    def test_trace_command_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(["trace", "copy", "--instructions", "3000",
                   "--warmup", "1000", "--out", str(out), "--json"])
        assert rc == 0
        assert not telemetry.enabled()  # restored after the run
        summary = json.loads(capsys.readouterr().out)
        assert summary["coverage_pct"] >= 95.0
        assert summary["phase_breakdown"]
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"]}
        assert "run" in names and "measure" in names
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0

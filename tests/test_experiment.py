"""Experiment layer: spec expansion, hashing, caching, execution."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiment import (
    Axis,
    ExperimentSpec,
    ResultCache,
    RunSpec,
    Session,
    make_axis,
    result_from_dict,
    result_to_dict,
)
from repro.experiment import session as session_mod
from repro.sim.runner import compare_policies

from .conftest import tiny_config


class TestExpansion:
    def test_grid_size(self):
        spec = ExperimentSpec(workloads=["lbm", "copy"],
                              configs=tiny_config(),
                              policies=["baseline", "bard-h"],
                              seeds=[7, 11])
        plan = spec.expand()
        assert len(plan) == 8
        assert plan.unique_count == 8

    def test_coords_cover_all_axes(self):
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config(),
                              axes=[make_axis("wq", [32, 48])])
        plan = spec.expand()
        assert len(plan) == 2
        coords = plan.points[0].coords
        assert set(coords) == {"config", "workload", "policy", "seed", "wq"}
        assert [p.coords["wq"] for p in plan.points] == ["32", "48"]

    def test_axis_modifies_config(self):
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config(),
                              axes=[make_axis("wq", [32])])
        run = spec.expand().points[0].spec
        assert run.config.dram.wq_capacity == 32

    def test_scalar_arguments_normalised(self):
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config(),
                              policies="bard-h", seeds=3)
        assert spec.workloads == ("lbm",)
        assert spec.policies == ("bard-h",)
        assert spec.seeds == (3,)

    def test_named_config_variants(self):
        spec = ExperimentSpec(
            workloads="lbm",
            configs={"x4": tiny_config(),
                     "x8": tiny_config().with_device("x8")})
        plan = spec.expand()
        assert [p.coords["config"] for p in plan.points] == ["x4", "x8"]
        assert plan.unique_count == 2

    def test_duplicate_policies_deduplicated(self):
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config(),
                              policies=[None, "bard-h", "baseline"])
        plan = spec.expand()
        assert len(plan) == 2
        assert plan.unique_count == 2
        assert [p.coords["policy"] for p in plan.points] == [
            "baseline", "bard-h"]

    def test_overlapping_points_share_runs(self):
        # wq=48 equals the tiny config's stock queue only after with_wq
        # rewrites the watermarks, so overlap instead via two identical
        # named variants.
        spec = ExperimentSpec(
            workloads="lbm",
            configs={"a": tiny_config(), "b": tiny_config()})
        plan = spec.expand()
        assert len(plan) == 2
        assert plan.unique_count == 1
        assert plan.duplicate_count == 1

    def test_policy_inherited_from_config_by_default(self):
        spec = ExperimentSpec(workloads="lbm",
                              configs=tiny_config(llc_writeback="bard-h"))
        point = spec.expand().points[0]
        assert point.spec.config.llc_writeback == "bard-h"
        assert point.coords["policy"] == "bard-h"

    def test_explicit_policies_override_config(self):
        spec = ExperimentSpec(workloads="lbm",
                              configs=tiny_config(llc_writeback="bard-h"),
                              policies=["baseline"])
        point = spec.expand().points[0]
        assert point.spec.config.llc_writeback is None
        assert point.coords["policy"] == "baseline"

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workloads=[], configs=tiny_config())
        with pytest.raises(ConfigError):
            ExperimentSpec(workloads="lbm", configs=tiny_config(),
                           policies=[])

    def test_duplicate_axis_name_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workloads="lbm", configs=tiny_config(),
                           axes=[make_axis("wq", [32]),
                                 Axis("wq", "device", ("x4",))])

    def test_unknown_axis_setting_rejected(self):
        with pytest.raises(ConfigError):
            Axis("banks", "banks", ("8",))

    def test_flag_axis_sets_state_both_ways(self):
        # 'off' must clear a flag the base config enabled, and vice versa.
        spec = ExperimentSpec(workloads="lbm",
                              configs=tiny_config().with_refresh(),
                              axes=[make_axis("refresh", ["on", "off"])])
        plan = spec.expand()
        assert plan.unique_count == 2
        states = {p.coords["refresh"]: p.spec.config.dram.refresh
                  for p in plan.points}
        assert states == {"on": True, "off": False}
        pb = ExperimentSpec(workloads="lbm",
                            configs=tiny_config().without_pbpl(),
                            axes=[make_axis("pbpl", ["on"])])
        assert pb.expand().points[0].spec.config.dram.pbpl is True


class TestHashing:
    def test_same_spec_same_key(self):
        a = RunSpec("lbm", tiny_config(), seed=7)
        b = RunSpec("lbm", tiny_config(), seed=7)
        assert a.key() == b.key()

    def test_label_excluded_from_key(self):
        a = RunSpec("lbm", tiny_config(), label="x")
        b = RunSpec("lbm", tiny_config(), label="y")
        assert a.key() == b.key()

    def test_changed_field_changes_key(self):
        base = RunSpec("lbm", tiny_config(), seed=7)
        assert base.key() != RunSpec("lbm", tiny_config(), seed=8).key()
        assert base.key() != RunSpec("copy", tiny_config(), seed=7).key()
        assert base.key() != RunSpec(
            "lbm", tiny_config().with_device("x8"), seed=7).key()
        assert base.key() != RunSpec(
            "lbm", tiny_config(llc_writeback="bard-h"), seed=7).key()

    def test_spec_hash_stable_and_sensitive(self):
        def build(seeds=(7,)):
            return ExperimentSpec(workloads=["lbm"], configs=tiny_config(),
                                  seeds=seeds)
        assert build().hash() == build().hash()
        assert build().hash() != build(seeds=(8,)).hash()


class TestSerialization:
    def test_round_trip(self):
        session = Session(cache=False)
        result = session.run_one(tiny_config(llc_writeback="bard-h"),
                                 "lbm")
        payload = json.loads(json.dumps(result_to_dict(result)))
        back = result_from_dict(payload)
        assert back == result
        assert back.mean_ipc == result.mean_ipc
        assert back.dram.mean_blp == result.dram.mean_blp
        assert back.wb_stats == result.wb_stats

    def test_unknown_format_reads_as_none(self):
        assert result_from_dict({"format": 999, "result": {}}) is None
        assert result_from_dict("garbage") is None


class TestCache:
    def test_second_session_hits_cache(self, tmp_path):
        spec = ExperimentSpec(workloads=["lbm", "copy"],
                              configs=tiny_config())
        first = Session(cache_dir=tmp_path)
        rs1 = first.run(spec)
        assert first.stats.simulated == 2

        second = Session(cache_dir=tmp_path)
        rs2 = second.run(spec)
        assert second.stats.simulated == 0
        assert second.stats.disk_hits == 2
        assert [o.result for o in rs2] == [o.result for o in rs1]

    @pytest.mark.parametrize("garbage", [
        "{not json", "null", "[1, 2]", '{"payload": {"format": 1, '
        '"result": {"unexpected": true}}}'])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config())
        Session(cache_dir=tmp_path).run(spec)
        for path in tmp_path.glob("*.json"):
            path.write_text(garbage)
        again = Session(cache_dir=tmp_path)
        again.run(spec)
        assert again.stats.simulated == 1

    def test_unwritable_cache_dir_degrades_gracefully(self):
        session = Session(cache_dir="/proc/no-such-cache")
        rs = session.run(ExperimentSpec(workloads="lbm",
                                        configs=tiny_config()))
        assert session.stats.simulated == 1
        assert len(rs) == 1

    def test_cache_disabled_writes_nothing(self, tmp_path):
        session = Session(cache_dir=tmp_path, cache=False)
        session.run(ExperimentSpec(workloads="lbm",
                                   configs=tiny_config()))
        assert list(tmp_path.glob("*.json")) == []

    def test_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("lbm", tiny_config())
        assert spec.key() not in cache
        result = session_mod.simulate(spec)
        cache.put(spec.key(), spec, result)
        assert spec.key() in cache
        assert cache.get(spec.key()) == result

    def test_concurrent_writers_all_publish(self, tmp_path):
        """Many threads hammering one directory: every entry lands
        intact and no tmp files are left behind (the locking path)."""
        import threading

        cache = ResultCache(tmp_path)
        spec = RunSpec("lbm", tiny_config())
        result = session_mod.simulate(spec)
        keys = [f"{'%04x' % i}{'0' * 20}" for i in range(24)]

        def publish(key):
            for _ in range(5):
                cache.put(key, spec, result)

        threads = [threading.Thread(target=publish, args=(k,))
                   for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key in keys:
            assert cache.get(key) == result
        assert list(tmp_path.glob("*.tmp")) == []

    def test_put_retries_transient_failures(self, tmp_path,
                                            monkeypatch):
        import os as os_mod

        from repro.experiment import cache as cache_mod

        cache = ResultCache(tmp_path)
        spec = RunSpec("lbm", tiny_config())
        result = session_mod.simulate(spec)
        real_replace = os_mod.replace
        failures = iter([OSError("EIO"), OSError("EIO")])

        def flaky_replace(src, dst):
            try:
                raise next(failures)
            except StopIteration:
                return real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", flaky_replace)
        monkeypatch.setattr(cache_mod, "_RETRY_DELAY", 0.0)
        cache.put(spec.key(), spec, result)
        assert cache.get(spec.key()) == result


class TestExecution:
    def test_serial_and_parallel_identical(self):
        spec = ExperimentSpec(workloads=["lbm", "copy", "cf"],
                              configs=tiny_config())
        serial = Session(cache=False).run(spec)
        parallel = Session(cache=False, parallel=4).run(spec)
        for s, p in zip(serial, parallel):
            assert s.coords == p.coords
            assert s.result == p.result

    def test_memo_shared_across_calls(self):
        session = Session(cache=False)
        spec = ExperimentSpec(workloads="lbm", configs=tiny_config())
        session.run(spec)
        session.run(spec)
        assert session.stats.simulated == 1
        assert session.stats.memo_hits == 1

    def test_run_one_memoises_and_relabels(self):
        session = Session(cache=False)
        a = session.run_one(tiny_config(), "lbm", label="first")
        b = session.run_one(tiny_config(), "lbm", label="second")
        assert session.stats.simulated == 1
        assert a.label == "first" and b.label == "second"
        assert a.elapsed_ticks == b.elapsed_ticks

    def test_progress_callback(self):
        seen = []
        spec = ExperimentSpec(workloads=["lbm", "copy"],
                              configs=tiny_config())
        Session(cache=False).run(
            spec, progress=lambda done, total, rspec:
            seen.append((done, total, rspec.workload)))
        assert [s[:2] for s in seen] == [(1, 2), (2, 2)]


class TestComparePoliciesShim:
    def test_duplicate_baseline_runs_once(self, monkeypatch):
        calls = []
        real = session_mod.simulate

        def counting(spec):
            calls.append(spec.workload)
            return real(spec)

        monkeypatch.setattr(session_mod, "simulate", counting)
        comp = compare_policies(tiny_config(), "lbm",
                                [None, "bard-h", None])
        assert len(calls) == 2
        assert set(comp.results) == {"baseline", "bard-h"}
        assert comp.baseline == "baseline"

"""Clock-domain conversion constants."""

import pytest

from repro.clock import (
    NS_PER_TICK,
    TICKS_PER_CPU_CYCLE,
    TICKS_PER_DRAM_CYCLE,
    TICKS_PER_SECOND,
    cpu_cycles,
    dram_cycles,
    ticks_from_cpu,
    ticks_from_dram,
)


class TestClockDomains:
    def test_cpu_at_4ghz(self):
        assert TICKS_PER_SECOND / TICKS_PER_CPU_CYCLE == 4e9

    def test_dram_at_2_4ghz(self):
        assert TICKS_PER_SECOND / TICKS_PER_DRAM_CYCLE == pytest.approx(
            2.4e9)

    def test_both_domains_exact(self):
        """The tick base makes both clocks integral (no rounding drift)."""
        assert TICKS_PER_SECOND % (4 * 10**9 // TICKS_PER_CPU_CYCLE) != 1
        assert 4_000_000_000 * TICKS_PER_CPU_CYCLE == TICKS_PER_SECOND
        assert 2_400_000_000 * TICKS_PER_DRAM_CYCLE == TICKS_PER_SECOND

    def test_roundtrips(self):
        assert cpu_cycles(ticks_from_cpu(123)) == 123
        assert dram_cycles(ticks_from_dram(456)) == 456

    def test_ns_per_tick(self):
        assert NS_PER_TICK == pytest.approx(1 / 12)

    def test_cross_domain_ratio(self):
        """One DRAM cycle is exactly 5/3 CPU cycles."""
        assert ticks_from_dram(3) == ticks_from_cpu(5)

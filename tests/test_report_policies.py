"""Reports across all policy types (EW/VWQ also expose wb_stats)."""

import pytest

from repro.analysis.report import comparison_report
from repro.sim.runner import run_workload

from .conftest import tiny_config


@pytest.fixture(scope="module")
def base():
    return run_workload(tiny_config(), "lbm", label="baseline")


class TestReportsForPriorWork:
    def test_eager_report(self, base):
        ew = run_workload(tiny_config(llc_writeback="eager"), "lbm",
                          label="eager")
        text = comparison_report(base, ew, workload="lbm")
        assert "eager" in text
        assert "decisions" in text  # EW has wb_stats too

    def test_vwq_report(self, base):
        vwq = run_workload(tiny_config(llc_writeback="vwq"), "lbm",
                           label="vwq")
        text = comparison_report(base, vwq, workload="lbm")
        assert "vwq" in text

    def test_baseline_vs_baseline_zero_speedup(self, base):
        text = comparison_report(base, base, workload="lbm")
        assert "+0.00%" in text

    def test_no_accuracy_line_without_bard(self, base):
        ew = run_workload(tiny_config(llc_writeback="eager"), "lbm",
                          label="eager")
        text = comparison_report(base, ew, workload="lbm")
        assert "BLP-Tracker accuracy" not in text

    def test_accuracy_line_with_bard(self, base):
        bard = run_workload(tiny_config(llc_writeback="bard-h"), "lbm",
                            label="bard-h")
        text = comparison_report(base, bard, workload="lbm")
        assert "BLP-Tracker accuracy" in text

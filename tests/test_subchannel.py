"""Sub-channel scheduler: write-to-write spacing, drain episodes, BLP."""

from repro.dram.commands import MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.subchannel import BANKS_PER_SUBCHANNEL, SubChannel
from repro.dram.timing import ddr5_4800_x4

_M = ZenMapping()


def _addr_for(bg: int, bank: int, row: int = 0, col: int = 0,
              sc: int = 0) -> int:
    """Build an address hitting a specific sub-channel-0 bank (no PBPL)."""
    m = ZenMapping(pbpl=False)
    from repro.dram.commands import DramCoord

    return m.compose(DramCoord(0, sc, bg, bank, row, col))


def _wreq(addr, m=None):
    m = m or ZenMapping(pbpl=False)
    return MemRequest(addr=addr, op=Op.WRITE, coord=m.map(addr))


def _rreq(addr, cb=None, m=None):
    m = m or ZenMapping(pbpl=False)
    return MemRequest(addr=addr, op=Op.READ, coord=m.map(addr),
                      on_complete=cb)


def drain_sc(sc: SubChannel, limit: int = 100_000) -> int:
    """Drive ticks until the sub-channel idles; returns last cycle."""
    now = 0
    while True:
        nxt = sc.tick(now)
        if nxt is None:
            return now
        assert nxt > now or sc.idle, "scheduler must make progress"
        now = nxt
        assert now < limit, "sub-channel did not converge"


def make_sc(**kw) -> SubChannel:
    defaults = dict(rq_capacity=64, wq_capacity=48, wq_high=40, wq_low=8)
    defaults.update(kw)
    return SubChannel(ddr5_4800_x4(), **defaults)


class TestWriteSpacing:
    def _drain_two(self, addr_a, addr_b):
        sc = make_sc(wq_capacity=4, wq_high=2, wq_low=0)
        ra, rb = _wreq(addr_a), _wreq(addr_b)
        sc.enqueue_write(ra)
        sc.enqueue_write(rb)
        drain_sc(sc)
        return ra, rb, sc

    def test_different_bankgroup_writes_8_apart(self):
        ra, rb, _ = self._drain_two(_addr_for(0, 0), _addr_for(1, 0))
        assert abs(rb.burst_tick - ra.burst_tick) == 8

    def test_same_bankgroup_writes_48_apart(self):
        ra, rb, _ = self._drain_two(_addr_for(0, 0), _addr_for(0, 1))
        assert abs(rb.burst_tick - ra.burst_tick) == 48

    def test_same_bank_conflict_writes_188_apart(self):
        ra, rb, _ = self._drain_two(
            _addr_for(0, 0, row=0), _addr_for(0, 0, row=1))
        assert abs(rb.burst_tick - ra.burst_tick) == 188

    def test_same_bank_row_hit_writes_48_apart(self):
        """Row-buffer hits still pay the same-bankgroup delay (paper II-E)."""
        ra, rb, _ = self._drain_two(
            _addr_for(0, 0, row=0, col=0), _addr_for(0, 0, row=0, col=2))
        assert abs(rb.burst_tick - ra.burst_tick) == 48


class TestSchedulerPrefersLowLatency:
    def test_min_latency_write_first(self):
        """The drain scheduler picks the earliest-burst write, so a
        different-bankgroup write overtakes an older same-bank conflict."""
        sc = make_sc(wq_capacity=4, wq_high=3, wq_low=0)
        first = _wreq(_addr_for(0, 0, row=0))
        conflict = _wreq(_addr_for(0, 0, row=1))  # older, 188-cycle cost
        cheap = _wreq(_addr_for(1, 0, row=0))     # younger, 8-cycle cost
        for r in (first, conflict, cheap):
            sc.enqueue_write(r)
        drain_sc(sc)
        assert cheap.burst_tick < conflict.burst_tick


class TestDrainEpisodes:
    def test_waits_for_high_watermark(self):
        sc = make_sc()
        for i in range(39):
            sc.enqueue_write(_wreq(i * 64))
        drain_sc(sc)
        assert sc.stats.writes_issued == 0

    def test_drains_to_low_watermark(self):
        sc = make_sc()
        for i in range(40):
            sc.enqueue_write(_wreq(i * 64))
        drain_sc(sc)
        assert len(sc.wq) == 8
        assert sc.stats.writes_issued == 32

    def test_episode_recorded(self):
        sc = make_sc()
        for i in range(40):
            sc.enqueue_write(_wreq(i * 64))
        drain_sc(sc)
        sc.finalize(10_000)
        assert len(sc.stats.episodes) == 1
        ep = sc.stats.episodes[0]
        assert ep.writes == 32
        assert 1 <= ep.unique_banks <= BANKS_PER_SUBCHANNEL

    def test_blp_counts_unique_banks(self):
        sc = make_sc(wq_capacity=8, wq_high=4, wq_low=0)
        # Four writes, two per bank -> 2 unique banks.
        addrs = [_addr_for(0, 0, col=0), _addr_for(0, 0, col=2),
                 _addr_for(1, 0, col=0), _addr_for(1, 0, col=2)]
        for a in addrs:
            sc.enqueue_write(_wreq(a))
        drain_sc(sc)
        sc.finalize(100_000)
        assert sc.stats.episodes[0].unique_banks == 2

    def test_w2w_stats_recorded(self):
        sc = make_sc()
        for i in range(40):
            sc.enqueue_write(_wreq(i * 64))
        drain_sc(sc)
        assert sc.stats.w2w_delay_count == 31
        assert sc.stats.mean_w2w_ns > 0

    def test_drain_all_empties_queue(self):
        sc = make_sc()
        for i in range(20):
            sc.enqueue_write(_wreq(i * 64))
        sc.set_drain_all(True)
        drain_sc(sc)
        assert len(sc.wq) == 0


class TestIdealWrites:
    def test_ideal_writes_every_8_cycles(self):
        """Paper's idealised system: one write per 3.3 ns regardless of
        bank mapping."""
        sc = make_sc(ideal_writes=True, wq_capacity=8, wq_high=4, wq_low=0)
        same_bank = [_addr_for(0, 0, row=r) for r in range(4)]
        reqs = [_wreq(a) for a in same_bank]
        for r in reqs:
            sc.enqueue_write(r)
        drain_sc(sc)
        bursts = sorted(r.burst_tick for r in reqs)
        deltas = [b - a for a, b in zip(bursts, bursts[1:])]
        assert deltas == [8, 8, 8]


class TestReadPriority:
    def test_reads_serviced_before_watermark_writes(self):
        sc = make_sc()
        done = []
        for i in range(4):
            sc.enqueue_write(_wreq(i * 64))
        sc.enqueue_read(_rreq(1 << 13, cb=lambda t: done.append(t)))
        drain_sc(sc)
        assert sc.stats.reads_issued == 1
        assert sc.stats.writes_issued == 0
        assert done

    def test_row_hit_read_first(self):
        sc = make_sc()
        m = ZenMapping(pbpl=False)
        warm = _rreq(_addr_for(0, 0, row=0, col=0), m=m)
        sc.enqueue_read(warm)
        drain_sc(sc)
        # Bank 0 row 0 now open; a row-hit read should overtake an older
        # conflicting read... order in queue: conflict first, hit second.
        conflict = _rreq(_addr_for(0, 0, row=5), m=m)
        hit = _rreq(_addr_for(0, 0, row=0, col=4), m=m)
        sc.enqueue_read(conflict)
        sc.enqueue_read(hit)
        drain_sc(sc)
        assert hit.burst_tick < conflict.burst_tick


class TestTurnaround:
    def test_direction_switch_accounted(self):
        sc = make_sc(wq_capacity=4, wq_high=1, wq_low=0)
        sc.enqueue_read(_rreq(0))
        drain_sc(sc)
        sc.enqueue_write(_wreq(1 << 13))
        drain_sc(sc)
        assert sc.stats.turnaround_cycles >= sc.timing.turnaround

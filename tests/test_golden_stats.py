"""Golden-stats regression: the perf scenarios' results are pinned.

Every hot-path optimisation PR must leave simulation *results* untouched:
the engine refactor contract is "same events, same statistics, less host
time".  These tests replay one small run per perf scenario (the same
scenario definitions :mod:`repro.perf` times) and compare every counter
in the resulting :class:`~repro.sim.results.RunResult` against values
captured from the seed implementation (commit 74a1c56), stored in
``tests/data/golden_stats.json``.

If one of these tests fails, the change altered simulation behaviour -
either fix the regression or, if the behavioural change is intended and
reviewed, regenerate the goldens as described in ``docs/performance.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiment.session import Session
from repro.perf import SCENARIOS, scenario_config
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads.suites import trace_factory

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"

with open(GOLDEN_PATH) as _f:
    GOLDEN = json.load(_f)

_SCENARIOS_BY_NAME = {s.name: s for s in SCENARIOS}


def collect_stats(result: RunResult) -> dict:
    """Flatten the RunResult counters that the goldens pin.

    Integer counters compare exactly; per-core IPC is rounded to 12
    decimals (the division is deterministic given identical tick counts,
    the rounding only guards the JSON round-trip).
    """
    out = {
        "instructions": result.instructions,
        "elapsed_ticks": result.elapsed_ticks,
        "ipc": [round(x, 12) for x in result.ipc],
    }
    llc = result.llc
    for f in ("accesses", "hits", "misses", "read_misses", "write_misses",
              "prefetch_accesses", "prefetch_misses", "mshr_merges", "fills",
              "evictions", "dirty_evictions", "writebacks", "cleanses",
              "writeback_installs", "secondary_misses", "coalesced_words",
              "mshr_stalls", "mshr_stall_cycles", "prefetch_drops"):
        out[f"llc.{f}"] = getattr(llc, f)
    out["llc.mshr_occupancy_hist"] = list(llc.mshr_occupancy_hist)
    # Core-side issue stalls from MSHR-pipeline back-pressure (zero for
    # every legacy-regime scenario by construction).
    out["mshr_stall_cycles"] = result.mshr_stall_cycles
    dram = result.dram
    for f in ("reads_issued", "writes_issued", "read_row_hits",
              "read_row_conflicts", "write_row_hits", "write_row_conflicts",
              "activates", "precharges", "write_mode_cycles",
              "turnaround_cycles", "busy_cycles", "w2w_delay_sum",
              "w2w_delay_count", "w2w_delay_max"):
        out[f"dram.{f}"] = getattr(dram, f)
    out["dram.episodes"] = len(dram.episodes)
    out["dram.episode_banks"] = sum(e.unique_banks for e in dram.episodes)
    for i, ch in enumerate(result.channels):
        for f in ("reads_received", "writes_received", "forwarded_reads",
                  "staged_reads", "staged_writes", "read_latency_ticks",
                  "reads_completed"):
            out[f"ch{i}.{f}"] = getattr(ch, f)
    return out


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestGoldenStats:
    def test_matches_seed_implementation(self, name):
        golden = GOLDEN[name]
        scenario = _SCENARIOS_BY_NAME[name]
        assert scenario.workload == golden["workload"]
        assert scenario.preset == golden["preset"]
        config = scenario_config(scenario, golden=True)
        assert config.warmup_instructions == golden["warmup_instructions"]
        assert config.sim_instructions == golden["sim_instructions"]

        factory = trace_factory(scenario.workload, config,
                                seed=golden["seed"])
        system = System(config, factory)
        result = system.run(label=scenario.workload)

        got = collect_stats(result)
        want = golden["stats"]
        mismatched = {k: (want[k], got.get(k))
                      for k in want if got.get(k) != want[k]}
        assert not mismatched, (
            f"{name}: simulation results drifted from the seed "
            f"implementation: {mismatched}"
        )
        # The refactored engine also dispatches the exact same events.
        assert system.engine.events_fired == golden["events_fired"]
        # RunResult.events carries the same number out to the perf harness.
        assert result.events == golden["events_fired"]


def test_session_path_produces_identical_results():
    """The Session entry point (what the perf harness times) matches a
    direct System run for a golden scenario."""
    name = "write_stream"
    golden = GOLDEN[name]
    scenario = _SCENARIOS_BY_NAME[name]
    config = scenario_config(scenario, golden=True)
    result = Session(cache=False).run_one(config, scenario.workload,
                                          seed=golden["seed"])
    got = collect_stats(result)
    mismatched = {k: (golden["stats"][k], got.get(k))
                  for k in golden["stats"]
                  if got.get(k) != golden["stats"][k]}
    assert not mismatched

"""Statistical unit tests for :mod:`repro.sampling.stats`."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.sampling import (
    MetricEstimate,
    SamplingConfig,
    estimate,
    half_width,
    interval_starts,
    mean_ci,
    relative_error,
    summarize,
    z_value,
)


class TestZValue:
    def test_95_pct_quantile(self):
        assert z_value(0.95) == pytest.approx(1.95996, abs=1e-4)

    def test_99_pct_quantile(self):
        assert z_value(0.99) == pytest.approx(2.57583, abs=1e-4)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            z_value(1.0)
        with pytest.raises(ValueError):
            z_value(0.0)


class TestMeanCI:
    def test_known_values(self):
        # mean 2, sample stdev 1, n=4 -> hw = 1.96 * 1/2
        m, lo, hi = mean_ci([1.0, 2.0, 2.0, 3.0], confidence=0.95)
        assert m == pytest.approx(2.0)
        s = math.sqrt(2.0 / 3.0)
        hw = 1.959964 * s / 2.0
        assert hi - m == pytest.approx(hw, rel=1e-4)
        assert m - lo == pytest.approx(hw, rel=1e-4)

    def test_single_value_degenerate(self):
        m, lo, hi = mean_ci([3.5])
        assert (m, lo, hi) == (3.5, 3.5, 3.5)

    def test_constant_sample_zero_width(self):
        assert half_width([2.0] * 10) == 0.0

    def test_ci_width_shrinks_as_inverse_sqrt_n(self):
        # Replicating a sample k-fold keeps the stdev (nearly) fixed and
        # multiplies n by k, so the half-width must shrink ~ 1/sqrt(k).
        rng = random.Random(17)
        base = [rng.gauss(10.0, 2.0) for _ in range(50)]
        hw1 = half_width(base)
        hw4 = half_width(base * 4)
        assert hw4 == pytest.approx(hw1 / 2.0, rel=0.02)
        hw16 = half_width(base * 16)
        assert hw16 == pytest.approx(hw1 / 4.0, rel=0.02)

    def test_higher_confidence_widens(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert half_width(values, 0.99) > half_width(values, 0.95) \
            > half_width(values, 0.68)


class TestRelativeError:
    def test_matches_half_width_over_mean(self):
        values = [9.0, 10.0, 11.0, 10.0]
        rel = relative_error(values)
        assert rel == pytest.approx(half_width(values) / 10.0)

    def test_zero_mean_nonzero_spread_is_inf(self):
        assert relative_error([-1.0, 1.0]) == math.inf

    def test_constant_sample_is_zero(self):
        assert relative_error([5.0, 5.0, 5.0]) == 0.0


class TestEstimate:
    def test_estimate_fields(self):
        est = estimate([1.0, 2.0, 3.0], confidence=0.95)
        assert isinstance(est, MetricEstimate)
        assert est.n == 3
        assert est.mean == pytest.approx(2.0)
        assert est.ci_lo < est.mean < est.ci_hi
        assert est.half_width == pytest.approx(
            (est.ci_hi - est.ci_lo) / 2.0)

    def test_summarize_keys(self):
        summary = summarize({"a": [1.0, 2.0], "b": [3.0, 3.0]})
        assert set(summary) == {"a", "b"}
        assert summary["b"].stdev == 0.0


class TestIntervalStarts:
    def test_periodic_placement(self):
        cfg = SamplingConfig(intervals=4, interval_instructions=100)
        starts = interval_starts(cfg, 4_000)
        assert [next(starts) for _ in range(4)] == [0, 1000, 2000, 3000]

    def test_explicit_period(self):
        cfg = SamplingConfig(intervals=3, interval_instructions=100,
                             period_instructions=500)
        starts = interval_starts(cfg, 10_000)
        assert [next(starts) for _ in range(3)] == [0, 500, 1000]

    def test_random_deterministic_in_seed(self):
        cfg = SamplingConfig(intervals=5, interval_instructions=100,
                             scheme="random", scheme_seed=11)
        a = [next(interval_starts(cfg, 10_000)) for _ in range(1)]
        first = interval_starts(cfg, 10_000)
        second = interval_starts(cfg, 10_000)
        assert [next(first) for _ in range(5)] == \
            [next(second) for _ in range(5)]
        assert a[0] == next(interval_starts(cfg, 10_000))

    def test_random_seeds_differ(self):
        def starts(seed):
            cfg = SamplingConfig(intervals=5, interval_instructions=100,
                                 scheme="random", scheme_seed=seed)
            it = interval_starts(cfg, 10_000)
            return [next(it) for _ in range(5)]

        assert starts(1) != starts(2)

    def test_random_stays_inside_windows(self):
        cfg = SamplingConfig(intervals=8, interval_instructions=250,
                             scheme="random", scheme_seed=3)
        it = interval_starts(cfg, 8_000)
        period = 1000
        for i in range(8):
            start = next(it)
            assert i * period <= start <= (i + 1) * period - 250

    def test_plan_must_fit(self):
        cfg = SamplingConfig(intervals=10, interval_instructions=500)
        with pytest.raises(ConfigError):
            cfg.resolve_period(4_000)  # period 400 < interval 500

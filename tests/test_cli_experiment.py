"""CLI over the experiment layer: sweep, JSON output, cache/parallel flags."""

import json

import pytest

from repro.cli import main
from repro.experiment import session as session_mod

from .conftest import tiny_config


@pytest.fixture(autouse=True)
def _tiny_preset(monkeypatch):
    import repro.cli as cli

    monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)


@pytest.fixture
def counted(monkeypatch):
    calls = []
    real = session_mod.simulate

    def counting(spec):
        calls.append(spec)
        return real(spec)

    monkeypatch.setattr(session_mod, "simulate", counting)
    return calls


class TestSweep:
    def test_wq_axis_table(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "wq" in out and "mean_ipc" in out
        assert "32" in out and "48" in out

    def test_policy_axis_with_speedups(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "policy=baseline,bard-h",
                     "--speedup-vs", "policy", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "speedup_pct" in out and "bard-h" in out

    def test_json_records(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48",
                     "--metrics", "mean_ipc", "--json",
                     "--no-cache"]) == 0
        data = json.loads(capsys.readouterr().out)
        records = data["records"]
        assert len(records) == 2
        assert {r["wq"] for r in records} == {"32", "48"}
        assert all("mean_ipc" in r for r in records)
        # The session's accounting rides along for scripted consumers.
        assert data["stats"]["simulated"] == 2
        assert data["stats"]["unique"] == 2

    def test_bad_axis_is_an_error(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "voltage=1,2", "--no-cache"]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_malformed_axis_is_an_error(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq", "--no-cache"]) == 2

    def test_repeated_axis_is_an_error(self, capsys, counted):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "policy=baseline",
                     "--axis", "policy=bard-h", "--no-cache"]) == 2
        assert "duplicate --axis" in capsys.readouterr().err
        assert counted == []

    def test_unknown_metric_fails_before_simulating(self, capsys,
                                                    counted):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48", "--metrics", "mean_ip",
                     "--no-cache"]) == 2
        assert "unknown metric" in capsys.readouterr().err
        assert counted == []

    def test_speedup_vs_missing_axis_fails_before_simulating(
            self, capsys, counted):
        assert main(["sweep", "--workloads", "copy",
                     "--speedup-vs", "policy", "--no-cache"]) == 2
        assert "speedup-vs" in capsys.readouterr().err
        assert counted == []

    def test_structured_field_metric_fails_before_simulating(
            self, capsys, counted):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48", "--metrics", "llc",
                     "--json", "--no-cache"]) == 2
        assert "unknown metric" in capsys.readouterr().err
        assert counted == []

    def test_relative_metric_needs_speedup_vs(self, capsys, counted):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48",
                     "--metrics", "weighted_speedup",
                     "--no-cache"]) == 2
        assert "--speedup-vs" in capsys.readouterr().err
        assert counted == []

    def test_explicit_speedup_pct_metric_not_duplicated(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "policy=baseline,bard-h",
                     "--metrics", "speedup_pct",
                     "--speedup-vs", "policy", "--json",
                     "--no-cache"]) == 0
        records = json.loads(capsys.readouterr().out)["records"]
        assert all(list(r).count("speedup_pct") == 1 for r in records)

    def test_seed_option_reaches_sweep(self, capsys, counted):
        assert main(["sweep", "--workloads", "copy", "--seed", "11",
                     "--no-cache"]) == 0
        assert counted[0].seed == 11

    def test_zero_instructions_rejected(self, capsys):
        assert main(["run", "copy", "--instructions", "0",
                     "--no-cache"]) == 2
        assert "--instructions" in capsys.readouterr().err


class TestCacheAndParallel:
    def test_run_hits_cache_second_time(self, capsys, tmp_path, counted):
        argv = ["run", "copy", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv) == 0
        assert len(counted) == 1

    def test_compare_dedupes_listed_baseline(self, capsys, counted):
        assert main(["compare", "copy", "--policies", "bard-h",
                     "baseline", "--no-cache"]) == 0
        assert len(counted) == 2
        assert capsys.readouterr().out.count("weighted speedup") == 1

    def test_parallel_flag(self, capsys):
        assert main(["characterize", "copy", "whiskey",
                     "--parallel", "2", "--no-cache"]) == 0
        assert "whiskey" in capsys.readouterr().out

    def test_run_json(self, capsys):
        assert main(["run", "copy", "--json", "--no-cache"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["records"][0]["workload"] == "copy"
        assert data["stats"]["planned"] == 1

    def test_json_stats_show_cache_hits(self, capsys, tmp_path):
        argv = ["run", "copy", "--json", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["simulated"] == 1
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["stats"]["disk_hits"] == 1
        assert second["stats"]["simulated"] == 0
        assert first["records"] == second["records"]

    def test_parallel_zero_means_all_cores(self, capsys, counted):
        assert main(["run", "copy", "--parallel", "0",
                     "--no-cache"]) == 0
        assert len(counted) == 1

    def test_negative_parallel_rejected(self, capsys):
        assert main(["run", "copy", "--parallel", "-2",
                     "--no-cache"]) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_run_policy_reaches_simulation(self, capsys, counted):
        assert main(["run", "copy", "--policy", "bard-h",
                     "--no-cache"]) == 0
        assert counted[0].config.llc_writeback == "bard-h"

    def test_speedup_vs_without_baseline_is_an_error(self, capsys):
        assert main(["sweep", "--workloads", "copy",
                     "--axis", "wq=32,48", "--speedup-vs", "wq",
                     "--no-cache"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_instruction_override(self, capsys, counted):
        assert main(["run", "copy", "--instructions", "2000",
                     "--warmup", "500", "--no-cache"]) == 0
        spec = counted[0]
        assert spec.config.sim_instructions == 2000
        assert spec.config.warmup_instructions == 500


class TestListAxes:
    def test_list_shows_axes(self, capsys):
        assert main(["list"]) == 0
        assert "axes:" in capsys.readouterr().out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "wq" in data["axes"]

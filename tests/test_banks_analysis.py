"""Per-bank traffic distribution analysis."""

import pytest

from repro.analysis.banks import (
    distribution,
    read_distribution,
    write_distribution,
)
from repro.sim.system import System
from repro.workloads import trace_factory

from .conftest import tiny_config


class TestDistribution:
    def test_even_counts(self):
        d = distribution([5] * 32)
        assert d.banks_used == 32
        assert d.imbalance == pytest.approx(0.0, abs=1e-9)
        assert d.max_share == pytest.approx(1 / 32)

    def test_fully_concentrated(self):
        d = distribution([100] + [0] * 31)
        assert d.banks_used == 1
        assert d.max_share == 1.0
        assert d.imbalance > 0.9

    def test_empty(self):
        d = distribution([0] * 32)
        assert d.total == 0
        assert d.imbalance == 0.0
        assert d.mean == 0.0

    def test_gini_monotone_in_concentration(self):
        even = distribution([4, 4, 4, 4])
        skew = distribution([13, 1, 1, 1])
        assert skew.imbalance > even.imbalance


class TestSystemDistributions:
    @pytest.fixture(scope="class")
    def ran_system(self):
        cfg = tiny_config(warmup_instructions=2_000,
                          sim_instructions=10_000)
        system = System(cfg, trace_factory("lbm", cfg))
        system.run()
        return system

    def test_one_distribution_per_subchannel(self, ran_system):
        dists = write_distribution(ran_system)
        assert len(dists) == 2  # one channel, two sub-channels

    def test_writes_spread_over_banks(self, ran_system):
        for d in write_distribution(ran_system):
            if d.total:
                assert d.banks_used > 8

    def test_reads_counted_separately(self, ran_system):
        reads = read_distribution(ran_system)
        writes = write_distribution(ran_system)
        assert sum(d.total for d in reads) > 0
        assert sum(d.total for d in reads) != sum(d.total for d in writes)

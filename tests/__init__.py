"""Test package: lets modules share fixtures via ``from .conftest import``."""

"""Workload generators and named suites (paper Tables III/IV)."""

import pytest

from repro.config.presets import small_8core
from repro.cpu.trace import LOAD, NONMEM, STORE, take, validate_record
from repro.errors import ConfigError
from repro.workloads import (
    ALL_WORKLOADS,
    MIXES,
    QUICK_WORKLOADS,
    WORKLOADS,
    trace_factory,
    workload_names,
)
from repro.workloads.synthetic import (
    blend_trace,
    graph_trace,
    server_trace,
    stream_trace,
)


class TestGeneratorsProduceValidRecords:
    @pytest.mark.parametrize("gen", [
        stream_trace(1, 0, 1 << 16),
        graph_trace(1, 0, 1 << 16),
        blend_trace(1, 0, 1 << 16),
        server_trace(1, 0, 1 << 16),
    ])
    def test_records_valid(self, gen):
        for rec in take(gen, 500):
            validate_record(rec)


class TestDeterminism:
    @pytest.mark.parametrize("maker", [
        lambda s: graph_trace(s, 0, 1 << 16),
        lambda s: blend_trace(s, 0, 1 << 16),
        lambda s: server_trace(s, 0, 1 << 16),
    ])
    def test_same_seed_same_trace(self, maker):
        assert take(maker(42), 300) == take(maker(42), 300)

    def test_different_seeds_differ(self):
        a = take(graph_trace(1, 0, 1 << 16), 300)
        b = take(graph_trace(2, 0, 1 << 16), 300)
        assert a != b

    def test_stream_is_seed_independent(self):
        a = take(stream_trace(1, 0, 1 << 16), 100)
        b = take(stream_trace(9, 0, 1 << 16), 100)
        assert a == b


class TestStreamKernels:
    def test_copy_shape(self):
        recs = take(stream_trace(0, 0, 1 << 16, loads_per_iter=1,
                                 stores_per_iter=1, nonmem_per_iter=2), 400)
        loads = sum(1 for k, _, _ in recs if k == LOAD)
        stores = sum(1 for k, _, _ in recs if k == STORE)
        assert loads == stores  # copy: one load per store

    def test_sequential_addresses(self):
        recs = take(stream_trace(0, 0, 1 << 16), 40)
        loads = [a for k, a, _ in recs if k == LOAD]
        deltas = {b - a for a, b in zip(loads, loads[1:])}
        assert deltas == {8}

    def test_arrays_disjoint(self):
        recs = take(stream_trace(0, 0, 1 << 14), 400)
        load_addrs = {a for k, a, _ in recs if k == LOAD}
        store_addrs = {a for k, a, _ in recs if k == STORE}
        assert not load_addrs & store_addrs


class TestGraphGenerator:
    def test_store_prob_controls_stores(self):
        low = take(graph_trace(1, 0, 1 << 16, store_prob=0.05), 2000)
        high = take(graph_trace(1, 0, 1 << 16, store_prob=0.6), 2000)
        count = lambda recs: sum(1 for k, _, _ in recs if k == STORE)
        assert count(high) > 3 * count(low)

    def test_stores_target_vertices_only(self):
        recs = take(graph_trace(1, 0, 1 << 14), 2000)
        loads = {a for k, a, _ in recs if k == LOAD}
        for k, a, _ in recs:
            if k == STORE:
                assert a in loads  # stores update previously read vertices


class TestServerGenerator:
    def test_zipf_skew(self):
        """Hot objects dominate: top addresses see far more traffic."""
        recs = take(server_trace(1, 0, 1 << 18), 4000)
        from collections import Counter
        counts = Counter(a // 256 for k, a, _ in recs if k != NONMEM)
        top = sum(c for _, c in counts.most_common(10))
        assert top > 0.2 * sum(counts.values())


class TestSuites:
    def test_23_single_workloads(self):
        assert len(WORKLOADS) == 23

    def test_six_mixes_match_table_iii(self):
        assert len(MIXES) == 6
        assert MIXES["mix0"] == ["cam4", "omnetpp", "lbm", "cf",
                                 "mis", "whiskey", "merced", "delta"]
        for parts in MIXES.values():
            assert len(parts) == 8
            assert all(p in WORKLOADS for p in parts)

    def test_all_workloads_ordering(self):
        assert len(ALL_WORKLOADS) == 29
        assert ALL_WORKLOADS[-6:] == [f"mix{i}" for i in range(6)]

    def test_quick_subset_is_subset(self):
        assert set(QUICK_WORKLOADS) <= set(ALL_WORKLOADS)

    def test_workload_names_scales(self):
        assert list(workload_names("full")) == ALL_WORKLOADS
        assert list(workload_names("quick")) == QUICK_WORKLOADS

    def test_paper_refs_attached(self):
        for spec in WORKLOADS.values():
            assert spec.paper.mpki > 0
            assert spec.paper.wpki > 2.5 or spec.name == "roms"

    def test_wpki_threshold(self):
        """Paper selects workloads with WPKI > 2.5."""
        for spec in WORKLOADS.values():
            assert spec.paper.wpki >= 2.5


class TestTraceFactory:
    def test_ratemode_disjoint_address_spaces(self):
        cfg = small_8core()
        factory = trace_factory("lbm", cfg)
        a = {a for k, a, _ in take(factory(0), 500) if k != NONMEM}
        b = {a for k, a, _ in take(factory(1), 500) if k != NONMEM}
        assert not a & b

    def test_mix_assigns_constituents(self):
        cfg = small_8core()
        factory = trace_factory("mix0", cfg)
        for core in range(8):
            recs = take(factory(core), 100)
            assert recs  # each core gets a live generator

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            trace_factory("doom", small_8core())

    def test_factory_deterministic(self):
        cfg = small_8core()
        a = take(trace_factory("cf", cfg, seed=3)(0), 200)
        b = take(trace_factory("cf", cfg, seed=3)(0), 200)
        assert a == b

"""Calibration probes for the synthetic workload generators."""

import pytest

from repro.config.presets import small_8core
from repro.workloads.suites import WORKLOADS
from repro.workloads.synthetic import graph_trace, stream_trace
from repro.workloads.validation import profile_suite, profile_trace


class TestProfileTrace:
    def test_stream_profile(self):
        p = profile_trace(stream_trace(0, 0, 1 << 16), count=4000)
        assert p.records == 4000
        # copy: 1 load + 1 store per 4 instructions.
        assert p.mem_fraction == pytest.approx(0.5, abs=0.05)
        assert p.store_fraction == pytest.approx(0.5, abs=0.05)

    def test_graph_spreads_over_banks(self):
        p = profile_trace(graph_trace(1, 0, 1 << 20), count=8000)
        assert p.unique_banks >= 32  # both sub-channels used

    def test_footprint_positive(self):
        p = profile_trace(stream_trace(0, 0, 1 << 16), count=1000)
        assert p.footprint_bytes > 1 << 16  # two arrays plus gap

    def test_truncated_source(self):
        p = profile_trace(iter([(0, 0, 4)] * 10), count=100)
        assert p.records == 10
        assert p.mem_fraction == 0.0
        assert p.footprint_bytes == 0


class TestSuiteCalibration:
    """Every named workload must be in its intended first-order band."""

    @pytest.fixture(scope="class")
    def profiles(self):
        return profile_suite(small_8core(), count=12_000)

    def test_all_workloads_profiled(self, profiles):
        assert set(profiles) == set(WORKLOADS)

    def test_memory_intensity_band(self, profiles):
        for name, p in profiles.items():
            assert 0.15 <= p.mem_fraction <= 0.7, (
                f"{name}: mem fraction {p.mem_fraction:.2f} out of band")

    def test_every_workload_stores(self, profiles):
        """Paper selects WPKI > 2.5 workloads: all must write."""
        for name, p in profiles.items():
            assert p.store_fraction > 0.02, f"{name}: too few stores"

    def test_bank_coverage(self, profiles):
        for name, p in profiles.items():
            assert p.unique_banks >= 16, (
                f"{name}: touches only {p.unique_banks} banks")

    def test_working_sets_exceed_llc(self, profiles):
        """Working sets must pressure the LLC or no writebacks occur."""
        llc = small_8core().llc.size_bytes
        for name, p in profiles.items():
            assert p.footprint_bytes > llc, (
                f"{name}: footprint smaller than the LLC")

"""Prefetcher integration with the cache: filtering and timeliness."""

from repro.cache.cache import Cache
from repro.cache.replacement import LRUPolicy
from repro.prefetch.berti import BertiPrefetcher
from repro.sim.engine import Engine


class CountingLower:
    def __init__(self, engine, delay=3000):
        self.engine = engine
        self.delay = delay
        self.reads = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.reads.append((line_addr, is_prefetch))
        self.engine.schedule(now + self.delay,
                             lambda: on_done(now + self.delay))

    def writeback(self, line_addr, now):
        pass


def make_cache(engine, lower, prefetcher=None, sets=64, ways=4):
    return Cache("l1d", sets * ways * 64, ways, 2, 16,
                 LRUPolicy(sets, ways), engine, lower,
                 prefetcher=prefetcher)


class TestPrefetchFiltering:
    def test_resident_lines_not_prefetched(self):
        engine = Engine()
        lower = CountingLower(engine, delay=3)
        cache = make_cache(engine, lower, BertiPrefetcher(degree=1))
        # Touch the same two lines repeatedly with zero stride variance:
        # nothing should be prefetched once resident.
        for _ in range(10):
            cache.access(0, False, 0x40, engine.now, None)
            engine.run()
        prefetch_reads = [r for r in lower.reads if r[1]]
        assert prefetch_reads == []

    def test_stride_stream_prefetches_ahead(self):
        engine = Engine()
        lower = CountingLower(engine, delay=3)
        cache = make_cache(engine, lower, BertiPrefetcher(degree=2))
        pc = 0x40
        for i in range(12):
            cache.access(i * 64, False, pc, engine.now, None)
            engine.run()
        prefetch_reads = [la for la, pf in lower.reads if pf]
        assert prefetch_reads, "stride stream must trigger prefetches"
        demand_lines = set(range(12))
        assert any(la // 64 not in demand_lines or la // 64 > 6
                   for la in prefetch_reads)

    def test_prefetch_hit_hides_latency(self):
        """A demand access to a prefetched line completes at hit latency
        even though DRAM is slow."""
        engine = Engine()
        lower = CountingLower(engine, delay=9000)
        cache = make_cache(engine, lower, BertiPrefetcher(degree=4))
        pc = 0x40
        # Train and stream far enough that prefetches land.
        for i in range(6):
            cache.access(i * 64, False, pc, engine.now, None)
            engine.run()
        # The prefetcher has requested beyond line 5; those fills landed
        # (engine drained).  A demand access on line 6/7 should now hit.
        hits_before = cache.stats.hits
        cache.access(6 * 64, False, pc, engine.now, None)
        engine.run()
        assert cache.stats.hits == hits_before + 1

    def test_prefetches_never_recurse(self):
        """Prefetch-initiated accesses must not invoke the prefetcher."""

        class RecursionGuard(BertiPrefetcher):
            def __init__(self):
                super().__init__(degree=1)
                self.calls = []

            def on_access(self, addr, pc, hit):
                self.calls.append(addr)
                return super().on_access(addr, pc, hit)

        engine = Engine()
        lower = CountingLower(engine, delay=3)
        guard = RecursionGuard()
        cache = make_cache(engine, lower, guard)
        for i in range(8):
            cache.access(i * 64, False, 0x40, engine.now, None)
            engine.run()
        # Every prefetcher invocation corresponds to a demand access.
        assert len(guard.calls) == cache.stats.demand_accesses

"""Property-based invariants on the core data structures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.replacement import make_replacement
from repro.core.bard import make_bard
from repro.dram.commands import LINE_SIZE, MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.subchannel import SubChannel
from repro.dram.timing import ddr5_4800_x4
from repro.sim.engine import Engine

MAPPING = ZenMapping()

# One cache operation: (op_kind, address_slot, write?)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["access", "writeback"]),
        st.integers(min_value=0, max_value=63),
        st.booleans(),
    ),
    max_size=120,
)


class AutoLower:
    def __init__(self, engine):
        self.engine = engine
        self.writebacks = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.engine.schedule(now + 9, lambda: on_done(now + 9))

    def writeback(self, line_addr, now):
        self.writebacks.append(line_addr)


def _check_no_duplicate_lines(cache):
    seen = set()
    for cset in cache.sets:
        for line in cset.lines:
            if line.valid:
                assert line.line_addr not in seen, "duplicate resident line"
                seen.add(line.line_addr)
                assert cache.set_index(line.line_addr) == (
                    cache.sets.index(cset))


class TestCacheInvariants:
    @settings(max_examples=60, deadline=None)
    @given(_ops, st.sampled_from(["lru", "srrip", "ship"]))
    def test_no_duplicate_lines_any_policy(self, ops, policy):
        engine = Engine()
        lower = AutoLower(engine)
        cache = Cache("c", 4 * 4 * 64, 4, 1, 4,
                      make_replacement(policy, 4, 4), engine, lower)
        for kind, slot, is_write in ops:
            addr = slot << 19  # spread over rows/banks, few sets
            if kind == "access":
                cache.access(addr, is_write, slot * 4 + 1, engine.now, None)
            else:
                cache.writeback(addr, engine.now)
            engine.run()
        _check_no_duplicate_lines(cache)

    @settings(max_examples=40, deadline=None)
    @given(_ops)
    def test_no_duplicates_under_bard(self, ops):
        engine = Engine()
        lower = AutoLower(engine)
        policy = make_bard("bard-h", MAPPING)
        cache = Cache("llc", 4 * 4 * 64, 4, 1, 4,
                      make_replacement("lru", 4, 4), engine, lower,
                      writeback_policy=policy)
        for kind, slot, is_write in ops:
            addr = slot << 19
            if kind == "access":
                cache.access(addr, is_write, slot * 4 + 1, engine.now, None)
            else:
                cache.writeback(addr, engine.now)
            engine.run()
        _check_no_duplicate_lines(cache)
        # Every DRAM writeback must have marked the tracker at some point.
        assert policy.tracker.stats.broadcasts == len(lower.writebacks)

    @settings(max_examples=40, deadline=None)
    @given(_ops)
    def test_dirty_lines_accounted(self, ops):
        """writebacks issued + dirty resident == total distinct dirtyings."""
        engine = Engine()
        lower = AutoLower(engine)
        cache = Cache("c", 4 * 4 * 64, 4, 1, 4,
                      make_replacement("lru", 4, 4), engine, lower)
        for kind, slot, is_write in ops:
            addr = slot << 19
            if kind == "access":
                cache.access(addr, is_write, 1, engine.now, None)
            else:
                cache.writeback(addr, engine.now)
            engine.run()
        resident_dirty = sum(
            1 for cset in cache.sets for line in cset.lines
            if line.valid and line.dirty
        )
        assert cache.stats.writebacks == len(lower.writebacks)
        assert cache.stats.dirty_evictions <= cache.stats.evictions


class TestSubChannelInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2000), min_size=1,
                    max_size=80))
    def test_bursts_never_overlap(self, slots):
        """Issued data bursts are disjoint 8-cycle bus reservations."""
        sc = SubChannel(ddr5_4800_x4(), wq_capacity=96, wq_high=4, wq_low=0)
        reqs = []
        for slot in slots:
            addr = slot * LINE_SIZE * 2  # keep everything on subchannel 0
            coord = MAPPING.map(addr)
            if coord.subchannel != 0:
                continue
            r = MemRequest(addr=addr, op=Op.WRITE, coord=coord)
            if sc.enqueue_write(r):
                reqs.append(r)
        now = 0
        for _ in range(10_000):
            nxt = sc.tick(now)
            if nxt is None:
                break
            now = max(nxt, now + 1)
        issued = sorted(r.burst_tick for r in reqs if r.burst_tick
                        is not None)
        for a, b in zip(issued, issued[1:]):
            assert b - a >= 8, "bursts overlap on the bus"

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4000), min_size=40,
                    max_size=80))
    def test_episode_blp_bounded_by_writes(self, slots):
        sc = SubChannel(ddr5_4800_x4())
        for slot in slots:
            addr = slot * LINE_SIZE * 2
            coord = MAPPING.map(addr)
            if coord.subchannel != 0:
                continue
            sc.enqueue_write(MemRequest(addr=addr, op=Op.WRITE,
                                        coord=coord))
        now = 0
        for _ in range(10_000):
            nxt = sc.tick(now)
            if nxt is None:
                break
            now = max(nxt, now + 1)
        sc.finalize(now)
        for ep in sc.stats.episodes:
            assert 1 <= ep.unique_banks <= min(ep.writes, 32)
            assert ep.duration > 0

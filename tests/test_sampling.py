"""Sampled simulation subsystem: config, run loop, experiment plumbing."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.experiment import ExperimentSpec, Session
from repro.experiment.spec import RunSpec, make_axis
from repro.sampling import SamplingConfig
from repro.sim.system import System
from repro.workloads.suites import trace_factory

from .conftest import tiny_config


def sampled_tiny(sampling=None, **overrides):
    cfg = tiny_config(warmup_mode="functional", **overrides)
    return cfg.with_sampling(sampling or SamplingConfig(
        intervals=4, interval_instructions=400,
        warm_instructions=300, detailed_warm_instructions=200))


def run_system(cfg, workload="copy", seed=7):
    return System(cfg, trace_factory(workload, cfg, seed=seed)).run()


class TestConfigValidation:
    def test_requires_functional_warmup(self):
        with pytest.raises(ConfigError, match="functional"):
            tiny_config().with_sampling(SamplingConfig())

    def test_zero_warmup_still_requires_functional_mode(self):
        with pytest.raises(ConfigError):
            tiny_config(warmup_instructions=0).with_sampling(
                SamplingConfig())

    @pytest.mark.parametrize("kwargs", [
        dict(intervals=0),
        dict(interval_instructions=0),
        dict(interval_instructions=-5),
        dict(period_instructions=10, interval_instructions=100),
        dict(warm_instructions=-1),
        dict(detailed_warm_instructions=-1),
        dict(scheme="stratified"),
        dict(confidence=0.0),
        dict(confidence=1.5),
        dict(target_relative_error=0.0),
        dict(intervals=8, max_intervals=4),
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingConfig(**kwargs)

    def test_with_intervals_raises_cap(self):
        cfg = SamplingConfig(intervals=4, max_intervals=8)
        assert cfg.with_intervals(32).max_intervals == 32


class TestGoldenEquivalence:
    def test_one_interval_covering_epoch_equals_full_run(self):
        """A 1-interval sample over the whole epoch is the full run."""
        full_cfg = tiny_config(warmup_mode="functional")
        full = run_system(full_cfg)
        sampled_cfg = full_cfg.with_sampling(SamplingConfig(
            intervals=1,
            interval_instructions=full_cfg.sim_instructions,
            warm_instructions=0, detailed_warm_instructions=0))
        sampled = run_system(sampled_cfg)
        want = dataclasses.asdict(full)
        have = dataclasses.asdict(sampled)
        assert want.pop("sampling") is None
        assert have.pop("sampling") is not None
        assert have == want

    def test_one_interval_equals_full_run_with_mshr_pipeline(self):
        """The equivalence survives the MSHR pipeline: interval
        boundaries drain the pipeline's pending queues, and a tight
        MSHR file exercises admission stalls inside the interval."""
        full_cfg = tiny_config(warmup_mode="functional").with_mshrs(2)
        full = run_system(full_cfg, workload="bc")
        assert full.mshr_stall_cycles > 0  # the pipeline actually bites
        sampled_cfg = full_cfg.with_sampling(SamplingConfig(
            intervals=1,
            interval_instructions=full_cfg.sim_instructions,
            warm_instructions=0, detailed_warm_instructions=0))
        sampled = run_system(sampled_cfg, workload="bc")
        want = dataclasses.asdict(full)
        have = dataclasses.asdict(sampled)
        assert want.pop("sampling") is None
        assert have.pop("sampling") is not None
        assert have == want

    def test_one_interval_summary_is_degenerate(self):
        cfg = tiny_config(warmup_mode="functional")
        sampled = run_system(cfg.with_sampling(SamplingConfig(
            intervals=1, interval_instructions=cfg.sim_instructions,
            warm_instructions=0, detailed_warm_instructions=0)))
        est = sampled.sampling.metrics["mean_ipc"]
        assert est.n == 1
        assert est.ci_lo == est.mean == est.ci_hi


class TestSampledRun:
    def test_summary_shape(self):
        result = run_system(sampled_tiny())
        summary = result.sampling
        assert summary is not None
        assert summary.intervals == 4
        assert len(summary.starts) == 4
        assert summary.starts == sorted(summary.starts)
        est = summary.metrics["mean_ipc"]
        assert est.n == 4
        assert est.ci_lo <= est.mean <= est.ci_hi
        lo, hi = summary.ci("mean_ipc")
        assert (lo, hi) == (est.ci_lo, est.ci_hi)

    def test_instructions_cover_measured_intervals(self):
        cfg = sampled_tiny()
        result = run_system(cfg)
        expected = cfg.cores * 4 * 400
        assert result.instructions == expected

    def test_deterministic(self):
        a = run_system(sampled_tiny())
        b = run_system(sampled_tiny())
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_random_scheme_reproducible(self):
        sampling = SamplingConfig(
            intervals=4, interval_instructions=300,
            warm_instructions=200, detailed_warm_instructions=100,
            scheme="random", scheme_seed=5)
        a = run_system(sampled_tiny(sampling))
        b = run_system(sampled_tiny(sampling))
        assert a.sampling.starts == b.sampling.starts
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_unknown_summary_metric_lists_available(self):
        result = run_system(sampled_tiny())
        with pytest.raises(ValueError, match="mean_ipc"):
            result.sampling.estimate("nope")

    def test_plan_must_fit_epoch(self):
        cfg = sampled_tiny(SamplingConfig(
            intervals=4, interval_instructions=400,
            period_instructions=2_000))  # span 6400 > epoch 4000
        with pytest.raises(ConfigError, match="exceeds the measured"):
            run_system(cfg)

    def test_random_plan_validates_worst_case_span(self):
        from repro.sampling import validate_plan

        periodic = SamplingConfig(intervals=3, interval_instructions=1000,
                                  period_instructions=4_000)
        assert validate_plan(periodic, 10_000) == 4_000
        randomised = SamplingConfig(intervals=3,
                                    interval_instructions=1000,
                                    period_instructions=4_000,
                                    scheme="random")
        # The last window's random offset could start an interval at up
        # to 11000 - past the 10000-instruction epoch.
        with pytest.raises(ConfigError, match="exceeds the measured"):
            validate_plan(randomised, 10_000)

    def test_dram_commands_cover_only_measured_intervals(self):
        """Discarded re-warm windows must not inflate DRAM commands."""
        cfg = sampled_tiny()
        system = System(cfg, trace_factory("copy", cfg, seed=7))
        result = system.run()
        lifetime = sum(
            bank.stats.activates
            for channel in system.channels
            for sc in channel.subchannels
            for bank in sc.banks)
        assert 0 < result.dram.activates < lifetime

    def test_run_sampled_requires_plan(self):
        from repro.errors import SimulationError

        cfg = tiny_config(warmup_mode="functional")
        system = System(cfg, trace_factory("copy", cfg, seed=7))
        with pytest.raises(SimulationError):
            system.run_sampled()


class TestAdaptive:
    def test_stops_at_minimum_when_target_met(self):
        # An absurdly loose target stops at the minimum interval count.
        cfg = sampled_tiny(SamplingConfig(
            intervals=2, interval_instructions=300,
            warm_instructions=200, detailed_warm_instructions=100,
            target_relative_error=1e6, max_intervals=8))
        result = run_system(cfg)
        assert result.sampling.intervals == 2

    def test_runs_to_cap_when_target_unreachable(self):
        cfg = sampled_tiny(SamplingConfig(
            intervals=2, interval_instructions=300,
            warm_instructions=100, detailed_warm_instructions=100,
            target_relative_error=1e-9, max_intervals=4))
        result = run_system(cfg)
        assert result.sampling.intervals == 4

    def test_interval_count_monotone_in_target(self):
        """Loosening the error target never buys MORE intervals."""
        def intervals_for(target):
            cfg = sampled_tiny(SamplingConfig(
                intervals=2, interval_instructions=300,
                warm_instructions=200, detailed_warm_instructions=100,
                target_relative_error=target, max_intervals=8))
            return run_system(cfg).sampling.intervals

        targets = [0.001, 0.01, 0.05, 0.25, 10.0]
        counts = [intervals_for(t) for t in targets]
        assert counts == sorted(counts, reverse=True)
        assert all(2 <= c <= 8 for c in counts)
        assert counts[0] == 8      # unreachable target runs to the cap
        assert counts[-1] == 2     # absurd target stops at the minimum

    def test_adaptive_rerun_is_bit_identical(self):
        """Fixed seeds make the whole adaptive loop deterministic."""
        def once():
            cfg = sampled_tiny(SamplingConfig(
                intervals=2, interval_instructions=300,
                warm_instructions=200, detailed_warm_instructions=100,
                target_relative_error=0.05, max_intervals=8,
                scheme="random", scheme_seed=3))
            return run_system(cfg, seed=11)

        a, b = once(), once()
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestExperimentIntegration:
    def test_sampled_and_full_keys_differ(self):
        full = tiny_config(warmup_mode="functional")
        sampled = sampled_tiny()
        a = RunSpec(workload="copy", config=full, seed=7)
        b = RunSpec(workload="copy", config=sampled, seed=7)
        assert a.key() != b.key()

    def test_sampling_plans_hash_distinctly(self):
        a = sampled_tiny(SamplingConfig(intervals=4,
                                        interval_instructions=400))
        b = sampled_tiny(SamplingConfig(intervals=5,
                                        interval_instructions=400))
        assert RunSpec(workload="copy", config=a).key() != \
            RunSpec(workload="copy", config=b).key()

    def test_resultset_ci_well_formed(self):
        rs = Session(cache=False).run(ExperimentSpec(
            workloads="copy", configs=sampled_tiny(), seeds=7))
        lo, hi = rs.ci("mean_ipc")
        assert lo <= hi
        assert lo <= rs.only().value("mean_ipc") * 1.5
        assert rs.only().sampled
        assert rs.error_bars("mean_ipc") == \
            [rs.only().error_bar("mean_ipc")]

    def test_full_observation_has_degenerate_ci(self):
        # Mixed grids (adaptive escalations next to sampled cells) need
        # full runs to answer ci() too: an exact measurement reports the
        # zero-width interval (value, value), not an error.
        rs = Session(cache=False).run(ExperimentSpec(
            workloads="copy", configs=tiny_config(), seeds=7))
        value = rs.only().value("mean_ipc")
        assert rs.ci("mean_ipc") == (value, value)
        assert rs.error_bars("mean_ipc") == [0.0]
        with pytest.raises(ValueError, match="unknown metric"):
            rs.ci("not_a_metric")

    def test_cached_sampled_result_round_trips(self, tmp_path):
        spec = ExperimentSpec(workloads="copy", configs=sampled_tiny(),
                              seeds=7)
        first = Session(cache_dir=tmp_path).run(spec)
        second = Session(cache_dir=tmp_path).run(spec)
        assert second[0].result.sampling is not None
        assert dataclasses.asdict(first[0].result) == \
            dataclasses.asdict(second[0].result)
        stats = Session(cache_dir=tmp_path)
        stats.run(spec)
        assert stats.stats.disk_hits == 1
        assert stats.stats.simulated == 0

    def test_sample_axis_sweeps_sampled_vs_full(self):
        spec = ExperimentSpec(
            workloads="copy",
            configs=tiny_config(warmup_mode="functional"),
            seeds=7,
            axes=[make_axis("sample", ["off", 2])],
        )
        plan = spec.expand()
        assert plan.unique_count == 2
        rs = Session(cache=False).run(plan)
        by_axis = {obs.coords["sample"]: obs for obs in rs}
        assert by_axis["off"].result.sampling is None
        assert by_axis["2"].result.sampling.intervals == 2

    def test_sampled_runs_share_warm_checkpoints_with_full(self):
        """Sampled and full runs of one (workload, seed) warm once."""
        session = Session(cache=False)
        spec = ExperimentSpec(
            workloads="copy",
            configs={"full": tiny_config(warmup_mode="functional"),
                     "sampled": sampled_tiny()},
            seeds=7,
        )
        session.run(spec)
        assert session.stats.warmups_executed == 1
        assert session.stats.checkpoint_restores == 1


class TestReportRendering:
    def test_comparison_report_shows_ci(self):
        from repro.analysis.report import comparison_report, sampling_note

        base = run_system(sampled_tiny())
        other = run_system(sampled_tiny(**{}), workload="copy")
        text = comparison_report(base, other, workload="copy")
        assert "±" in text
        assert "sampled" in text
        note = sampling_note(base)
        assert "4 x 400" in note

    def test_full_report_unchanged(self):
        from repro.analysis.report import comparison_report, sampling_note

        cfg = tiny_config()
        base = run_system(cfg)
        assert sampling_note(base) is None
        text = comparison_report(base, base, workload="copy")
        assert "±" not in text

    def test_figure_csv_error_columns(self):
        from repro.analysis.figures import read_figure_csv, series_to_csv

        text = series_to_csv(
            ["a", "b"],
            {"bard": [1.0, 2.0]},
            errors={"bard": [0.1, 0.2]},
        )
        lines = text.strip().splitlines()
        assert lines[0] == "workload,bard,bard_err"
        assert lines[1] == "a,1.0000,0.1000"

    def test_figure_csv_error_validation(self):
        from repro.analysis.figures import series_to_csv

        with pytest.raises(ValueError):
            series_to_csv(["a"], {"x": [1.0]}, errors={"y": [0.1]})
        with pytest.raises(ValueError):
            series_to_csv(["a"], {"x": [1.0]}, errors={"x": [0.1, 0.2]})

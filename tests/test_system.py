"""System builder semantics: wiring, warmup epochs, sharing."""

import pytest

from repro.cache.writeback.eager import EagerWriteback
from repro.cache.writeback.vwq import VirtualWriteQueue
from repro.sim.system import System
from repro.workloads import trace_factory

from .conftest import tiny_config


def build(cfg):
    return System(cfg, trace_factory("copy", cfg))


class TestWiring:
    def test_one_llc_shared_by_all_cores(self):
        system = build(tiny_config())
        for l2 in system.l2s:
            assert l2.lower is system.llc

    def test_private_l1_and_l2_per_core(self):
        system = build(tiny_config())
        assert len({id(l2) for l2 in system.l2s}) == len(system.cores)
        for l1d, l2 in zip(system.l1ds, system.l2s):
            assert l1d.lower is l2

    def test_l1i_shares_l2_with_l1d(self):
        system = build(tiny_config())
        for l1i, l2 in zip(system.l1is, system.l2s):
            assert l1i.lower is l2

    def test_llc_feeds_memory_controller(self):
        system = build(tiny_config())
        assert system.llc.lower is system.memctrl

    def test_prefetchers_attached_per_config(self):
        cfg = tiny_config()
        system = build(cfg)
        assert system.l1ds[0].prefetcher is not None
        assert system.l2s[0].prefetcher is not None
        assert system.llc.prefetcher is None

    @pytest.mark.parametrize("policy,cls", [
        ("eager", EagerWriteback), ("vwq", VirtualWriteQueue),
    ])
    def test_llc_writeback_policy_wired(self, policy, cls):
        system = build(tiny_config(llc_writeback=policy))
        assert isinstance(system.llc.wb_policy, cls)

    def test_channel_count_matches_config(self):
        from dataclasses import replace

        cfg = tiny_config()
        cfg = replace(cfg, dram=replace(cfg.dram, channels=2))
        system = build(cfg)
        assert len(system.channels) == 2
        assert system.mapping.channels == 2


class TestWarmupEpoch:
    def test_measurement_excludes_warmup(self):
        cfg = tiny_config(warmup_instructions=2_000,
                          sim_instructions=3_000)
        system = build(cfg)
        result = system.run()
        assert result.instructions == cfg.cores * 3_000

    def test_zero_warmup_supported(self):
        cfg = tiny_config(warmup_instructions=0, sim_instructions=2_000)
        system = build(cfg)
        result = system.run()
        assert result.instructions == cfg.cores * 2_000

    def test_warmup_keeps_cache_state(self):
        """After warmup the LLC must already be populated, so early
        measurement-phase accesses can hit."""
        cfg = tiny_config()
        system = build(cfg)
        system.run()
        resident = sum(
            1 for cset in system.llc.sets for line in cset.lines
            if line.valid
        )
        assert resident > 0

    def test_elapsed_positive_and_consistent(self):
        system = build(tiny_config())
        result = system.run()
        assert result.elapsed_ticks > 0
        for ipc in result.ipc:
            assert 0 < ipc < 8  # bounded by issue width


class TestResultSnapshot:
    def test_stats_are_copies(self):
        system = build(tiny_config())
        result = system.run()
        before = result.llc.accesses
        system.llc.stats.accesses += 1000
        assert result.llc.accesses == before

"""Property-based tests on the engine and core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import Core
from repro.cpu.trace import LOAD, NONMEM, STORE
from repro.sim.engine import Engine


class TestEngineProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    max_size=60))
    def test_events_fire_in_nondecreasing_order(self, ticks):
        eng = Engine()
        fired = []
        for t in ticks:
            eng.schedule(t, lambda t=t: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ticks)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 50)),
                    max_size=30))
    def test_nested_scheduling_preserves_order(self, pairs):
        eng = Engine()
        fired = []

        def make(base, delay):
            def fn():
                fired.append(eng.now)
                eng.schedule(eng.now + delay, lambda: fired.append(eng.now))
            return fn

        for base, delay in pairs:
            eng.schedule(base, make(base, delay))
        eng.run()
        assert fired == sorted(fired)


class InstantMemory:
    def __init__(self, engine):
        self.engine = engine

    def access(self, addr, is_write, pc, now, on_done, core_id=0,
               is_prefetch=False):
        if on_done is not None:
            self.engine.schedule(now + 6, lambda: on_done(now + 6))


class ZeroTLB:
    def translate(self, addr):
        return 0


class TestCoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from([NONMEM, LOAD, STORE]),
                      st.integers(1, 1 << 20)),
            min_size=1, max_size=50,
        ),
        st.integers(min_value=10, max_value=200),
    )
    def test_core_always_retires_exact_budget(self, pattern, budget):
        """Whatever the instruction mix, the core retires exactly its
        budget and terminates."""

        def trace():
            i = 0
            while True:
                kind, addr = pattern[i % len(pattern)]
                yield (kind, addr * 64 if kind != NONMEM else 0, 4 * i)
                i += 1

        engine = Engine()
        mem = InstantMemory(engine)
        finished = []
        core = Core(0, trace(), engine, mem, mem, ZeroTLB(), ZeroTLB(),
                    rob_size=32, budget=budget,
                    on_finish=finished.append)
        core.start()
        engine.run(max_events=2_000_000)
        assert finished
        assert core.stats.retired == budget
        assert core.stats.finish_tick >= core.stats.start_tick

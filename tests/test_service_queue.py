"""Durable job queue: persistence, fairness, backpressure, warm groups."""

from __future__ import annotations

import pytest

from repro.experiment import ExperimentSpec
from repro.experiment.spec import RunSpec
from repro.service import CANCELLED, DONE, FAILED, JobQueue, PENDING, \
    QueueFull, RUNNING

from .conftest import tiny_config


def _spec(workload="copy", seed=7, **overrides) -> RunSpec:
    return RunSpec(workload=workload, config=tiny_config(**overrides),
                   seed=seed)


def _admit(queue, specs, tenant="default", **kw):
    return queue.admit(list(specs), [], tenant=tenant, **kw)


class TestPersistence:
    def test_jobs_survive_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        specs = [_spec(seed=s) for s in (1, 2)]
        _admit(queue, specs, tenant="alice", grid_id="g1")
        reloaded = JobQueue(tmp_path)
        assert len(reloaded) == 2
        for spec in specs:
            job = reloaded.get(spec.key())
            assert job.state == PENDING
            assert job.tenant == "alice"
            assert job.grids == ("g1",)
            assert job.spec.key() == spec.key()

    def test_running_jobs_demoted_on_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=1), _spec(seed=2)])
        leased = queue.lease(max_jobs=1)
        assert [j.state for j in leased] == [RUNNING]
        reloaded = JobQueue(tmp_path)
        assert reloaded.resumed == 1
        assert reloaded.counts()[PENDING] == 2
        assert reloaded.counts()[RUNNING] == 0

    def test_done_stays_done_across_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec(seed=3)
        _admit(queue, [spec])
        queue.lease()
        queue.complete(spec.key())
        reloaded = JobQueue(tmp_path)
        assert reloaded.get(spec.key()).state == DONE
        assert reloaded.resumed == 0

    def test_corrupt_job_file_is_skipped(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=1)])
        (tmp_path / "garbage.json").write_text("{not json")
        assert len(JobQueue(tmp_path)) == 1

    def test_seq_continues_after_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=1)])
        reloaded = JobQueue(tmp_path)
        _admit(reloaded, [_spec(seed=2)])
        seqs = [reloaded.get(_spec(seed=s).key()).seq for s in (1, 2)]
        assert seqs[1] > seqs[0]


class TestBackpressure:
    def test_per_tenant_bound_rejects_whole_batch(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending_per_tenant=2)
        with pytest.raises(QueueFull) as info:
            _admit(queue, [_spec(seed=s) for s in (1, 2, 3)],
                   tenant="alice")
        assert info.value.scope == "per-tenant"
        assert info.value.tenant == "alice"
        assert info.value.limit == 2
        assert len(queue) == 0  # nothing partially admitted

    def test_global_bound(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending_per_tenant=8,
                         max_pending_total=3)
        _admit(queue, [_spec(seed=s) for s in (1, 2)], tenant="alice")
        with pytest.raises(QueueFull) as info:
            _admit(queue, [_spec(seed=s) for s in (3, 4)], tenant="bob")
        assert info.value.scope == "global"
        assert len(queue) == 2

    def test_attach_is_never_rejected(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending_per_tenant=1)
        spec = _spec(seed=1)
        _admit(queue, [spec], tenant="alice", grid_id="ga")
        # Bob's grid wants the same run: attaching bypasses the bound.
        created, attached = queue.admit([], [spec.key()], tenant="bob",
                                        grid_id="gb")
        assert (created, attached) == (0, 1)
        assert set(queue.get(spec.key()).grids) == {"ga", "gb"}

    def test_completed_jobs_free_capacity(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending_per_tenant=1)
        spec = _spec(seed=1)
        _admit(queue, [spec])
        queue.lease()
        queue.complete(spec.key())
        _admit(queue, [_spec(seed=2)])  # no QueueFull
        assert queue.counts()[PENDING] == 1


class TestScheduling:
    def test_fifo_within_tenant(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, second = _spec(seed=1), _spec(seed=2)
        _admit(queue, [first])
        _admit(queue, [second])
        assert queue.lease(max_jobs=1)[0].key == first.key()

    def test_priority_beats_age(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=1)], priority=0)
        urgent = _spec(seed=2)
        _admit(queue, [urgent], priority=5)
        assert queue.lease(max_jobs=1)[0].key == urgent.key()

    def test_weighted_fair_share(self, tmp_path):
        queue = JobQueue(tmp_path,
                         tenant_weights={"alice": 2.0, "bob": 1.0})
        _admit(queue, [_spec(seed=s) for s in range(1, 5)],
               tenant="alice")
        _admit(queue, [_spec(seed=s) for s in range(11, 15)],
               tenant="bob")
        order = [queue.lease(max_jobs=1)[0].tenant for _ in range(6)]
        # Smooth WRR: alice gets twice bob's share, no starvation.
        assert order.count("alice") == 4
        assert order.count("bob") == 2
        assert order[1] == "bob"  # interleaved, not front-loaded

    def test_equal_weights_alternate(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=s) for s in (1, 2)], tenant="alice")
        _admit(queue, [_spec(seed=s) for s in (11, 12)], tenant="bob")
        order = [queue.lease(max_jobs=1)[0].tenant for _ in range(4)]
        assert order == ["alice", "bob", "alice", "bob"]

    def test_deep_queue_cannot_starve_light_tenant(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=s) for s in range(1, 9)],
               tenant="hog")
        _admit(queue, [_spec(seed=99)], tenant="mouse")
        order = [queue.lease(max_jobs=1)[0].tenant for _ in range(2)]
        assert "mouse" in order


class TestWarmGroups:
    def test_groupmates_lease_together(self, tmp_path):
        cfg = tiny_config(warmup_mode="functional")
        plan = ExperimentSpec(workloads="copy", configs=cfg,
                              policies=["baseline", "bard-h",
                                        "eager"]).expand()
        queue = JobQueue(tmp_path)
        _admit(queue, list(plan.runs.values()))
        group = queue.lease(max_jobs=8)
        assert len(group) == 3
        assert len({j.group for j in group}) == 1
        assert all(j.state == RUNNING for j in group)

    def test_group_leasing_spans_tenants(self, tmp_path):
        cfg = tiny_config(warmup_mode="functional")
        queue = JobQueue(tmp_path)
        _admit(queue, [RunSpec("copy", cfg.with_writeback("bard-h"))],
               tenant="alice")
        _admit(queue, [RunSpec("copy", cfg.with_writeback("eager"))],
               tenant="bob")
        group = queue.lease(max_jobs=8)
        # Same warm state by construction: bob's run rides along so the
        # shard warms once for both tenants.
        assert {j.tenant for j in group} == {"alice", "bob"}

    def test_max_jobs_caps_group_size(self, tmp_path):
        cfg = tiny_config(warmup_mode="functional")
        plan = ExperimentSpec(workloads="copy", configs=cfg,
                              policies=["baseline", "bard-h",
                                        "eager"]).expand()
        queue = JobQueue(tmp_path)
        _admit(queue, list(plan.runs.values()))
        assert len(queue.lease(max_jobs=2)) == 2
        assert len(queue.lease(max_jobs=2)) == 1

    def test_detailed_warmup_jobs_lease_alone(self, tmp_path):
        queue = JobQueue(tmp_path)
        _admit(queue, [_spec(seed=1), _spec(seed=2)])
        assert len(queue.lease(max_jobs=8)) == 1


class TestLifecycle:
    def test_fail_records_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec(seed=1)
        _admit(queue, [spec])
        queue.lease()
        queue.fail(spec.key(), "ValueError: boom")
        job = JobQueue(tmp_path).get(spec.key())
        assert job.state == FAILED
        assert "boom" in job.error

    def test_attach_resurrects_failed_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec(seed=1)
        _admit(queue, [spec], grid_id="g1")
        queue.lease()
        queue.fail(spec.key(), "boom")
        queue.admit([], [spec.key()], tenant="bob", grid_id="g2")
        job = queue.get(spec.key())
        assert job.state == PENDING
        assert job.error == ""

    def test_release_requeues_leased_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec(seed=1)
        _admit(queue, [spec])
        queue.lease()
        queue.release([spec.key()])
        assert queue.get(spec.key()).state == PENDING

    def test_detach_grid_cancels_orphans_only(self, tmp_path):
        queue = JobQueue(tmp_path)
        mine, shared = _spec(seed=1), _spec(seed=2)
        _admit(queue, [mine, shared], grid_id="g1")
        queue.admit([], [shared.key()], tenant="bob", grid_id="g2")
        assert queue.detach_grid("g1") == 1
        assert queue.get(mine.key()).state == CANCELLED
        # Still wanted by g2: survives the cancellation.
        assert queue.get(shared.key()).state == PENDING

    def test_counts_and_outstanding(self, tmp_path):
        queue = JobQueue(tmp_path)
        done, rest = _spec(seed=1), _spec(seed=2)
        _admit(queue, [done, rest])
        queue.lease(max_jobs=1)
        queue.complete(done.key())
        counts = queue.counts()
        assert counts[DONE] == 1 and counts[PENDING] == 1
        assert queue.outstanding() == 1
        assert queue.tenant_counts()["default"][DONE] == 1

"""Failure-injection style tests: pathological traffic patterns must not
break invariants (even ones outside the generators' normal envelope)."""

from repro.cpu.trace import LOAD, STORE
from repro.sim.system import System

from .conftest import tiny_config


def _run_system(trace_fn, **cfg_overrides):
    cfg = tiny_config(**cfg_overrides)
    system = System(cfg, trace_fn)
    result = system.run()
    return system, result


class TestAllStores:
    def test_store_dominated_stream(self):
        """Nearly pure store traffic (stores never block retirement, so a
        rare load keeps the run paced with the memory system)."""

        def factory(core_id):
            def gen():
                i = 0
                while True:
                    addr = (core_id << 30) | (0x100000 + i * 64)
                    if i % 8 == 7:
                        yield (LOAD, addr, 4)
                    else:
                        yield (STORE, addr, 4)
                    i += 1
            return gen()

        system, result = _run_system(factory)
        assert result.instructions > 0
        assert result.llc.writebacks > 0


class TestSingleHotLine:
    def test_every_core_hammers_one_line(self):
        """Shared-address traffic (no coherence modelled) must still keep
        cache invariants: at most one copy of the line per cache."""

        def factory(core_id):
            def gen():
                while True:
                    yield (LOAD, 0x40000, 4)
                    yield (STORE, 0x40000, 8)
            return gen()

        system, result = _run_system(factory)
        for cache in [system.llc, *system.l2s, *system.l1ds]:
            copies = sum(
                1 for cset in cache.sets for line in cset.lines
                if line.valid and line.line_addr == 0x40000
            )
            assert copies <= 1, f"{cache.name} duplicated the hot line"


class TestSingleBankHammer:
    def test_all_traffic_to_one_bank(self):
        """Worst-case bank conflicts: everything lands in one bank (row
        increments), exercising the 188-cycle conflict path heavily."""
        from repro.dram.commands import DramCoord
        from repro.dram.mapping import ZenMapping

        mapping = ZenMapping(pbpl=True)

        def factory(core_id):
            def gen():
                i = 0
                while True:
                    # Row changes, bank fixed: invert PBPL per row.
                    row = i % 64
                    coord = DramCoord(0, 0, 0, 0, row, core_id * 8)
                    addr = mapping.compose(coord)
                    yield (LOAD, addr, 4)
                    yield (STORE, addr, 8)
                    i += 1
            return gen()

        system, result = _run_system(factory)
        assert result.instructions > 0
        agg = system.channels[0].aggregate_stats()
        # Conflict-heavy traffic must show up in the row-conflict stats.
        assert agg.read_row_conflicts + agg.write_row_conflicts > 0


class TestTinyBudgets:
    def test_one_instruction_budget(self):
        def factory(core_id):
            def gen():
                while True:
                    yield (LOAD, (core_id << 30) | 0x1000, 4)
            return gen()

        system, result = _run_system(
            factory, warmup_instructions=0, sim_instructions=1)
        assert result.instructions == 2  # 2 cores x 1 instruction

"""Session interrupt safety: flush what finished, resume from cache."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiment import ExperimentSpec, Session, SessionInterrupted
from repro.experiment import session as session_mod

from .conftest import tiny_config


def _grid(workloads=("copy", "whiskey"), seeds=(7, 11)):
    return ExperimentSpec(workloads=list(workloads),
                          configs=tiny_config(),
                          seeds=list(seeds), name="interrupt-grid")


def _interrupt_after(monkeypatch, n, exc_type=KeyboardInterrupt):
    """Patch simulate to raise after n successful runs."""
    real = session_mod.simulate
    calls = []

    def flaky(spec):
        if len(calls) >= n:
            raise exc_type(f"boom after {n}")
        calls.append(spec)
        return real(spec)

    monkeypatch.setattr(session_mod, "simulate", flaky)
    return calls


class TestInterruptSafety:
    def test_keyboard_interrupt_flushes_completed(self, tmp_path,
                                                  monkeypatch):
        calls = _interrupt_after(monkeypatch, 2)
        session = Session(cache_dir=tmp_path)
        with pytest.raises(SessionInterrupted) as info:
            session.run(_grid())
        exc = info.value
        assert isinstance(exc.__cause__, KeyboardInterrupt)
        # Two runs finished and were flushed to the cache.
        assert len(calls) == 2
        assert exc.stats.simulated == 2
        assert len(exc.partial) == 2
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert "rerun the same spec to resume" in str(exc)

    def test_rerun_resumes_from_cache(self, tmp_path, monkeypatch):
        _interrupt_after(monkeypatch, 3)
        with pytest.raises(SessionInterrupted):
            Session(cache_dir=tmp_path).run(_grid())
        monkeypatch.undo()
        # A fresh invocation of the same spec only simulates the rest.
        resumed = Session(cache_dir=tmp_path)
        rs = resumed.run(_grid())
        assert len(rs) == 4
        assert resumed.stats.disk_hits == 3
        assert resumed.stats.simulated == 1

    def test_worker_crash_reports_partial_stats(self, tmp_path,
                                                monkeypatch):
        _interrupt_after(monkeypatch, 1, exc_type=RuntimeError)
        session = Session(cache_dir=tmp_path)
        with pytest.raises(SessionInterrupted) as info:
            session.run(_grid(seeds=(7,)))
        assert isinstance(info.value.__cause__, RuntimeError)
        assert info.value.stats.simulated == 1
        assert len(info.value.partial) == 1

    def test_partial_resultset_is_queryable(self, tmp_path, monkeypatch):
        _interrupt_after(monkeypatch, 2)
        with pytest.raises(SessionInterrupted) as info:
            Session(cache_dir=tmp_path).run(_grid())
        partial = info.value.partial
        assert {o.coords["workload"] for o in partial} <= \
            {"copy", "whiskey"}
        assert all(o.result.mean_ipc > 0 for o in partial)

    def test_interrupt_mid_warm_group_keeps_finished_members(
            self, tmp_path, monkeypatch):
        """Serial groups stream member-by-member, so an interrupt inside
        a warm-sharing group keeps the members that already ran."""
        cfg = tiny_config(warmup_mode="functional")
        spec = ExperimentSpec(workloads="copy", configs=cfg,
                              policies=["baseline", "bard-h", "eager"],
                              name="warm-group")
        from repro.sim.system import System

        real_run = System.run
        runs = []

        def flaky_run(self, label=""):
            if len(runs) >= 2:
                raise KeyboardInterrupt("mid-group")
            runs.append(label)
            return real_run(self, label=label)

        monkeypatch.setattr(System, "run", flaky_run)
        session = Session(cache_dir=tmp_path)
        with pytest.raises(SessionInterrupted) as info:
            session.run(spec)
        assert len(info.value.partial) == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cli_reports_interrupt(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        import repro.cli as cli

        monkeypatch.setitem(cli._PRESETS, "small-8core", tiny_config)
        _interrupt_after(monkeypatch, 1)
        code = main(["characterize", "copy", "whiskey",
                     "--cache-dir", str(tmp_path)])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "resume" in err


class TestConfigErrorsStillCleanBeforeExecution:
    def test_plan_time_errors_are_config_errors(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(workloads=[], configs=tiny_config())

    def test_simulate_time_config_error_is_not_wrapped(self, tmp_path,
                                                       monkeypatch):
        """A mis-specified run keeps the ConfigError contract (CLI
        exit 2), it is not disguised as an interrupt."""
        def broken(spec):
            raise ConfigError("sampling plan does not fit")

        monkeypatch.setattr(session_mod, "simulate", broken)
        with pytest.raises(ConfigError):
            Session(cache_dir=tmp_path).run(_grid())

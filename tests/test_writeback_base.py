"""Writeback-policy base class and stats."""

from repro.cache.writeback.base import WritebackPolicy, WritebackPolicyStats


class TestBasePolicy:
    def test_default_victim_passthrough(self):
        p = WritebackPolicy()
        assert p.choose_victim(0, 3, now=100) == 3
        assert p.stats.victim_selections == 1

    def test_hooks_are_noops(self):
        p = WritebackPolicy()
        p.on_hit(0, 0, 0)
        p.on_dirty(0x40)
        p.on_undirty(0x40)
        p.on_writeback(0x40)
        assert p.stats.overrides == 0
        assert p.stats.cleanses == 0

    def test_attach_binds_cache(self):
        p = WritebackPolicy()
        marker = object()
        p.attach(marker)
        assert p.cache is marker


class TestStats:
    def test_plain_evictions(self):
        s = WritebackPolicyStats(victim_selections=100, overrides=5,
                                 cleanses=30)
        assert s.plain_evictions == 95

    def test_defaults_zero(self):
        s = WritebackPolicyStats()
        assert s.victim_selections == 0
        assert s.plain_evictions == 0

"""Runner orchestration: comparisons, gmean speedups, factories."""

import pytest

from repro.errors import ConfigError
from repro.sim.runner import (
    PolicyComparison,
    compare_policies,
    gmean_speedups,
    run_workload,
)

from .conftest import tiny_config


@pytest.fixture(scope="module")
def comparison():
    return compare_policies(tiny_config(), "lbm", [None, "bard-h", "eager"])


class TestComparePolicies:
    def test_all_policies_present(self, comparison):
        assert set(comparison.results) == {"baseline", "bard-h", "eager"}

    def test_baseline_speedup_zero(self, comparison):
        assert comparison.speedup_pct("baseline") == pytest.approx(0.0)

    def test_results_labeled(self, comparison):
        assert comparison.results["bard-h"].label == "bard-h"

    def test_same_instruction_counts(self, comparison):
        counts = {r.instructions for r in comparison.results.values()}
        assert len(counts) == 1


class TestGmeanSpeedups:
    def test_across_comparisons(self, comparison):
        other = compare_policies(tiny_config(), "copy", [None, "bard-h"])
        # Restrict to the shared policy.
        val = gmean_speedups([comparison, other], "bard-h")
        assert isinstance(val, float)

    def test_identity(self, comparison):
        assert gmean_speedups([comparison], "baseline") == (
            pytest.approx(0.0))


class TestRunWorkload:
    def test_label_defaults_to_workload(self):
        r = run_workload(tiny_config(), "copy")
        assert r.label == "copy"

    def test_seed_changes_results(self):
        a = run_workload(tiny_config(), "cf", seed=1)
        b = run_workload(tiny_config(), "cf", seed=2)
        assert a.elapsed_ticks != b.elapsed_ticks

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            run_workload(tiny_config(), "quake4")

"""BARD-E / BARD-C / BARD-H decision logic (paper sections IV-V)."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import LRUPolicy
from repro.core.bard import BardPolicy, make_bard
from repro.core.blp_tracker import BLPTracker
from repro.dram.mapping import ZenMapping
from repro.sim.engine import Engine

MAPPING = ZenMapping(pbpl=True)


def row_addr(row: int) -> int:
    """Addresses in cache set 0 whose DRAM bank varies with the row
    (PBPL swizzling guarantees distinct banks for rows 0..31)."""
    return row << 19


def bank_of(addr: int) -> int:
    return MAPPING.map(addr).bank_id


class FakeLower:
    def __init__(self, engine):
        self.engine = engine
        self.reads = []
        self.writebacks = []

    def read(self, line_addr, now, on_done, core_id, is_prefetch, pc=0):
        self.reads.append(line_addr)
        self.engine.schedule(now + 10, lambda: on_done(now + 10))

    def writeback(self, line_addr, now):
        self.writebacks.append(line_addr)


def make_env(variant="bard-h", ways=4, tracker=None, memctrl=None):
    engine = Engine()
    lower = FakeLower(engine)
    policy = make_bard(variant, MAPPING, tracker=tracker, memctrl=memctrl)
    cache = Cache("llc", 4 * ways * 64, ways, 1, 8, LRUPolicy(4, ways),
                  engine, lower, writeback_policy=policy)
    return engine, lower, cache, policy


class TestBardE:
    def test_overrides_pending_bank_victim(self):
        engine, lower, cache, policy = make_env("bard-e")
        for row in range(4):
            cache.writeback(row_addr(row), 0)  # dirty installs, LRU = row 0
        policy.tracker.mark_writeback(0, bank_of(row_addr(0)))
        cache.writeback(row_addr(4), 0)  # forces an eviction
        # Row 0 is skipped (pending bank); row 1 is the next dirty line
        # whose bank has no pending write.
        assert cache.find_line(row_addr(0)) is not None
        assert cache.find_line(row_addr(1)) is None
        assert row_addr(1) in lower.writebacks
        assert policy.stats.overrides == 1

    def test_no_override_when_victim_bank_free(self):
        engine, lower, cache, policy = make_env("bard-e")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        cache.writeback(row_addr(4), 0)
        assert cache.find_line(row_addr(0)) is None  # default LRU evicted
        assert policy.stats.overrides == 0

    def test_falls_back_when_all_banks_pending(self):
        engine, lower, cache, policy = make_env("bard-e")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
            policy.tracker.mark_writeback(0, bank_of(row_addr(row)))
        cache.writeback(row_addr(4), 0)
        assert cache.find_line(row_addr(0)) is None  # LRU fallback
        assert policy.stats.overrides == 0

    def test_ignores_clean_victims(self):
        engine, lower, cache, policy = make_env("bard-e")
        cache.access(row_addr(0), False, 1, 0, None)  # clean LRU
        engine.run()
        for row in range(1, 4):
            cache.writeback(row_addr(row), engine.now)
        cache.writeback(row_addr(4), engine.now)
        # BARD-E does nothing for clean victims: silent eviction of row 0.
        assert cache.find_line(row_addr(0)) is None
        assert policy.stats.overrides == 0
        assert policy.stats.cleanses == 0


class TestBardC:
    def _setup_clean_lru(self):
        engine, lower, cache, policy = make_env("bard-c")
        cache.access(row_addr(0), False, 1, 0, None)  # clean, will be LRU
        engine.run()
        for row in range(1, 4):
            cache.writeback(row_addr(row), engine.now)
        return engine, lower, cache, policy

    def test_cleanses_low_cost_dirty_line(self):
        engine, lower, cache, policy = self._setup_clean_lru()
        policy.tracker.mark_writeback(0, bank_of(row_addr(1)))
        cache.writeback(row_addr(4), engine.now)
        # Row 1 skipped (pending bank); row 2 cleansed, stays resident.
        assert row_addr(2) in lower.writebacks
        s, w = cache.find_line(row_addr(2))
        line = cache.sets[s].lines[w]
        assert line.valid and not line.dirty
        assert policy.stats.cleanses == 1

    def test_victim_choice_unchanged(self):
        engine, lower, cache, policy = self._setup_clean_lru()
        cache.writeback(row_addr(4), engine.now)
        assert cache.find_line(row_addr(0)) is None  # clean LRU evicted

    def test_does_nothing_for_dirty_victims(self):
        engine, lower, cache, policy = make_env("bard-c")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        policy.tracker.mark_writeback(0, bank_of(row_addr(0)))
        before = len(lower.writebacks)
        cache.writeback(row_addr(4), 0)
        # Eviction of row 0 proceeds (1 writeback), no cleansing on top.
        assert cache.find_line(row_addr(0)) is None
        assert policy.stats.cleanses == 0
        assert len(lower.writebacks) == before + 1


class TestBardH:
    def test_uses_eviction_for_dirty_victim(self):
        engine, lower, cache, policy = make_env("bard-h")
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        policy.tracker.mark_writeback(0, bank_of(row_addr(0)))
        cache.writeback(row_addr(4), 0)
        assert policy.stats.overrides == 1
        assert policy.stats.cleanses == 0

    def test_uses_cleansing_for_clean_victim(self):
        engine, lower, cache, policy = make_env("bard-h")
        cache.access(row_addr(0), False, 1, 0, None)
        engine.run()
        for row in range(1, 4):
            cache.writeback(row_addr(row), engine.now)
        cache.writeback(row_addr(4), engine.now)
        assert policy.stats.cleanses == 1
        assert policy.stats.overrides == 0


class TestTrackerIntegration:
    def test_every_writeback_marks_tracker(self):
        engine, lower, cache, policy = make_env("bard-h")
        cache.writeback(row_addr(0), 0)
        s, w = cache.find_line(row_addr(0))
        cache.cleanse(s, w, 0)
        assert policy.tracker.is_pending(0, bank_of(row_addr(0)))
        assert policy.tracker.stats.broadcasts == 1

    def test_shared_tracker_instance(self):
        tracker = BLPTracker()
        _, _, _, policy = make_env("bard-h", tracker=tracker)
        assert policy.tracker is tracker


class TestAccuracyProbe:
    class FakeMC:
        def __init__(self, pending):
            self.pending = pending

        def pending_writes_for_line(self, line_addr):
            return self.pending

    def test_counts_incorrect_decisions(self):
        mc = self.FakeMC(pending=1)
        engine, lower, cache, policy = make_env("bard-h", memctrl=mc)
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        policy.tracker.mark_writeback(0, bank_of(row_addr(0)))
        cache.writeback(row_addr(4), 0)
        assert policy.accuracy.checked == 1
        assert policy.accuracy.incorrect == 1
        assert policy.accuracy.error_rate == 1.0

    def test_correct_decisions(self):
        mc = self.FakeMC(pending=0)
        engine, lower, cache, policy = make_env("bard-h", memctrl=mc)
        for row in range(4):
            cache.writeback(row_addr(row), 0)
        policy.tracker.mark_writeback(0, bank_of(row_addr(0)))
        cache.writeback(row_addr(4), 0)
        assert policy.accuracy.checked == 1
        assert policy.accuracy.incorrect == 0


class TestFactory:
    @pytest.mark.parametrize("variant,e,c", [
        ("bard-e", True, False),
        ("bard-c", False, True),
        ("bard-h", True, True),
        ("bard", True, True),
    ])
    def test_variants(self, variant, e, c):
        p = make_bard(variant, MAPPING)
        assert p.use_eviction is e
        assert p.use_cleansing is c

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_bard("bard-x", MAPPING)

    def test_names(self):
        assert make_bard("bard-h", MAPPING).name == "bard-h"
        assert make_bard("bard-e", MAPPING).name == "bard-e"
        assert make_bard("bard-c", MAPPING).name == "bard-c"

"""CPU model: ROB, TLBs, trace protocol, and the core's issue/retire loop."""

import pytest

from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.tlb import TLB, TLBHierarchy
from repro.cpu.trace import (
    LOAD,
    NONMEM,
    STORE,
    mem_fraction,
    replay,
    store_fraction,
    take,
    validate_record,
)
from repro.cpu.core import Core
from repro.errors import TraceError
from repro.sim.engine import Engine


class TestROB:
    def test_retire_in_order(self):
        rob = ReorderBuffer(4)
        rob.push(RobEntry(10))
        rob.push(RobEntry(5))
        assert rob.retire_ready(7, 4) == 0  # head not done yet
        assert rob.retire_ready(10, 4) == 2

    def test_retire_width_limit(self):
        rob = ReorderBuffer(8)
        for _ in range(6):
            rob.push(RobEntry(1))
        assert rob.retire_ready(5, 4) == 4
        assert rob.retire_ready(5, 4) == 2

    def test_outstanding_blocks(self):
        rob = ReorderBuffer(4)
        rob.push(RobEntry(None, is_load=True))
        rob.push(RobEntry(1))
        assert rob.retire_ready(100, 4) == 0

    def test_full(self):
        rob = ReorderBuffer(2)
        rob.push(RobEntry(1))
        assert not rob.full
        rob.push(RobEntry(1))
        assert rob.full


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4, 2)
        assert not tlb.lookup(0x1000)
        assert tlb.lookup(0x1000)
        assert tlb.stats.misses == 1
        assert tlb.stats.accesses == 2

    def test_same_page_shares_entry(self):
        tlb = TLB(4, 2)
        tlb.lookup(0x1000)
        assert tlb.lookup(0x1FFF)

    def test_lru_eviction(self):
        tlb = TLB(1, 2)
        tlb.lookup(0 << 12)
        tlb.lookup(1 << 12)
        tlb.lookup(0 << 12)  # touch page 0
        tlb.lookup(2 << 12)  # evicts page 1
        assert tlb.lookup(0 << 12)
        assert not tlb.lookup(1 << 12)

    def test_hierarchy_latencies(self):
        h = TLBHierarchy(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=2,
                         l2_latency=8, walk_latency=80)
        assert h.translate(0x1000) == 88   # cold: L2 miss + walk
        assert h.translate(0x1000) == 0    # L1 hit
        h.translate(0x2000)                # evicts 0x1000 from 1-entry L1
        assert h.translate(0x1000) == 8    # L1 miss, L2 hit


class TestTraceHelpers:
    def test_validate_good_records(self):
        validate_record((NONMEM, 0, 4))
        validate_record((LOAD, 64, 8))
        validate_record((STORE, 128, 12))

    @pytest.mark.parametrize("rec", [
        (9, 0, 0),
        (LOAD, -1, 0),
        (LOAD, 0, 0),       # memory op with null address
        (NONMEM, 0, -4),
    ])
    def test_validate_rejects(self, rec):
        with pytest.raises(TraceError):
            validate_record(rec)

    def test_take(self):
        recs = take(iter([(NONMEM, 0, 0)] * 3), 5)
        assert len(recs) == 3

    def test_replay_loops(self):
        r = replay([(LOAD, 64, 0), (STORE, 64, 4)])
        assert take(r, 5)[4] == (LOAD, 64, 0)

    def test_replay_empty_raises(self):
        with pytest.raises(TraceError):
            next(replay([]))

    def test_fractions(self):
        recs = [(NONMEM, 0, 0), (LOAD, 64, 0), (STORE, 64, 0),
                (LOAD, 64, 0)]
        assert mem_fraction(recs) == pytest.approx(0.75)
        assert store_fraction(recs) == pytest.approx(1 / 3)


class InstantMemory:
    """L1-substitute that completes every access next cycle."""

    def __init__(self, engine):
        self.engine = engine
        self.accesses = []

    def access(self, addr, is_write, pc, now, on_done, core_id=0,
               is_prefetch=False):
        self.accesses.append((addr, is_write))
        if on_done is not None:
            self.engine.schedule(now + 3, lambda: on_done(now + 3))


class ZeroTLB:
    def translate(self, addr):
        return 0


def _trace(n_mem=0):
    def gen():
        i = 0
        while True:
            if n_mem and i % n_mem == 0:
                yield (LOAD, 64 + 64 * i, 4)
            else:
                yield (NONMEM, 0, 4)
            i += 1
    return gen()


class TestCore:
    def _make(self, trace, budget=100):
        engine = Engine()
        mem = InstantMemory(engine)
        finished = []
        core = Core(0, trace, engine, mem, mem, ZeroTLB(), ZeroTLB(),
                    rob_size=16, issue_width=4, retire_width=4,
                    budget=budget, on_finish=finished.append)
        return engine, mem, core, finished

    def test_retires_budget_and_finishes(self):
        engine, mem, core, finished = self._make(_trace(), budget=100)
        core.start()
        engine.run()
        assert finished and core.stats.retired >= 100

    def test_ipc_close_to_width_for_nonmem(self):
        engine, mem, core, finished = self._make(_trace(), budget=400)
        core.start()
        engine.run()
        assert core.stats.ipc > 2.0  # 4-wide core, 1-cycle ops

    def test_loads_counted_and_issued(self):
        engine, mem, core, finished = self._make(_trace(n_mem=4),
                                                 budget=100)
        core.start()
        engine.run()
        assert core.stats.loads > 0
        assert any(not w for _, w in mem.accesses)

    def test_sleep_and_wake_on_slow_memory(self):
        engine = Engine()

        class SlowMemory(InstantMemory):
            def access(self, addr, is_write, pc, now, on_done, core_id=0,
                       is_prefetch=False):
                self.accesses.append((addr, is_write))
                if on_done is not None:
                    self.engine.schedule(now + 3000,
                                         lambda: on_done(now + 3000))

        mem = SlowMemory(engine)
        finished = []
        core = Core(0, _trace(n_mem=2), engine, mem, mem, ZeroTLB(),
                    ZeroTLB(), rob_size=8, budget=50,
                    on_finish=finished.append)
        core.start()
        engine.run()
        assert finished
        assert core.stats.sleeps > 0

    def test_stores_do_not_block_retirement(self):
        def trace():
            while True:
                yield (STORE, 64, 4)

        engine = Engine()
        mem = InstantMemory(engine)

        # Stores get no completion callback: if they blocked retirement the
        # run would never finish.
        finished = []
        core = Core(0, trace(), engine, mem, mem, ZeroTLB(), ZeroTLB(),
                    rob_size=8, budget=50, on_finish=finished.append)
        core.start()
        engine.run()
        assert finished
        assert all(w for _, w in mem.accesses if _ >= 64)

    def test_reset_measurement(self):
        engine, mem, core, finished = self._make(_trace(), budget=50)
        core.start()
        engine.run()
        core.reset_measurement(budget=60)
        assert core.stats.retired == 0
        assert not core.finished
        core.start()
        engine.run()
        assert core.stats.retired >= 60

"""Read/write queue behaviour: watermarks, coalescing, lookups."""

import pytest

from repro.dram.commands import MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.queues import ReadQueue, WriteQueue
from repro.errors import ConfigError

_M = ZenMapping()


def _req(addr, op=Op.WRITE):
    return MemRequest(addr=addr, op=op, coord=_M.map(addr))


class TestReadQueue:
    def test_push_until_full(self):
        q = ReadQueue(2)
        assert q.push(_req(0, Op.READ))
        assert q.push(_req(64, Op.READ))
        assert q.full
        assert not q.push(_req(128, Op.READ))

    def test_remove(self):
        q = ReadQueue(4)
        r = _req(0, Op.READ)
        q.push(r)
        q.remove(r)
        assert len(q) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            ReadQueue(0)


class TestWriteQueueWatermarks:
    def test_paper_watermarks_accepted(self):
        q = WriteQueue(48, 40, 8)
        assert q.capacity == 48

    def test_high_watermark_trips(self):
        q = WriteQueue(48, 40, 8)
        for i in range(40):
            q.push(_req(i * 64))
        assert q.at_high_watermark

    def test_below_high_watermark(self):
        q = WriteQueue(48, 40, 8)
        for i in range(39):
            q.push(_req(i * 64))
        assert not q.at_high_watermark

    def test_low_watermark(self):
        q = WriteQueue(48, 40, 8)
        for i in range(8):
            q.push(_req(i * 64))
        assert q.at_or_below_low_watermark
        q.push(_req(9 * 64))
        assert not q.at_or_below_low_watermark

    @pytest.mark.parametrize("cap,high,low", [
        (48, 48, 48),   # low not < high
        (48, 50, 8),    # high > capacity
        (48, 40, -1),   # negative low
    ])
    def test_invalid_watermarks(self, cap, high, low):
        with pytest.raises(ConfigError):
            WriteQueue(cap, high, low)


class TestWriteQueueCoalescing:
    def test_same_address_coalesces(self):
        q = WriteQueue(4, 3, 1)
        assert q.push(_req(64))
        assert q.push(_req(64))
        assert len(q) == 1
        assert q.coalesced == 1

    def test_coalesce_even_when_full(self):
        q = WriteQueue(2, 2, 0)
        q.push(_req(0))
        q.push(_req(64))
        assert q.full
        assert q.push(_req(64))  # coalesces, no space needed
        assert not q.push(_req(128))

    def test_remove_clears_addr_index(self):
        q = WriteQueue(4, 3, 1)
        r = _req(64)
        q.push(r)
        q.remove(r)
        assert not q.contains_addr(64)
        assert q.push(_req(64))
        assert len(q) == 1


class TestWriteQueueLookups:
    def test_contains_addr(self):
        q = WriteQueue(8, 6, 2)
        q.push(_req(0x1000 & ~63))
        assert q.contains_addr(0x1000 & ~63)
        assert not q.contains_addr(0x2000)

    def test_pending_for_bank(self):
        q = WriteQueue(48, 40, 8)
        r = _req(0)
        q.push(r)
        bank = r.coord.subchannel_bank_id
        assert q.pending_for_bank(bank) == 1
        assert q.pending_for_bank((bank + 1) % 32) == 0

    def test_oldest(self):
        q = WriteQueue(8, 6, 2)
        assert q.oldest() is None
        a, b = _req(0), _req(64)
        q.push(a)
        q.push(b)
        assert q.oldest() is a

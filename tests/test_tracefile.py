"""Trace-file persistence and replay."""

import pytest

from repro.cpu.trace import LOAD, NONMEM, STORE, take
from repro.errors import TraceError
from repro.workloads.synthetic import graph_trace
from repro.workloads.tracefile import (
    HEADER,
    iter_records,
    load_trace,
    read_records,
    save_trace,
)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "t.trace"
        gen = graph_trace(3, 0, 1 << 14)
        original = take(graph_trace(3, 0, 1 << 14), 200)
        written = save_trace(gen, path, 200)
        assert written == 200
        assert read_records(path) == original

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        save_trace(graph_trace(3, 0, 1 << 14), path, 100)
        assert len(read_records(path)) == 100

    def test_load_replays_forever(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(iter([(LOAD, 64, 4), (STORE, 128, 8)]), path, 2)
        records = take(load_trace(path), 7)
        assert len(records) == 7
        assert records[0] == records[2] == records[4]

    def test_finite_source_truncates(self, tmp_path):
        path = tmp_path / "t.trace"
        written = save_trace(iter([(NONMEM, 0, 4)] * 3), path, 100)
        assert written == 3


class TestStreaming:
    def test_iter_records_is_lazy(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(graph_trace(3, 0, 1 << 14), path, 50)
        stream = iter_records(path)
        assert iter(stream) is stream  # a generator, not a list
        assert next(stream) == read_records(path)[0]

    def test_iter_records_matches_read_records(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        save_trace(graph_trace(5, 0, 1 << 14), path, 80)
        assert list(iter_records(path)) == read_records(path)

    def test_iter_records_validates(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\n1 40 8\n1 oops 8\n")
        stream = iter_records(path)
        assert next(stream) == (1, 0x40, 8)
        with pytest.raises(TraceError):
            next(stream)

    def test_iter_records_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text(f"{HEADER}\n")
        with pytest.raises(TraceError):
            list(iter_records(path))

    def test_load_trace_does_not_materialise(self, tmp_path, monkeypatch):
        """load_trace must stream the file, never build a record list."""
        import repro.workloads.tracefile as tf

        path = tmp_path / "t.trace"
        save_trace(graph_trace(3, 0, 1 << 14), path, 20)
        monkeypatch.setattr(
            tf, "read_records",
            lambda p: pytest.fail("load_trace materialised the file"))
        assert len(take(load_trace(path), 45)) == 45

    def test_load_trace_checks_header_eagerly(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceError):
            load_trace(path)


class TestValidation:
    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1 40 8\n")
        with pytest.raises(TraceError):
            read_records(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\n1 40\n")
        with pytest.raises(TraceError):
            read_records(path)

    def test_bad_field(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\n1 zz 8\n")
        with pytest.raises(TraceError):
            read_records(path)

    def test_bad_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(f"{HEADER}\n7 40 8\n")
        with pytest.raises(TraceError):
            read_records(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text(f"{HEADER}\n")
        with pytest.raises(TraceError):
            read_records(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(f"{HEADER}\n# comment\n\n1 40 8\n")
        assert read_records(path) == [(LOAD, 0x40, 8)]


class TestCoreIntegration:
    def test_core_runs_from_trace_file(self, tmp_path):
        from repro.sim.system import System
        from tests.conftest import tiny_config

        path = tmp_path / "wl.trace"
        save_trace(graph_trace(3, 0, 1 << 14), path, 500)
        cfg = tiny_config(cores=1, warmup_instructions=100,
                          sim_instructions=400)
        system = System(cfg, lambda core_id: load_trace(path))
        result = system.run(label="from-file")
        assert result.instructions == 400

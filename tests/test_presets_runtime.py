"""Preset sanity at runtime: the small profiles must generate real
write-drain pressure on every suite (the precondition for all the paper's
experiments)."""

import pytest

from repro.sim.runner import run_workload

from .conftest import tiny_config


@pytest.mark.parametrize("workload", ["lbm", "bc", "copy", "merced"])
def test_each_suite_produces_write_drains(workload):
    """One representative per suite: SPEC / LIGRA / STREAM / Google.

    The budget must be large enough that the traffic exceeds the LLC,
    otherwise dirty lines never cycle out (streaming kernels in particular
    fit 2 cores x 4k instructions entirely in cache).
    """
    cfg = tiny_config(warmup_instructions=2_000, sim_instructions=12_000)
    r = run_workload(cfg, workload)
    assert r.dram.writes_issued > 0, f"{workload}: no writes drained"
    assert r.llc.writebacks > 0, f"{workload}: no LLC writebacks"
    assert len(r.dram.episodes) > 0, f"{workload}: no drain episodes"


@pytest.mark.parametrize("workload", ["mix1", "mix5"])
def test_mixes_produce_write_drains(workload):
    r = run_workload(tiny_config(), workload)
    assert r.dram.writes_issued > 0


def test_prefetchers_active_in_default_profile():
    r = run_workload(tiny_config(), "copy")
    # The stream workload must trigger prefetching somewhere (L1D Berti
    # or L2 SPP) - visible as prefetch accesses reaching the LLC stats.
    assert r.llc.accesses > 0


def test_episode_sizes_match_watermarks():
    """Each drain services about high-low = 32 writes (+ arrivals)."""
    r = run_workload(tiny_config(), "lbm")
    for ep in r.dram.episodes:
        assert 1 <= ep.writes <= 48, "episode exceeded queue capacity"
    big = [ep for ep in r.dram.episodes if ep.writes >= 30]
    assert big, "at least one full watermark-to-watermark drain expected"

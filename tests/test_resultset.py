"""ResultSet query/aggregation vocabulary."""

import json

import pytest

from repro.experiment import ExperimentSpec, Session

from .conftest import tiny_config


@pytest.fixture(scope="module")
def rs():
    spec = ExperimentSpec(workloads=["lbm", "copy"],
                          configs=tiny_config(),
                          policies=["baseline", "bard-h"],
                          name="rs-fixture")
    return Session(cache=False).run(spec)


class TestFilterGroup:
    def test_filter_scalar(self, rs):
        sub = rs.filter(workload="lbm")
        assert len(sub) == 2
        assert all(o.coords["workload"] == "lbm" for o in sub)

    def test_filter_membership_and_callable(self, rs):
        assert len(rs.filter(policy=["bard-h"])) == 2
        assert len(rs.filter(workload=lambda w: w.startswith("l"))) == 2

    def test_filter_no_match(self, rs):
        assert len(rs.filter(workload="bwaves")) == 0

    def test_group_by(self, rs):
        groups = rs.group_by("policy")
        assert list(groups) == ["baseline", "bard-h"]
        assert all(len(g) == 2 for g in groups.values())

    def test_axis_values(self, rs):
        assert rs.axis_values("workload") == ["lbm", "copy"]

    def test_only_rejects_plural(self, rs):
        with pytest.raises(ValueError):
            rs.only()


class TestSpeedups:
    def test_speedup_vs_pairs_baselines(self, rs):
        sp = rs.speedup_vs("policy")
        assert len(sp) == 2
        for obs in sp:
            base = rs.filter(policy="baseline",
                             workload=obs.coords["workload"]).only()
            assert obs.value("speedup_pct") == pytest.approx(
                obs.result.speedup_pct(base.result))

    def test_gmean_speedup_pct(self, rs):
        sp = rs.speedup_vs("policy").filter(policy="bard-h")
        val = sp.gmean_speedup_pct()
        assert isinstance(val, float)

    def test_missing_baseline_raises(self, rs):
        with pytest.raises(ValueError):
            rs.filter(policy="bard-h").speedup_vs("policy")

    def test_speedup_metric_needs_baseline(self, rs):
        with pytest.raises(ValueError):
            rs[0].value("speedup_pct")


class TestExport:
    def test_to_records_default_metrics(self, rs):
        records = rs.to_records()
        assert len(records) == 4
        assert {"workload", "policy", "mean_ipc", "mpki",
                "run_key"} <= set(records[0])

    def test_to_records_custom_metric(self, rs):
        records = rs.speedup_vs("policy").to_records(["speedup_pct"])
        assert all("speedup_pct" in r for r in records)

    def test_non_scalar_metric_rejected(self, rs):
        with pytest.raises(ValueError):
            rs.to_records(["power_report"])

    def test_unknown_metric_error_lists_valid_names(self, rs):
        with pytest.raises(ValueError) as exc:
            rs[0].value("ipcc")
        message = str(exc.value)
        assert "ipcc" in message
        assert "mean_ipc" in message and "write_blp" in message

    def test_valid_metric_is_single_source_of_truth(self, rs):
        from repro.experiment.resultset import metric_names, valid_metric

        names = metric_names()
        assert "mean_ipc" in names and "speedup_pct" in names
        assert all(valid_metric(n) for n in names)
        assert not valid_metric("llc")  # structured field
        assert not valid_metric("sampling")  # structured field
        for name in names:
            if name in ("weighted_speedup", "speedup_pct"):
                continue
            assert isinstance(rs[0].value(name), (int, float))

    def test_to_json_round_trips(self, rs, tmp_path):
        path = tmp_path / "out.json"
        text = rs.to_json(path, metrics=["mean_ipc"])
        assert json.loads(text) == json.loads(path.read_text())

    def test_metric_vector(self, rs):
        assert len(rs.metric("mean_ipc")) == 4

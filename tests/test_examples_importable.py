"""Examples: every script must at least parse and expose a main().

Running the examples end-to-end takes minutes (they use the full
small-8core system); importability and structure are what unit tests can
cheaply guarantee.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source
    assert "def main(" in source


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_uses_public_api(path):
    """Examples must import from the package, not hack internals."""
    tree = ast.parse(path.read_text())
    imports = [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    modules = set()
    for node in imports:
        if isinstance(node, ast.ImportFrom) and node.module:
            modules.add(node.module.split(".")[0])
        elif isinstance(node, ast.Import):
            modules.update(a.name.split(".")[0] for a in node.names)
    assert "repro" in modules, f"{path.name} never imports repro"

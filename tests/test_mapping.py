"""AMD Zen address mapping + PBPL (paper Fig. 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.commands import LINE_SIZE, DramCoord
from repro.dram.mapping import ZenMapping
from repro.errors import MappingError


class TestZenLayout:
    def setup_method(self):
        self.m = ZenMapping(pbpl=False)

    def test_bit6_selects_subchannel(self):
        a, b = self.m.map(0), self.m.map(1 << 6)
        assert a.subchannel == 0 and b.subchannel == 1

    def test_bit7_is_column(self):
        a, b = self.m.map(0), self.m.map(1 << 7)
        assert a.column != b.column
        assert (a.bankgroup, a.bank, a.row) == (b.bankgroup, b.bank, b.row)

    def test_bits_8_10_are_bankgroup(self):
        for bg in range(8):
            assert self.m.map(bg << 8).bankgroup == bg

    def test_bits_11_12_are_bank(self):
        for ba in range(4):
            assert self.m.map(ba << 11).bank == ba

    def test_row_starts_at_bit_19(self):
        assert self.m.map(1 << 19).row == 1
        assert self.m.map(0).row == 0

    def test_page_spreads_across_32_banks(self):
        """Zen distributes a 4 KB page across 32 banks, two lines each."""
        banks = {}
        for line in range(64):
            c = self.m.map(line * LINE_SIZE)
            key = (c.subchannel, c.bankgroup, c.bank)
            banks.setdefault(key, 0)
            banks[key] += 1
        assert len(banks) == 32
        assert all(v == 2 for v in banks.values())

    def test_two_lines_per_bank_share_row(self):
        c0 = self.m.map(0)
        c1 = self.m.map(1 << 7)
        assert (c0.subchannel, c0.bankgroup, c0.bank, c0.row) == (
            c1.subchannel, c1.bankgroup, c1.bank, c1.row)


class TestPBPL:
    def test_swizzles_banks_across_rows(self):
        """PBPL must map the same set-conflicting lines to different banks."""
        m = ZenMapping(pbpl=True)
        # Same bank bits, different low row bits -> different banks.
        banks = {m.map(row << 19).bank_id for row in range(32)}
        assert len(banks) == 32

    def test_no_pbpl_keeps_same_bank(self):
        m = ZenMapping(pbpl=False)
        banks = {m.map(row << 19).bank_id for row in range(32)}
        assert len(banks) == 1

    def test_pbpl_preserves_row_and_column(self):
        a = ZenMapping(pbpl=True).map(0x1234567)
        b = ZenMapping(pbpl=False).map(0x1234567)
        assert a.row == b.row and a.column == b.column


class TestMultiChannel:
    def test_channel_bit_above_line_offset(self):
        m = ZenMapping(channels=2)
        assert m.map(0).channel == 0
        assert m.map(1 << 6).channel == 1

    def test_single_channel_always_zero(self):
        m = ZenMapping(channels=1)
        assert m.map(0xDEADBEEF).channel == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MappingError):
            ZenMapping(channels=3)

    def test_bank_count_properties(self):
        m = ZenMapping()
        assert m.banks_per_subchannel == 32
        assert m.banks_per_channel == 64


class TestBankId:
    def test_bank_id_range(self):
        m = ZenMapping()
        for addr in range(0, 1 << 16, LINE_SIZE):
            assert 0 <= m.bank_id(addr) < 64

    def test_bank_id_composition(self):
        c = DramCoord(0, 1, 3, 2, 0, 0)
        assert c.bank_id == (1 * 8 + 3) * 4 + 2
        assert c.subchannel_bank_id == 3 * 4 + 2

    def test_rejects_negative_address(self):
        with pytest.raises(MappingError):
            ZenMapping().map(-1)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_map_compose_roundtrip(self, addr):
        """map() and compose() are inverses on line-aligned addresses."""
        m = ZenMapping(pbpl=True)
        la = addr & ~(LINE_SIZE - 1)
        assert m.compose(m.map(la)) == la

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_roundtrip_two_channels(self, addr):
        m = ZenMapping(channels=2, pbpl=True)
        la = addr & ~(LINE_SIZE - 1)
        assert m.compose(m.map(la)) == la

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_roundtrip_without_pbpl(self, addr):
        m = ZenMapping(pbpl=False)
        la = addr & ~(LINE_SIZE - 1)
        assert m.compose(m.map(la)) == la

"""Channel edge cases: staged-write forwarding, kick coalescing,
finalization."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, Op
from repro.dram.mapping import ZenMapping
from repro.dram.timing import ddr5_4800_x4
from repro.sim.engine import Engine

_M = ZenMapping(pbpl=False)


def _read(addr, cb=None):
    return MemRequest(addr=addr, op=Op.READ, coord=_M.map(addr),
                      on_complete=cb)


def _write(addr):
    return MemRequest(addr=addr, op=Op.WRITE, coord=_M.map(addr))


@pytest.fixture
def setup():
    eng = Engine()
    ch = Channel(ddr5_4800_x4())
    ch.attach(eng)
    return eng, ch


class TestStagedWriteForwarding:
    def test_read_forwards_from_staging_buffer(self, setup):
        """A read must see writes that overflowed into the staging buffer,
        not just the bounded WQ."""
        eng, ch = setup
        target = None
        n = 0
        addr = 0
        while n < 60:  # overflow the 48-entry WQ on subchannel 0
            if _M.map(addr).subchannel == 0:
                ch.submit(_write(addr))
                target = addr
                n += 1
            addr += 64
        assert ch.stats.staged_writes > 0
        done = []
        ch.submit(_read(target, cb=lambda t: done.append(t)))
        assert ch.stats.forwarded_reads == 1


class TestArrivalCycles:
    def test_arrival_cycle_stamped(self, setup):
        eng, ch = setup
        eng.schedule(1000, lambda: ch.submit(_read(0)))
        eng.run()
        req = None  # the request is already serviced; check via stats
        assert ch.stats.reads_received == 1

    def test_later_submissions_have_later_arrivals(self, setup):
        eng, ch = setup
        reqs = []

        def submit(addr):
            r = _read(addr)
            reqs.append(r)
            ch.submit(r)

        eng.schedule(0, lambda: submit(0))
        eng.schedule(6000, lambda: submit(1 << 13))
        eng.run()
        assert reqs[1].arrival_cycle > reqs[0].arrival_cycle


class TestFinalize:
    def test_finalize_closes_open_episode(self, setup):
        eng, ch = setup
        # Trip the watermark but stop mid-drain by bounding events.
        n = 0
        addr = 0
        while n < 40:
            if _M.map(addr).subchannel == 0:
                ch.submit(_write(addr))
                n += 1
            addr += 64
        # Run only a handful of events so the drain is mid-flight.
        for _ in range(6):
            if not eng.step():
                break
        ch.finalize()
        agg = ch.aggregate_stats()
        if agg.writes_issued:
            assert agg.episodes, "in-flight episode must be recorded"

    def test_double_finalize_safe(self, setup):
        eng, ch = setup
        ch.submit(_write(0))
        eng.run()
        ch.finalize()
        ch.finalize()


class TestKickCoalescing:
    def test_many_submissions_bounded_events(self, setup):
        """Submitting N requests must not create O(N^2) scheduler events."""
        eng, ch = setup
        for i in range(100):
            ch.submit(_read(i * 64))
        eng.run()
        # Each read needs a handful of events (kick, issue, completion);
        # allow a generous constant factor.
        assert eng.events_fired < 100 * 20

"""RunResult and stats edge cases."""

import pytest

from repro.cache.cache import CacheStats
from repro.dram.stats import SubChannelStats
from repro.sim.results import RunResult


def _empty_result(**kw):
    defaults = dict(
        label="x", cores=1, instructions=0, elapsed_ticks=0,
        ipc=[], llc=CacheStats(), dram=SubChannelStats(),
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestDegenerateResults:
    def test_zero_instructions(self):
        r = _empty_result()
        assert r.mpki == 0.0
        assert r.wpki == 0.0

    def test_zero_elapsed(self):
        r = _empty_result()
        assert r.time_writing_pct == 0.0
        assert r.runtime_ns == 0.0

    def test_no_cores_mean_ipc(self):
        assert _empty_result().mean_ipc == 0.0

    def test_no_episodes_blp(self):
        assert _empty_result().write_blp == 0.0


class TestCacheStatsDerived:
    def test_demand_split(self):
        s = CacheStats(accesses=10, misses=6, prefetch_accesses=3,
                       prefetch_misses=2)
        assert s.demand_accesses == 7
        assert s.demand_misses == 4
        assert s.miss_rate == pytest.approx(4 / 7)

    def test_miss_rate_no_accesses(self):
        assert CacheStats().miss_rate == 0.0


class TestWeightedSpeedupMismatch:
    def test_core_count_mismatch_asserts(self):
        a = _empty_result(ipc=[1.0])
        b = _empty_result(ipc=[1.0, 2.0])
        with pytest.raises(AssertionError):
            a.weighted_speedup(b)

"""DRRIP: set dueling between SRRIP and BRRIP insertion."""

from repro.cache.line import CacheLine
from repro.cache.replacement import DRRIPPolicy, make_replacement
from repro.cache.replacement.drrip import _DUEL_PERIOD, _PSEL_MAX
from repro.cache.replacement.srrip import RRPV_INSERT, RRPV_MAX


def _lines(n):
    return [CacheLine(valid=True, line_addr=i * 64) for i in range(n)]


class TestLeaderSets:
    def test_leader_assignment(self):
        p = DRRIPPolicy(64, 4)
        assert p._set_kind(0) == "srrip"
        assert p._set_kind(1) == "brrip"
        assert p._set_kind(2) == "follower"
        assert p._set_kind(_DUEL_PERIOD) == "srrip"

    def test_srrip_leader_inserts_long(self):
        p = DRRIPPolicy(64, 4)
        p.on_fill(0, 0, 0)
        assert p.rrpv[0][0] == RRPV_INSERT

    def test_brrip_leader_mostly_inserts_distant(self):
        p = DRRIPPolicy(64, 4)
        values = []
        for i in range(40):
            p.on_fill(1, i % 4, 0)
            values.append(p.rrpv[1][i % 4])
        assert values.count(RRPV_MAX) > values.count(RRPV_INSERT)


class TestPSEL:
    def test_misses_in_srrip_leader_push_up(self):
        p = DRRIPPolicy(64, 4)
        start = p.psel
        p.record_miss(0)
        assert p.psel == start + 1

    def test_misses_in_brrip_leader_push_down(self):
        p = DRRIPPolicy(64, 4)
        start = p.psel
        p.record_miss(1)
        assert p.psel == start - 1

    def test_followers_follow_winner(self):
        p = DRRIPPolicy(64, 4)
        p.psel = _PSEL_MAX  # SRRIP leaders missing a lot -> use BRRIP
        assert p._use_brrip(2)
        p.psel = 0
        assert not p._use_brrip(2)

    def test_psel_saturates(self):
        p = DRRIPPolicy(64, 4)
        p.psel = _PSEL_MAX
        p.record_miss(0)
        assert p.psel == _PSEL_MAX
        p.psel = 0
        p.record_miss(1)
        assert p.psel == 0


class TestVictimAndOrder:
    def test_victim_max_rrpv(self):
        p = DRRIPPolicy(64, 4)
        for w in range(4):
            p.on_fill(5, w, 0)
        p.on_hit(5, 2, 0)
        victim = p.victim(5, _lines(4))
        assert victim != 2

    def test_eviction_order_descending(self):
        p = DRRIPPolicy(64, 4)
        p.rrpv[5] = [0, 3, 2, 3]
        assert p.eviction_order(5, _lines(4)) == [1, 3, 2, 0]

    def test_factory(self):
        assert isinstance(make_replacement("drrip", 64, 4), DRRIPPolicy)


class TestIntegrationWithBard:
    def test_bard_runs_with_drrip(self):
        from tests.conftest import tiny_config
        from repro.sim.runner import run_workload

        cfg = tiny_config(llc_writeback="bard-h").with_replacement("drrip")
        r = run_workload(cfg, "copy")
        assert r.instructions > 0
        assert r.wb_stats.victim_selections > 0
